"""Extra study — convergence of the weight-refinement iterations.

Not a numbered artefact, but the claim behind all of §4-§5: the
Frank-Wolfe-style updates "yield near-optimal approximation within
limited iterations" and the certified upper bound tightens alongside.
This bench tracks the achieved density and the upper bound per iteration
and verifies both monotone trends.
"""

from functools import lru_cache

from common import index, optimal_density
from repro.bench import format_series
from repro.core import sctl

CONFIGS = [("email", 7), ("gowalla", 8), ("pokec", 6)]
ITERATIONS = 20


@lru_cache(maxsize=None)
def convergence_series(name: str, k: int):
    result = sctl(index(name), k, iterations=ITERATIONS, track_convergence=True)
    optimum = float(optimal_density(name, k))
    achieved = [d / optimum for d in result.stats["density_history"]]
    upper = [u / optimum for u in result.stats["upper_bound_history"]]
    return achieved, upper


def render() -> str:
    blocks = []
    for name, k in CONFIGS:
        achieved, upper = convergence_series(name, k)
        blocks.append(
            format_series(
                "T",
                list(range(1, ITERATIONS + 1)),
                {"achieved/opt": achieved, "upper/opt": upper},
                title=f"convergence ({name}, k={k})",
            )
        )
    return "\n\n".join(blocks)


class TestConvergence:
    def test_achieved_density_never_decreases_much(self):
        for name, k in CONFIGS:
            achieved, _ = convergence_series(name, k)
            for before, after in zip(achieved, achieved[1:]):
                assert after >= before - 0.05, (name, k)

    def test_achieved_stays_below_one_upper_above(self):
        for name, k in CONFIGS:
            achieved, upper = convergence_series(name, k)
            assert all(a <= 1 + 1e-9 for a in achieved), (name, k)
            assert all(u >= 1 - 1e-9 for u in upper), (name, k)

    def test_near_optimal_within_ten_iterations(self):
        for name, k in CONFIGS:
            achieved, _ = convergence_series(name, k)
            assert achieved[9] >= 0.95, (name, k)

    def test_gap_tightens(self):
        for name, k in CONFIGS:
            achieved, upper = convergence_series(name, k)
            first_gap = upper[0] - achieved[0]
            last_gap = upper[-1] - achieved[-1]
            assert last_gap <= first_gap + 1e-9, (name, k)

    def test_benchmark_tracked_run(self, benchmark):
        idx = index("email")
        benchmark.pedantic(
            lambda: sctl(idx, 7, iterations=ITERATIONS, track_convergence=True),
            rounds=2,
            iterations=1,
        )


if __name__ == "__main__":
    print(render())
