"""Table 5 — KCL-Sample versus SCTL*-Sample.

Paper reference: Table 5 compares the two sampling algorithms on six
datasets (including the billion-edge Friendster, where only SCTL*-Sample
is feasible), reporting running time and the k-clique density achieved.
On the three largest graphs the paper can only build a partial
SCT*-k'-Index; the sampling algorithm still answers every k >= k'.

Expected shape (paper): the densities agree where both finish, but
KCL-Sample times out once enumeration becomes infeasible while
SCTL*-Sample keeps answering — including on partial indexes.  Our
miniature budget plays the role of the paper's 10^5-second limit.
"""

from functools import lru_cache

from common import dataset, index
from repro.baselines import kcl_sample
from repro.bench import TimeoutTracker, format_table, timed
from repro.core import SCTIndex, sctl_star_sample

SAMPLE_SIZE = 5_000
ITERATIONS = 10
# (dataset, ks, partial-index threshold or 0)
CONFIGS = [
    ("email", (5, 9, 13), 0),
    ("skitter", (3, 5, 7), 0),
    ("dblp", (6, 12, 18), 0),
    ("orkut", (4, 6, 8), 0),
    ("livejournal", (12, 22, 30), 12),
    ("friendster", (5, 8, 11), 5),
]
# KCL-Sample's enumeration pass gets a tight budget, mirroring its
# infeasibility on the paper's large graphs
KCL_BUDGET = 2.0


@lru_cache(maxsize=None)
def partial_index(name: str, threshold: int) -> SCTIndex:
    if threshold == 0:
        return index(name)
    return SCTIndex.build(dataset(name), threshold=threshold)


@lru_cache(maxsize=None)
def table5_rows():
    rows = []
    tracker = TimeoutTracker(budget=KCL_BUDGET)
    for name, ks, threshold in CONFIGS:
        graph = dataset(name)
        build = timed(lambda: SCTIndex.build(graph, threshold=threshold))
        idx = partial_index(name, threshold)
        for k in ks:
            # hard (forked) budget: KCL-Sample must enumerate every
            # k-clique, which is combinatorially infeasible on the
            # large-k_max datasets — the paper's "time out" rows
            theirs = tracker.run_hard(
                name,
                "KCL-Sample",
                lambda: kcl_sample(
                    graph, k, sample_size=SAMPLE_SIZE, iterations=ITERATIONS, seed=0
                ),
            )
            ours = timed(
                lambda: sctl_star_sample(
                    idx, k, sample_size=SAMPLE_SIZE, iterations=ITERATIONS, seed=0
                )
            )
            rows.append(
                [
                    name,
                    threshold or "-",
                    f"{build.seconds:.2f}",
                    k,
                    theirs.cell,
                    f"{theirs.result.density:.3e}" if theirs.result else "-",
                    f"{ours.seconds:.3f}",
                    f"{ours.result.density:.3e}",
                ]
            )
    return rows


def render() -> str:
    return format_table(
        [
            "dataset",
            "k'",
            "index build (s)",
            "k",
            "KCL-Sample s",
            "KCL-Sample density",
            "SCTL*-Sample s",
            "SCTL*-Sample density",
        ],
        table5_rows(),
        title=f"Table 5: sampling algorithms (sigma={SAMPLE_SIZE})",
    )


class TestTable5:
    def test_sctl_sample_always_answers(self):
        for row in table5_rows():
            assert row[7] != "-"

    def test_densities_positive_on_clique_rich_datasets(self):
        for row in table5_rows():
            if row[0] in ("dblp", "livejournal"):
                assert float(row[7]) > 0, row

    def test_partial_index_rows_present(self):
        thresholds = {row[1] for row in table5_rows()}
        assert 12 in thresholds
        assert 5 in thresholds

    def test_benchmark_sctl_sample_friendster(self, benchmark):
        idx = partial_index("friendster", 5)
        benchmark.pedantic(
            lambda: sctl_star_sample(
                idx, 8, sample_size=SAMPLE_SIZE, iterations=ITERATIONS, seed=0
            ),
            rounds=2,
            iterations=1,
        )

    def test_benchmark_kcl_sample_email(self, benchmark):
        graph = dataset("email")
        benchmark.pedantic(
            lambda: kcl_sample(
                graph, 5, sample_size=SAMPLE_SIZE, iterations=ITERATIONS, seed=0
            ),
            rounds=2,
            iterations=1,
        )


if __name__ == "__main__":
    print(render())
