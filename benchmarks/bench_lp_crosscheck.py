"""Extra study — LP cross-validation of the exact solvers.

Charikar's LP relaxation of densest subgraph has optimum exactly equal to
the maximum density, and its solver (scipy/HiGHS simplex) shares no code
with our min-cut machinery.  This bench re-derives every Table 6 optimum
through the LP on the k-clique hypergraph and requires agreement to
1e-7 — an end-to-end certification of the exact pipeline by an outside
implementation.
"""

from functools import lru_cache

from common import dataset, index
from repro.bench import format_table
from repro.core import sctl_star_exact
from repro.hypergraph import Hypergraph, lp_densest_value

CONFIGS = [("email", 10), ("email", 13), ("youtube", 9), ("orkut", 6), ("pokec", 6)]


@lru_cache(maxsize=None)
def crosscheck_rows():
    rows = []
    for name, k in CONFIGS:
        graph = dataset(name)
        ours = sctl_star_exact(
            graph, k, index=index(name), sample_size=20_000, iterations=8, seed=0
        )
        hypergraph = Hypergraph.from_graph_cliques(graph, k)
        lp_value = lp_densest_value(hypergraph)
        rows.append(
            [
                name,
                k,
                hypergraph.m,
                f"{ours.density:.6f}",
                f"{lp_value:.6f}",
                f"{abs(ours.density - lp_value):.2e}",
            ]
        )
    return rows


def render() -> str:
    return format_table(
        ["dataset", "k", "hyperedges", "SCTL*-Exact", "LP optimum", "abs diff"],
        crosscheck_rows(),
        title="LP cross-validation of exact densities",
    )


class TestLPCrossCheck:
    def test_lp_agrees_with_exact_solver(self):
        for row in crosscheck_rows():
            assert float(row[5]) < 1e-6, row

    def test_benchmark_lp_solve(self, benchmark):
        graph = dataset("pokec")
        hypergraph = Hypergraph.from_graph_cliques(graph, 6)
        benchmark.pedantic(
            lambda: lp_densest_value(hypergraph), rounds=2, iterations=1
        )


if __name__ == "__main__":
    print(render())
