"""Ablation A — BatchUpdate on/off (SCTL+ vs SCTL*).

Isolates §5.2: with reductions held fixed, how many weight writes does
batching save, and what does that do to wall-clock time?  The paper folds
this into Table 4's ``#updates`` column; here it gets its own sweep.
"""

from functools import lru_cache

from common import dataset, index, k_sweep
from repro.bench import format_table, timed
from repro.core import sctl_plus, sctl_star

ITERATIONS = 10
# include near-clique datasets (orkut, skitter) where mid-k refinement
# actually runs; on plant-dominated graphs the scope collapses instantly
DATASETS = ("email", "orkut", "skitter")


@lru_cache(maxsize=None)
def ablation_rows():
    rows = []
    for name in DATASETS:
        idx = index(name)
        for k in k_sweep(name, points=3):
            total = idx.count_k_cliques(k)
            batched = timed(lambda: sctl_star(idx, k, iterations=ITERATIONS))
            unbatched = timed(lambda: sctl_plus(idx, k, iterations=ITERATIONS))
            rows.append(
                [
                    name,
                    k,
                    total,
                    unbatched.result.stats["total_weight_updates"],
                    batched.result.stats["total_weight_updates"],
                    f"{unbatched.seconds:.3f}",
                    f"{batched.seconds:.3f}",
                    f"{batched.result.density / max(unbatched.result.density, 1e-12):.3f}",
                ]
            )
    return rows


def render() -> str:
    return format_table(
        [
            "dataset",
            "k",
            "|C_k(G)|",
            "updates (SCTL+)",
            "updates (SCTL*)",
            "SCTL+ s",
            "SCTL* s",
            "density ratio */+",
        ],
        ablation_rows(),
        title=f"Ablation A: batch processing (T={ITERATIONS})",
    )


class TestAblationBatch:
    def test_batching_never_increases_updates(self):
        for row in ablation_rows():
            assert row[4] <= row[3], row

    def test_batching_preserves_quality(self):
        for row in ablation_rows():
            assert float(row[7]) >= 0.9, row

    def test_updates_scale_below_clique_count_when_batched(self):
        meaningful = [row for row in ablation_rows() if row[2] > 1000]
        assert meaningful
        for row in meaningful:
            assert row[4] < row[2] * ITERATIONS, row

    def test_benchmark_batched(self, benchmark):
        idx = index("orkut")
        k = k_sweep("orkut", points=3)[1]
        benchmark.pedantic(
            lambda: sctl_star(idx, k, iterations=ITERATIONS), rounds=3, iterations=1
        )

    def test_benchmark_unbatched(self, benchmark):
        idx = index("orkut")
        k = k_sweep("orkut", points=3)[1]
        benchmark.pedantic(
            lambda: sctl_plus(idx, k, iterations=ITERATIONS), rounds=3, iterations=1
        )


if __name__ == "__main__":
    print(render())
