"""Table 4 — effectiveness of graph reduction and batch processing.

Paper reference: Table 4 runs SCTL* for 10 iterations on Email and Youtube
(two k values each) and reports, at iterations T in {1, 6, 10}: the search
scope |V(G_T)| and |E(G_T)| entering the iteration, the fraction of
k-cliques still inside the scope, and the number of actual weight updates
relative to |C_k(G)|.

Expected shape (paper): the scope shrinks monotonically with T, already
starting well below the full graph (the maximum clique seeds a non-trivial
density bound), and #updates / |C_k(G)| stays far below 100% thanks to
BatchUpdate.
"""

from functools import lru_cache

from common import dataset, index
from repro.bench import format_table
from repro.core import sctl_star

ITERATIONS = 10
REPORT_AT = (1, 6, 10)
# datasets whose densest region is an organic near-clique (not a planted
# full clique): there the warm start does not trivially equal the optimum
# and the scope shrinks progressively, as in the paper's Table 4
CONFIGS = [("orkut", 4), ("orkut", 5), ("skitter", 3), ("skitter", 4)]


@lru_cache(maxsize=None)
def table4_rows():
    rows = []
    for name, k in CONFIGS:
        graph = dataset(name)
        idx = index(name)
        total = idx.count_k_cliques(k)
        result = sctl_star(
            idx, k, iterations=ITERATIONS, graph=graph, collect_stats=True
        )
        for entry in result.stats["iterations"]:
            if entry.iteration not in REPORT_AT:
                continue
            rows.append(
                [
                    name,
                    k,
                    f"{total:.2e}",
                    entry.iteration,
                    entry.scope_vertices,
                    entry.scope_edges,
                    f"{entry.scope_cliques / total:.2%}" if total else "-",
                    f"{entry.weight_updates / total:.2%}" if total else "-",
                ]
            )
    return rows


def render() -> str:
    return format_table(
        [
            "dataset",
            "k",
            "|C_k(G)|",
            "T",
            "|V(G_T)|",
            "|E(G_T)|",
            "cliques in scope",
            "#updates/|C_k|",
        ],
        table4_rows(),
        title="Table 4: effectiveness of the proposed optimisations",
    )


class TestTable4:
    def test_scope_shrinks_with_iterations(self):
        rows = table4_rows()
        for i in range(0, len(rows), len(REPORT_AT)):
            group = rows[i:i + len(REPORT_AT)]
            vertices = [row[4] for row in group]
            assert vertices == sorted(vertices, reverse=True) or vertices[-1] <= vertices[0]

    def test_scope_well_below_full_graph(self):
        for row in table4_rows():
            graph = dataset(row[0])
            assert row[4] < graph.n

    def test_scope_nontrivial(self):
        """These configs must exercise real refinement (non-degenerate)."""
        assert any(row[4] > 0 for row in table4_rows())
        assert any(row[7] != "0.00%" for row in table4_rows())

    def test_updates_fraction_below_one(self):
        for row in table4_rows():
            fraction = float(row[7].rstrip("%")) / 100
            assert fraction <= 1.0

    def test_benchmark_instrumented_run(self, benchmark):
        idx = index("orkut")
        graph = dataset("orkut")
        benchmark.pedantic(
            lambda: sctl_star(
                idx, 5, iterations=ITERATIONS, graph=graph, collect_stats=True
            ),
            rounds=2,
            iterations=1,
        )


if __name__ == "__main__":
    print(render())
