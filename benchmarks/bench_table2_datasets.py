"""Table 2 — dataset summary: |V|, |E|, vertex/edge type, k_max.

Paper reference: Table 2 lists the 12 SNAP datasets with their sizes and
maximum clique size.  This bench regenerates the same columns for the 12
synthetic stand-ins, plus the paper counterpart each one mirrors.
"""

from functools import lru_cache

from common import dataset, index
from repro.bench import format_table
from repro.core import SCTIndex
from repro.datasets import dataset_names, get_spec


@lru_cache(maxsize=None)
def table2_rows():
    rows = []
    for name in dataset_names():
        graph = dataset(name)
        spec = get_spec(name)
        # k_max read straight off the index root (max path length)
        k_max = index(name).max_clique_size
        rows.append(
            [name, spec.paper_counterpart, graph.n, graph.m, spec.role, k_max]
        )
    return rows


def render() -> str:
    return format_table(
        ["dataset", "paper", "|V|", "|E|", "role", "k_max"],
        table2_rows(),
        title="Table 2: summary of datasets",
    )


class TestTable2:
    def test_table_has_all_datasets(self):
        assert len(table2_rows()) == 12

    def test_kmax_spread_matches_paper_shape(self):
        """The paper spans k_max from 4 (road-CA) to 327 (LiveJournal);
        the stand-ins must preserve the ordering extremes."""
        by_name = {row[0]: row[5] for row in table2_rows()}
        assert by_name["road"] <= 4
        assert by_name["livejournal"] == max(by_name.values())
        assert by_name["dblp"] > by_name["amazon"]

    def test_benchmark_index_build_email(self, benchmark):
        graph = dataset("email")
        benchmark(lambda: SCTIndex.build(graph))

    def test_benchmark_kmax_query(self, benchmark):
        idx = index("livejournal")
        benchmark(lambda: idx.a_maximum_clique())


if __name__ == "__main__":
    print(render())
