"""Extra study — scaling of the ``repro.parallel`` path-sharded engine.

Three questions, all on the largest bundled dataset (``friendster``):

1. **Build scaling** — wall-clock of ``SCTIndex.build(parallel=N)`` for
   N in {1, 2, 4} against the serial build.  The sharded build expands
   disjoint seed ranges in worker processes and splices them in seed
   order, so the useful work parallelises fully and only the splice is
   sequential.
2. **Sweep scaling** — one SCTL* refinement pass per worker count.
3. **Parity** — the sharded build must serialise byte-identically to the
   serial one, whatever the measured speedup says.

Speedup is reported against the measured machine: the table carries
``os.cpu_count()`` because a container pinned to one core *cannot* show
a real speedup (process pools only add IPC there), and pretending
otherwise would be measurement theatre.  The speedup assertion therefore
only arms when the host actually offers the cores; the parity assertions
always run.  ``--quick`` (or ``pytest``) keeps CI cheap: the small
``email`` dataset, one repeat, parity-focused.
"""

import os
import statistics
import sys
import time

from common import dataset
from repro.bench import format_table
from repro.core import SCTIndex, sctl_star

DATASET = "friendster"  # largest bundled graph (|V|=5600, |E|=27259)
QUICK_DATASET = "email"
K = 4
WORKER_COUNTS = (1, 2, 4)
REPEATS = 3
SPEEDUP_TARGET = 1.8  # at 4 workers, on a host with >= 4 cores


def _serialized(index) -> str:
    import io

    buf = io.StringIO()
    index._write(buf)
    return buf.getvalue()


def _time_build(graph, workers=None, repeats=REPEATS):
    """Median build seconds (and the last built index)."""
    times, index = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        index = (
            SCTIndex.build(graph) if workers is None
            else SCTIndex.build(graph, parallel=workers)
        )
        times.append(time.perf_counter() - start)
    return statistics.median(times), index


def _time_sweep(index, workers=None, repeats=REPEATS):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        if workers is None:
            sctl_star(index, K, iterations=2)
        else:
            sctl_star(index, K, iterations=2, parallel=workers)
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def measure(name=DATASET, repeats=REPEATS):
    """Rows of (stage, workers, seconds, speedup, parity)."""
    graph = dataset(name)
    serial_build, serial_index = _time_build(graph, repeats=repeats)
    serial_bytes = _serialized(serial_index)
    serial_sweep = _time_sweep(serial_index, repeats=repeats)
    rows = [
        ["build", "serial", serial_build, 1.0, "-"],
        ["sctl*", "serial", serial_sweep, 1.0, "-"],
    ]
    speedups = {}
    for workers in WORKER_COUNTS:
        seconds, index = _time_build(graph, workers=workers, repeats=repeats)
        parity = _serialized(index) == serial_bytes
        speedups[workers] = serial_build / seconds if seconds else 0.0
        rows.append(["build", workers, seconds, speedups[workers], parity])
        sweep_seconds = _time_sweep(index, workers=workers, repeats=repeats)
        rows.append([
            "sctl*", workers, sweep_seconds,
            serial_sweep / sweep_seconds if sweep_seconds else 0.0, parity,
        ])
    return rows, speedups


def render(name=DATASET, repeats=REPEATS) -> str:
    rows, speedups = measure(name, repeats)
    cores = os.cpu_count() or 1
    table = format_table(
        ["stage", "workers", "median s", "speedup", "byte parity"],
        [
            [stage, w, f"{s:.3f}", f"{x:.2f}x", p]
            for stage, w, s, x, p in rows
        ],
        title=f"parallel scaling on {name} (host cores: {cores})",
    )
    verdict = (
        f"4-worker build speedup {speedups.get(4, 0):.2f}x "
        f"(target {SPEEDUP_TARGET}x needs >= 4 host cores; this host has "
        f"{cores})"
    )
    return table + "\n" + verdict


class TestParallelScaling:
    def test_quick_parity_and_harness(self):
        rows, _ = measure(QUICK_DATASET, repeats=1)
        assert all(parity is True for stage, w, s, x, parity in rows
                   if parity != "-")

    def test_speedup_on_capable_hosts(self):
        cores = os.cpu_count() or 1
        if cores < 4:
            import pytest

            pytest.skip(
                f"host has {cores} core(s); a pool cannot beat serial here"
            )
        _, speedups = measure(DATASET, repeats=REPEATS)
        assert speedups[4] >= SPEEDUP_TARGET


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    print(render(
        QUICK_DATASET if quick else DATASET,
        1 if quick else REPEATS,
    ))
