"""Extra study — peak memory of the exact algorithms.

Table 6 of the paper reports KCL-Exact running *out of memory* on
LiveJournal: it must hold every k-clique plus a per-clique weight split,
while SCTL*-Exact only ever materialises the cliques of its reduced
scope.  This bench measures peak Python allocations (tracemalloc) for
both solvers where both are feasible, and contrasts the *state sizes*
(cliques stored vs scope cliques) on the configuration where KCL-Exact's
state explodes.
"""

from functools import lru_cache

from common import dataset, index
from repro.baselines import kcl_exact
from repro.bench import format_table, timed_with_memory
from repro.core import sctl_star_exact

CONFIGS = [("email", 7), ("youtube", 6), ("orkut", 5), ("pokec", 5)]


@lru_cache(maxsize=None)
def memory_rows():
    rows = []
    for name, k in CONFIGS:
        graph = dataset(name)
        idx = index(name)
        theirs = timed_with_memory(
            lambda: kcl_exact(graph, k, initial_iterations=10, max_total_iterations=80)
        )
        ours = timed_with_memory(
            lambda: sctl_star_exact(
                graph, k, index=idx, sample_size=20_000, iterations=10, seed=0
            )
        )
        assert theirs.result.density_fraction == ours.result.density_fraction
        rows.append(
            [
                name,
                k,
                f"{theirs.peak_mib:.2f}",
                theirs.result.stats["cliques_stored"],
                f"{ours.peak_mib:.2f}",
                ours.result.stats["scope_cliques"],
            ]
        )
    return rows


@lru_cache(maxsize=None)
def state_size_rows():
    """State sizes on the large-k_max dataset where KCL-Exact dies.

    Everything here is closed-form index arithmetic — no enumeration.
    KCL-Exact must store all ``|C_k(G)|`` cliques with a per-clique float
    split: at (livejournal, k=17) that is C(34,17) ~ 2.3e9 cliques — the
    paper's out-of-memory row.  SCTL*-Exact reduces to an engagement
    scope first; its flow network needs the *scope* cliques, which at
    mid-k is the same wall (the paper accordingly reports LiveJournal
    only at k = k_max = 327; our k=32/34 rows are the analogue), but near
    k_max it collapses to a handful while KCL-Exact still cannot even
    finish its enumeration crawl (~2^34 recursion nodes at any k).
    """
    from fractions import Fraction
    from math import comb

    from repro.core.reductions import engagement_threshold

    idx = index("livejournal")
    graph = dataset("livejournal")
    rows = []
    for k in (17, 24, 32, 34):
        total = idx.count_k_cliques(k)
        # engagement scope seeded from the maximum-clique density
        clique = idx.a_maximum_clique()
        density = Fraction(comb(len(clique), k), len(clique))
        threshold = engagement_threshold(density)
        engagement = idx.per_vertex_counts(k)
        scope = [v for v in graph.vertices() if engagement[v] >= threshold]
        while True:
            inside = idx.per_vertex_counts_in_subset(k, scope)
            reduced = [v for v in scope if inside[v] >= threshold]
            if len(reduced) == len(scope):
                break
            scope = reduced
        scope_cliques = idx.count_in_subset(k, scope)
        rows.append(
            [
                "livejournal",
                k,
                f"{total:.2e}",
                f"~{total * k * 8 / 2**30:.2f} GiB",
                f"{scope_cliques:.2e}",
                "yes" if scope_cliques < 10**6 else "no",
            ]
        )
    return rows


def render() -> str:
    measured = format_table(
        [
            "dataset",
            "k",
            "KCL-Exact MiB",
            "cliques stored",
            "SCTL*-Exact MiB",
            "scope cliques",
        ],
        memory_rows(),
        title="peak tracemalloc of the exact solvers",
    )
    projected = format_table(
        [
            "dataset",
            "k",
            "|C_k(G)|",
            "KCL-Exact state",
            "scope cliques",
            "SCTL*-Exact flow feasible",
        ],
        state_size_rows(),
        title="state sizes where KCL-Exact goes out of memory (paper Table 6)",
    )
    return measured + "\n\n" + projected


class TestMemory:
    def test_measured_rows_agree_on_density(self):
        memory_rows()  # internal assert

    def test_kcl_exact_state_dominates(self):
        """KCL-Exact's stored-clique state is never smaller than
        SCTL*-Exact's scope (usually much bigger)."""
        for row in memory_rows():
            assert row[3] >= row[5], row

    def test_livejournal_state_walls(self):
        by_k = {row[1]: row for row in state_size_rows()}
        # mid-k: KCL-Exact's state alone is the paper's OOM wall
        assert float(by_k[17][2]) > 1e9
        # near k_max: our scope collapses to a feasible flow while the
        # KCL-Exact enumeration crawl stays ~2^34 nodes
        assert by_k[32][5] == "yes"
        assert by_k[34][5] == "yes"
        for row in state_size_rows():
            assert float(row[4]) <= float(row[2]) * 1.0001

    def test_benchmark_memory_measured_run(self, benchmark):
        graph = dataset("pokec")
        idx = index("pokec")
        benchmark.pedantic(
            lambda: sctl_star_exact(
                graph, 5, index=idx, sample_size=20_000, iterations=10, seed=0
            ),
            rounds=2,
            iterations=1,
        )


if __name__ == "__main__":
    print(render())
