"""Table 6 — query time of the exact algorithms.

Paper reference: Table 6 compares KCL-Exact with SCTL*-Exact on four
datasets at representative k values; on Orkut KCL-Exact times out and on
LiveJournal it runs out of memory storing the cliques, while SCTL*-Exact
answers everything thanks to the sampling warm start plus engagement
reduction.

Expected shape: both are exact (identical densities where both finish),
SCTL*-Exact is consistently faster, and only SCTL*-Exact copes with the
large-k_max datasets.
"""

from functools import lru_cache

from common import BUDGET_SECONDS, dataset, index
from repro.baselines import kcl_exact
from repro.bench import TimeoutTracker, format_table, timed
from repro.core import sctl_star_exact

# (dataset, k values); livejournal k near k_max mirrors the paper's k=327
CONFIGS = [
    ("email", (7, 10, 13)),
    ("youtube", (6, 9)),
    ("orkut", (5, 6, 7)),
    ("livejournal", (32, 34)),
]
KCL_EXACT_BUDGET = 15.0


@lru_cache(maxsize=None)
def table6_rows():
    rows = []
    tracker = TimeoutTracker(budget=KCL_EXACT_BUDGET)
    for name, ks in CONFIGS:
        graph = dataset(name)
        idx = index(name)
        for k in ks:
            # hard (forked) budget: enumerating k-cliques near k_max inside
            # a large clique is 2^k_max-infeasible — the paper's "time out"
            # and "out of memory" rows for KCL-Exact
            theirs = tracker.run_hard(
                name,
                "KCL-Exact",
                lambda: kcl_exact(
                    graph, k, initial_iterations=10, max_total_iterations=80
                ),
            )
            ours = timed(
                lambda: sctl_star_exact(
                    graph, k, index=idx, sample_size=20_000, iterations=10, seed=0
                ),
                budget=BUDGET_SECONDS,
            )
            if theirs.result is not None and ours.result is not None:
                assert (
                    theirs.result.density_fraction == ours.result.density_fraction
                ), (name, k)
            rows.append(
                [
                    name,
                    k,
                    theirs.cell,
                    f"{ours.seconds:.3f}",
                    f"{ours.result.density:.4e}",
                ]
            )
    return rows


def render() -> str:
    return format_table(
        ["dataset", "k", "KCL-Exact (s)", "SCTL*-Exact (s)", "optimal density"],
        table6_rows(),
        title="Table 6: exact algorithms",
    )


class TestTable6:
    def test_sctl_exact_always_finishes(self):
        for row in table6_rows():
            assert row[3] != "time out"

    def test_sctl_exact_faster_or_kcl_times_out(self):
        """The paper's shape: SCTL*-Exact wins every configuration."""
        wins = 0
        for row in table6_rows():
            if row[2] == "time out":
                wins += 1
            elif float(row[3]) <= float(row[2]) * 1.5:
                wins += 1
        assert wins >= len(table6_rows()) - 2

    def test_large_kmax_dataset_solved(self):
        lj = [row for row in table6_rows() if row[0] == "livejournal"]
        assert lj and all(row[3] != "time out" for row in lj)

    def test_benchmark_sctl_exact_email(self, benchmark):
        graph = dataset("email")
        idx = index("email")
        benchmark.pedantic(
            lambda: sctl_star_exact(
                graph, 10, index=idx, sample_size=20_000, iterations=10, seed=0
            ),
            rounds=2,
            iterations=1,
        )

    def test_benchmark_kcl_exact_email(self, benchmark):
        graph = dataset("email")
        benchmark.pedantic(
            lambda: kcl_exact(graph, 10, initial_iterations=10),
            rounds=2,
            iterations=1,
        )


if __name__ == "__main__":
    print(render())
