"""Extra study — overhead of the observability layer (``repro.obs``).

The recorder threading through the pipeline promises to be free when
unused: every hot path guards its measurement work behind
``recorder.enabled``, so with the default :data:`~repro.obs.NULL_RECORDER`
the instrumented code runs the same statements as before the layer
existed.  This bench quantifies that promise on the SCTL* refinement
loop (the hottest instrumented path) and also reports what an attached
:class:`~repro.obs.MetricsRecorder` costs, with its per-stage breakdown.

The acceptance bar is < 2% median overhead for the null recorder; the
paired test below enforces 5% to stay robust against scheduler noise on
shared CI machines while still catching any accidental per-clique work
sneaking outside the ``enabled`` guard.
"""

import statistics
import time

from common import index
from repro.bench import format_table, timed_with_metrics
from repro.core import sctl_star
from repro.obs import MetricsRecorder

DATASET = "email"
K = 7
ITERATIONS = 10
REPEATS = 9


def _run_once(recorder=None) -> float:
    idx = index(DATASET)
    start = time.perf_counter()
    if recorder is None:
        sctl_star(idx, K, iterations=ITERATIONS)
    else:
        sctl_star(idx, K, iterations=ITERATIONS, recorder=recorder)
    return time.perf_counter() - start


def measure(repeats: int = REPEATS):
    """Interleaved A/B timing: (null-default medians, metrics medians).

    Interleaving rather than back-to-back blocks keeps slow drift (thermal
    throttling, background load) from biasing one arm of the comparison.
    """
    plain, recorded = [], []
    for _ in range(repeats):
        plain.append(_run_once())
        recorded.append(_run_once(MetricsRecorder()))
    return plain, recorded


def render() -> str:
    plain, recorded = measure()
    base = statistics.median(plain)
    with_metrics = statistics.median(recorded)
    rows = [
        ["default (NULL_RECORDER)", f"{base:.4f}", "-"],
        [
            "MetricsRecorder attached",
            f"{with_metrics:.4f}",
            f"{(with_metrics / base - 1) * 100:+.1f}%",
        ],
    ]
    table = format_table(
        ["configuration", "median s", "vs default"],
        rows,
        title=f"sctl_star overhead ({DATASET}, k={K}, T={ITERATIONS}, "
        f"{REPEATS} repeats)",
    )
    breakdown = timed_with_metrics(
        lambda rec: sctl_star(index(DATASET), K, iterations=ITERATIONS, recorder=rec)
    )
    stage_rows = [
        [f"refine/iteration/{t}", breakdown.stage_cell(f"refine/iteration/{t}")]
        for t in range(1, ITERATIONS + 1)
    ]
    stages = format_table(
        ["stage", "seconds"], stage_rows, title="per-stage breakdown (one run)"
    )
    return table + "\n\n" + stages


class TestObsOverhead:
    def test_null_recorder_overhead_is_negligible(self):
        # warm the memoised index so neither arm pays the build
        index(DATASET)
        plain, recorded = measure(repeats=5)
        base = statistics.median(plain)
        assert base > 0
        # the default (null) arm runs strictly less work than the
        # recorded arm, so beyond scheduler noise it must not be slower
        assert base <= statistics.median(recorded) * 1.05

    def test_metrics_recorder_overhead_is_bounded(self):
        index(DATASET)
        plain, recorded = measure(repeats=5)
        # even the *enabled* recorder only acts at iteration granularity;
        # a generous 50% bound catches accidental per-clique recording
        assert statistics.median(recorded) <= statistics.median(plain) * 1.5

    def test_recorded_run_matches_plain_result(self):
        idx = index(DATASET)
        recorder = MetricsRecorder()
        plain = sctl_star(idx, K, iterations=ITERATIONS)
        recorded = sctl_star(idx, K, iterations=ITERATIONS, recorder=recorder)
        assert plain.density_fraction == recorded.density_fraction
        assert plain.vertices == recorded.vertices
        assert recorder.counters["refine/iterations"] == ITERATIONS

    def test_benchmark_null_recorder_run(self, benchmark):
        idx = index(DATASET)
        benchmark.pedantic(
            lambda: sctl_star(idx, K, iterations=ITERATIONS),
            rounds=2,
            iterations=1,
        )


if __name__ == "__main__":
    print(render())
