"""Ablation C — partial SCT*-k'-Index: size/time vs threshold.

Isolates the §4.1 pre-pruning: building only subtrees whose root can be in
a k'-clique (out-degree and core-number tests).  The paper relies on this
to index Orkut/LiveJournal/Friendster at all; this sweep quantifies the
space-time trade-off and verifies that counting stays exact for k >= k'.
"""

from functools import lru_cache

from common import dataset, index
from repro.bench import format_table, timed
from repro.core import SCTIndex

# thresholds chosen around each dataset's interesting k range
CONFIGS = [("livejournal", (0, 8, 16, 24)), ("dblp", (0, 6, 12, 18))]


@lru_cache(maxsize=None)
def ablation_rows():
    rows = []
    for name, thresholds in CONFIGS:
        graph = dataset(name)
        reference = index(name)
        for threshold in thresholds:
            build = timed(lambda: SCTIndex.build(graph, threshold=threshold))
            idx = build.result
            check_k = max(threshold, 3)
            assert idx.count_k_cliques(check_k) == reference.count_k_cliques(check_k)
            rows.append(
                [
                    name,
                    threshold or "full",
                    f"{build.seconds:.3f}",
                    idx.n_tree_nodes,
                    f"{idx.n_tree_nodes / max(reference.n_tree_nodes, 1):.2%}",
                ]
            )
    return rows


def render() -> str:
    return format_table(
        ["dataset", "k'", "build (s)", "tree nodes", "vs full"],
        ablation_rows(),
        title="Ablation C: partial SCT*-k'-Index",
    )


class TestAblationPartialIndex:
    def test_higher_threshold_never_bigger(self):
        by_dataset = {}
        for row in ablation_rows():
            by_dataset.setdefault(row[0], []).append(row[3])
        for name, sizes in by_dataset.items():
            assert sizes == sorted(sizes, reverse=True), name

    def test_aggressive_threshold_shrinks_index(self):
        for name, thresholds in CONFIGS:
            rows = [r for r in ablation_rows() if r[0] == name]
            assert rows[-1][3] < rows[0][3]

    def test_benchmark_partial_build(self, benchmark):
        graph = dataset("livejournal")
        benchmark.pedantic(
            lambda: SCTIndex.build(graph, threshold=24), rounds=3, iterations=1
        )

    def test_benchmark_full_build(self, benchmark):
        graph = dataset("livejournal")
        benchmark.pedantic(lambda: SCTIndex.build(graph), rounds=3, iterations=1)


if __name__ == "__main__":
    print(render())
