"""Figure 4 — effect of k on the running time of KCL / SCTL / SCTL+ / SCTL*.

Paper reference: Figure 4 plots running time against k on five datasets
(T=10 refinement iterations).

Expected shape (paper): the SCT*-Index algorithms beat KCL at every k, the
margin exploding as k approaches k_max (KCL re-enumerates from scratch
while the index algorithms touch only deep subtrees); SCTL+ improves on
SCTL and SCTL* improves on SCTL+, with the optimisations mattering most
around k_max/2 where the clique count peaks.
"""

from functools import lru_cache

from common import dataset, index, k_sweep  # noqa: F401 (index used in tests)
from repro.baselines import kcl
from repro.bench import format_series, timed
from repro.core import sctl, sctl_plus, sctl_star
from repro.datasets import SMALL_SET

ITERATIONS = 10


@lru_cache(maxsize=None)
def figure4_series(name: str):
    graph = dataset(name)
    idx = index(name)
    ks = k_sweep(name, points=5)
    series = {"KCL": [], "SCTL": [], "SCTL+": [], "SCTL*": []}
    for k in ks:
        series["KCL"].append(timed(lambda: kcl(graph, k, iterations=ITERATIONS)).seconds)
        series["SCTL"].append(timed(lambda: sctl(idx, k, iterations=ITERATIONS)).seconds)
        series["SCTL+"].append(
            timed(lambda: sctl_plus(idx, k, iterations=ITERATIONS)).seconds
        )
        series["SCTL*"].append(
            timed(lambda: sctl_star(idx, k, iterations=ITERATIONS)).seconds
        )
    return ks, series


def render() -> str:
    blocks = []
    for name in SMALL_SET:
        ks, series = figure4_series(name)
        blocks.append(
            format_series("k", ks, series, title=f"Figure 4 ({name}): seconds vs k")
        )
    return "\n\n".join(blocks)


class TestFigure4:
    def test_index_algorithms_beat_kcl_at_large_k(self):
        """At the largest k, every SCT algorithm must outrun KCL —
        the paper's headline speedup regime."""
        for name in SMALL_SET:
            ks, series = figure4_series(name)
            assert series["SCTL"][-1] < series["KCL"][-1], name
            assert series["SCTL*"][-1] < series["KCL"][-1], name

    def test_optimisations_effective_at_mid_and_large_k(self):
        """The paper's §5 claim: the optimisations are "usually more
        effective when k approaches k_max/2" and beyond.  On the upper
        half of every sweep, SCTL* must be no slower than SCTL — up to an
        absolute floor of 50 ms below which both are effectively free and
        timing is pure noise.  (At k=3 the per-iteration reduction
        overhead can dominate on these miniature datasets; the paper's
        million-triangle graphs drown that constant.)"""
        for name in SMALL_SET:
            ks, series = figure4_series(name)
            upper = range(len(ks) // 2, len(ks))
            for i in upper:
                star, plain = series["SCTL*"][i], series["SCTL"][i]
                assert star <= max(plain * 1.2, 0.05), (name, ks[i], star, plain)

    def test_benchmark_sctl_large_k(self, benchmark):
        idx = index("gowalla")
        k = k_sweep("gowalla", points=5)[-1]
        benchmark.pedantic(
            lambda: sctl(idx, k, iterations=ITERATIONS), rounds=3, iterations=1
        )

    def test_benchmark_sctl_star_large_k(self, benchmark):
        idx = index("gowalla")
        k = k_sweep("gowalla", points=5)[-1]
        benchmark.pedantic(
            lambda: sctl_star(idx, k, iterations=ITERATIONS), rounds=3, iterations=1
        )

    def test_benchmark_kcl_large_k(self, benchmark):
        graph = dataset("gowalla")
        k = k_sweep("gowalla", points=5)[-1]
        benchmark.pedantic(
            lambda: kcl(graph, k, iterations=ITERATIONS), rounds=3, iterations=1
        )


if __name__ == "__main__":
    print(render())
