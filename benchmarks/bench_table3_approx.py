"""Table 3 — index build time plus approximation algorithms compared.

Paper reference: Table 3 reports, on five datasets, (a) SCT*-Index build
time and its size relative to |E|, (b) query time and approximation ratio
of CoreApp / KCL / SCTL* at a representative k (T=10), and (c) total query
time over *all* k values.

Expected shape (paper): SCTL* is fastest and near-optimal (ratio ~1.0),
KCL matches the ratio but is one to two orders of magnitude slower, and
CoreApp is slowest with the weakest ratios.
"""

from functools import lru_cache

from common import BUDGET_SECONDS, dataset, index, k_sweep, optimal_density
from repro.baselines import core_app, kcl
from repro.bench import TimeoutTracker, format_table, timed
from repro.core import SCTIndex, sctl_star
from repro.datasets import SMALL_SET

ITERATIONS = 10


def _representative_k(name: str) -> int:
    sweep = k_sweep(name, points=5)
    return sweep[len(sweep) // 2]


@lru_cache(maxsize=None)
def table3_rows():
    rows = []
    tracker = TimeoutTracker(budget=BUDGET_SECONDS)
    for name in SMALL_SET:
        graph = dataset(name)
        build = timed(lambda: SCTIndex.build(graph))
        idx = index(name)
        size_ratio = idx.n_tree_nodes / graph.m
        k_rep = _representative_k(name)
        optimum = optimal_density(name, k_rep)

        def ratio(result) -> str:
            if result is None:
                return "-"
            return f"{result.approximation_ratio(optimum):.2f}"

        core_rep = tracker.run(name, "CoreApp", lambda: core_app(graph, k_rep))
        kcl_rep = tracker.run(
            name, "KCL", lambda: kcl(graph, k_rep, iterations=ITERATIONS)
        )
        star_rep = tracker.run(
            name, "SCTL*", lambda: sctl_star(idx, k_rep, iterations=ITERATIONS)
        )

        totals = {"CoreApp": 0.0, "KCL": 0.0, "SCTL*": 0.0}
        timed_out = {alg: False for alg in totals}
        for k in range(3, idx.max_clique_size + 1):
            runs = {
                "CoreApp": tracker.run(name, "CoreApp/all", lambda: core_app(graph, k)),
                "KCL": tracker.run(
                    name, "KCL/all", lambda: kcl(graph, k, iterations=ITERATIONS)
                ),
                "SCTL*": tracker.run(
                    name, "SCTL*/all", lambda: sctl_star(idx, k, iterations=ITERATIONS)
                ),
            }
            for alg, outcome in runs.items():
                if outcome.timed_out:
                    timed_out[alg] = True
                else:
                    totals[alg] += outcome.seconds

        def total_cell(alg: str) -> str:
            return "time out" if timed_out[alg] else f"{totals[alg]:.2f}"

        rows.append(
            [
                name,
                f"{build.seconds:.2f}",
                f"{size_ratio:.2f}",
                k_rep,
                f"{core_rep.cell} ({ratio(core_rep.result)})",
                f"{kcl_rep.cell} ({ratio(kcl_rep.result)})",
                f"{star_rep.cell} ({ratio(star_rep.result)})",
                total_cell("CoreApp"),
                total_cell("KCL"),
                total_cell("SCTL*"),
            ]
        )
    return rows


def render() -> str:
    return format_table(
        [
            "dataset",
            "index build (s)",
            "nodes/m",
            "k",
            "CoreApp s (ratio)",
            "KCL s (ratio)",
            "SCTL* s (ratio)",
            "all-k CoreApp",
            "all-k KCL",
            "all-k SCTL*",
        ],
        table3_rows(),
        title=f"Table 3: approximation algorithms (T={ITERATIONS})",
    )


class TestTable3:
    def test_sctl_star_is_near_optimal_everywhere(self):
        for row in table3_rows():
            ratio = float(row[6].split("(")[1].rstrip(")"))
            assert ratio >= 0.95, row[0]

    def test_sctl_star_total_time_beats_kcl(self):
        for row in table3_rows():
            if row[8] == "time out" or row[9] == "time out":
                continue
            assert float(row[9]) <= float(row[8]), row[0]

    def test_benchmark_sctl_star_email(self, benchmark):
        idx = index("email")
        k = _representative_k("email")
        benchmark.pedantic(
            lambda: sctl_star(idx, k, iterations=ITERATIONS), rounds=3, iterations=1
        )

    def test_benchmark_kcl_email(self, benchmark):
        graph = dataset("email")
        k = _representative_k("email")
        benchmark.pedantic(
            lambda: kcl(graph, k, iterations=ITERATIONS), rounds=3, iterations=1
        )

    def test_benchmark_coreapp_email(self, benchmark):
        graph = dataset("email")
        k = _representative_k("email")
        benchmark.pedantic(lambda: core_app(graph, k), rounds=3, iterations=1)


if __name__ == "__main__":
    print(render())
