"""Figure 5 — accuracy of KCL / SCTL / SCTL* after 10 iterations.

Paper reference: Figure 5 plots the ratio of each algorithm's density to
the optimal density against k, on Email and Youtube.

Expected shape (paper): all three convex-programming algorithms sit at or
very near ratio 1.0 for every k — the optimisations in SCTL* do not cost
accuracy.
"""

from functools import lru_cache

from common import dataset, index, k_sweep, optimal_density  # noqa: F401
from repro.baselines import kcl
from repro.bench import format_series
from repro.core import sctl, sctl_star

ITERATIONS = 10
DATASETS = ("email", "youtube")


@lru_cache(maxsize=None)
def figure5_series(name: str):
    graph = dataset(name)
    idx = index(name)
    ks = k_sweep(name, points=5)
    series = {"KCL": [], "SCTL": [], "SCTL*": []}
    for k in ks:
        optimum = optimal_density(name, k)
        series["KCL"].append(
            kcl(graph, k, iterations=ITERATIONS).approximation_ratio(optimum)
        )
        series["SCTL"].append(
            sctl(idx, k, iterations=ITERATIONS).approximation_ratio(optimum)
        )
        series["SCTL*"].append(
            sctl_star(idx, k, iterations=ITERATIONS).approximation_ratio(optimum)
        )
    return ks, series


def render() -> str:
    blocks = []
    for name in DATASETS:
        ks, series = figure5_series(name)
        blocks.append(
            format_series(
                "k", ks, series, title=f"Figure 5 ({name}): ratio to optimal density"
            )
        )
    return "\n\n".join(blocks)


class TestFigure5:
    def test_ratios_are_valid_fractions_of_optimum(self):
        for name in DATASETS:
            _, series = figure5_series(name)
            for algorithm, values in series.items():
                assert all(0 <= v <= 1 + 1e-9 for v in values), (name, algorithm)

    def test_all_algorithms_near_optimal_in_near_clique_regime(self):
        """The Figure 5 shape: every algorithm >= 0.9 wherever the graph
        has real near-clique mass (>= 50 k-cliques).  At k = k_max these
        miniature datasets hold a *single* clique, where prefix extraction
        needs T >= k iterations to lift every member above the zero-weight
        tie mass — see EXPERIMENTS.md for the discussion."""
        for name in DATASETS:
            ks, series = figure5_series(name)
            idx = index(name)
            for i, k in enumerate(ks):
                if idx.count_k_cliques(k) < 50:
                    continue
                for algorithm, values in series.items():
                    assert values[i] >= 0.9, (name, algorithm, k)

    def test_sctl_star_optimal_even_at_kmax(self):
        """SCTL*'s maximum-clique warm start keeps it at ratio ~1.0 even
        in the single-clique regime where KCL/SCTL (T=10) collapse —
        an observed advantage of the index-based initialisation."""
        for name in DATASETS:
            _, series = figure5_series(name)
            assert min(series["SCTL*"]) >= 0.95, name
            assert series["SCTL*"][-1] >= series["KCL"][-1] - 1e-9, name

    def test_sctl_star_matches_sctl_accuracy(self):
        """Optimisations must never degrade accuracy."""
        for name in DATASETS:
            _, series = figure5_series(name)
            for a, b in zip(series["SCTL*"], series["SCTL"]):
                assert a >= b - 0.1

    def test_benchmark_accuracy_run_email(self, benchmark):
        idx = index("email")
        benchmark.pedantic(
            lambda: sctl_star(idx, 7, iterations=ITERATIONS), rounds=3, iterations=1
        )


if __name__ == "__main__":
    print(render())
