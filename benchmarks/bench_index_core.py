"""Core SCT*-Index benchmark: build, traverse, load, broadcast.

The flat-array v2 pipeline has four costs an operator cares about, and
this bench measures all of them on a bundled dataset and writes the
numbers to ``BENCH_index.json`` (uploaded as a CI artifact so trends are
inspectable per commit):

1. **build** — wall clock of ``SCTIndex.build``; the offline cost.
2. **path throughput** — valid root-to-leaf paths streamed per second by
   the window-scan traversal (``iter_paths``), the inner loop of every
   SCTL-family sweep.
3. **cold load** — v1 text parse vs v2 mmap, the service's cold-start
   path.  The v2 load is header + ``mmap`` + column views, so it must be
   far faster than re-parsing JSON lines; the bench asserts the paper's
   engineering claim at a conservative ``>= 5x`` on the full dataset.
4. **broadcast** — copying the columns into a shared-memory block plus
   spinning up a 4-worker pool against it (``PathShardEngine``), the
   amortised cost of going parallel.

``--quick`` (and the pytest smoke) uses the small ``email`` graph and a
single repeat; the 5x load assertion only arms on the full run, where
the index is big enough that constant overheads do not dominate.
"""

import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

from common import dataset
from repro.bench import format_table
from repro.core import SCTIndex
from repro.options import ParallelConfig
from repro.parallel.engine import PathShardEngine, _share_index

DATASET = "friendster"  # largest bundled graph (|V|=5600, |E|=27259)
QUICK_DATASET = "email"
K = 4
REPEATS = 3
BROADCAST_WORKERS = 4
LOAD_SPEEDUP_TARGET = 5.0  # v2 mmap vs v1 text, full dataset only
ARTIFACT = "BENCH_index.json"


def _median(fn, repeats):
    """Median seconds of ``fn()`` over ``repeats`` runs, and last result."""
    times, result = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


def _time_load(path, repeats):
    """Median cold-load seconds; every loaded index is closed again."""

    def load():
        index = SCTIndex.load(path)
        index.close()
        return index

    seconds, _ = _median(load, repeats)
    return seconds


def _time_broadcast(index, repeats):
    """Median seconds to share the columns + spin a 4-worker pool."""

    def broadcast():
        engine = PathShardEngine(index, ParallelConfig(workers=BROADCAST_WORKERS))
        try:
            engine.count_cliques(K)  # forces pool creation + one sweep
        finally:
            engine.close()

    share_times = []
    for _ in range(repeats):
        start = time.perf_counter()
        shm, _meta = _share_index(index)
        share_times.append(time.perf_counter() - start)
        shm.close()
        shm.unlink()
    pool_s, _ = _median(broadcast, max(1, repeats - 1))
    return statistics.median(share_times), pool_s


def measure(name=DATASET, repeats=REPEATS):
    graph = dataset(name)
    build_s, index = _median(lambda: SCTIndex.build(graph), repeats)

    sweep_s, n_paths = _median(
        lambda: sum(1 for _ in index.iter_paths(K)), repeats
    )
    throughput = n_paths / sweep_s if sweep_s else float("inf")

    with tempfile.TemporaryDirectory() as tmp:
        v1_path = Path(tmp) / "index.sct"
        v2_path = Path(tmp) / "index.sct2"
        index.save(v1_path, format=1)
        index.save(v2_path, format=2)
        v1_load_s = _time_load(v1_path, repeats)
        v2_load_s = _time_load(v2_path, repeats)
        v1_bytes = v1_path.stat().st_size
        v2_bytes = v2_path.stat().st_size

    share_s, pool_s = _time_broadcast(index, repeats)

    return {
        "dataset": name,
        "k": K,
        "n_vertices": graph.n,
        "n_nodes": index.n_tree_nodes,
        "build_s": build_s,
        "paths_per_s": throughput,
        "n_valid_paths": n_paths,
        "load_v1_s": v1_load_s,
        "load_v2_mmap_s": v2_load_s,
        "load_speedup": v1_load_s / v2_load_s if v2_load_s else float("inf"),
        "file_bytes_v1": v1_bytes,
        "file_bytes_v2": v2_bytes,
        "broadcast_share_s": share_s,
        "broadcast_pool_s": pool_s,
        "broadcast_workers": BROADCAST_WORKERS,
    }


def render(stats) -> str:
    rows = [
        ["build", f"{stats['build_s']:.3f} s"],
        [
            f"iter_paths(k={stats['k']})",
            f"{stats['paths_per_s']:,.0f} paths/s "
            f"({stats['n_valid_paths']} paths)",
        ],
        ["cold load v1 (text parse)", f"{stats['load_v1_s'] * 1e3:.2f} ms"],
        ["cold load v2 (mmap)", f"{stats['load_v2_mmap_s'] * 1e3:.2f} ms"],
        ["load speedup v2/v1", f"{stats['load_speedup']:.1f}x"],
        ["file size v1 / v2", f"{stats['file_bytes_v1']:,} / "
                              f"{stats['file_bytes_v2']:,} bytes"],
        ["broadcast: column copy", f"{stats['broadcast_share_s'] * 1e3:.2f} ms"],
        [
            f"broadcast: pool({stats['broadcast_workers']}) + sweep",
            f"{stats['broadcast_pool_s'] * 1e3:.2f} ms",
        ],
    ]
    return format_table(
        ["stage", "measurement"],
        rows,
        title=(
            f"index core on {stats['dataset']} "
            f"({stats['n_nodes']} tree nodes)"
        ),
    )


def write_artifact(stats, path=ARTIFACT):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2)
        handle.write("\n")


class TestIndexCoreBench:
    def test_quick_harness_and_artifact(self, tmp_path):
        stats = measure(QUICK_DATASET, repeats=1)
        assert stats["n_valid_paths"] > 0
        assert stats["load_speedup"] > 1.0  # mmap never loses to parsing
        artifact = tmp_path / ARTIFACT
        write_artifact(stats, artifact)
        assert json.loads(artifact.read_text())["dataset"] == QUICK_DATASET

    def test_mmap_load_speedup_on_full_dataset(self):
        stats = measure(DATASET, repeats=REPEATS)
        assert stats["load_speedup"] >= LOAD_SPEEDUP_TARGET


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    stats = measure(
        QUICK_DATASET if quick else DATASET,
        1 if quick else REPEATS,
    )
    print(render(stats))
    write_artifact(stats)
    if not quick and stats["load_speedup"] < LOAD_SPEEDUP_TARGET:
        print(
            f"FAIL: v2 mmap load only {stats['load_speedup']:.1f}x faster "
            f"than v1 (target {LOAD_SPEEDUP_TARGET}x)",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"wrote {ARTIFACT}")
