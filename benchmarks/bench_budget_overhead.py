"""Extra study — overhead of the resilience layer (``repro.resilience``).

The ``budget=`` keyword threading through the pipeline makes the same
promise the observability layer does: free when unused.  Every hot loop
guards its poll behind ``budget.active``, so with the default
:data:`~repro.resilience.NULL_BUDGET` the instrumented code runs one
extra attribute read per poll site and nothing else.  This bench
quantifies that promise on the SCTL* refinement loop and also reports
what an *armed* (never-exhausting) :class:`~repro.resilience.RunBudget`
costs — that arm additionally pays the round-boundary weight snapshot
that keeps degraded results on exact iteration boundaries.

The acceptance bar mirrors ``bench_obs_overhead.py``: < 2% median
overhead for the null budget, enforced at 5% in the paired test to stay
robust against scheduler noise on shared CI machines.
"""

import statistics
import time

from common import index
from repro.bench import format_table
from repro.core import sctl_star
from repro.resilience import RunBudget

DATASET = "email"
K = 7
ITERATIONS = 10
REPEATS = 9


def _run_once(budget=None) -> float:
    idx = index(DATASET)
    start = time.perf_counter()
    if budget is None:
        sctl_star(idx, K, iterations=ITERATIONS)
    else:
        sctl_star(idx, K, iterations=ITERATIONS, budget=budget)
    return time.perf_counter() - start


def _generous_budget() -> RunBudget:
    # armed (deadline set, so ``active`` is True) but never exhausting
    return RunBudget(wall_seconds=1e9)


def measure(repeats: int = REPEATS):
    """Interleaved A/B timing: (null-default medians, armed medians).

    Interleaving rather than back-to-back blocks keeps slow drift (thermal
    throttling, background load) from biasing one arm of the comparison.
    """
    plain, budgeted = [], []
    for _ in range(repeats):
        plain.append(_run_once())
        budgeted.append(_run_once(_generous_budget()))
    return plain, budgeted


def render() -> str:
    plain, budgeted = measure()
    base = statistics.median(plain)
    armed = statistics.median(budgeted)
    rows = [
        ["default (NULL_BUDGET)", f"{base:.4f}", "-"],
        [
            "RunBudget armed (generous deadline)",
            f"{armed:.4f}",
            f"{(armed / base - 1) * 100:+.1f}%",
        ],
    ]
    return format_table(
        ["configuration", "median s", "vs default"],
        rows,
        title=f"sctl_star budget overhead ({DATASET}, k={K}, T={ITERATIONS}, "
        f"{REPEATS} repeats)",
    )


class TestBudgetOverhead:
    def test_null_budget_overhead_is_negligible(self):
        # warm the memoised index so neither arm pays the build
        index(DATASET)
        plain, budgeted = measure(repeats=9)
        base = min(plain)
        assert base > 0
        # the default (null) arm runs strictly less work than the armed
        # arm; each run is only ~10ms, so compare the minima — the
        # estimator least contaminated by scheduler noise
        assert base <= min(budgeted) * 1.05

    def test_armed_budget_overhead_is_bounded(self):
        index(DATASET)
        plain, budgeted = measure(repeats=9)
        # polling plus one weight snapshot per round; a generous 50%
        # bound catches accidental per-clique work behind the guard
        assert min(budgeted) <= min(plain) * 1.5

    def test_budgeted_run_matches_plain_result(self):
        idx = index(DATASET)
        plain = sctl_star(idx, K, iterations=ITERATIONS)
        budgeted = sctl_star(
            idx, K, iterations=ITERATIONS, budget=_generous_budget()
        )
        assert not budgeted.is_partial
        assert plain.density_fraction == budgeted.density_fraction
        assert plain.vertices == budgeted.vertices
        assert plain.stats["weights"] == budgeted.stats["weights"]

    def test_benchmark_null_budget_run(self, benchmark):
        idx = index(DATASET)
        benchmark.pedantic(
            lambda: sctl_star(idx, K, iterations=ITERATIONS),
            rounds=2,
            iterations=1,
        )


if __name__ == "__main__":
    print(render())
