"""Extra study — the full approximation ladder on one table.

Complements Table 3 with the two peeling-family baselines the related
work (§8) discusses: greedy peeling (Charikar-style, 1/k guarantee) next
to CoreApp ((k'_max,Psi)-core, also 1/k) and the convex-programming
family.  Expected shape: the peel family is cheap but only
guarantee-level accurate on hard instances, while SCTL* is both cheap
*and* near-optimal.
"""

from functools import lru_cache

from common import dataset, index, optimal_density
from repro.baselines import core_app, greedy_peeling, kcl
from repro.bench import format_table, timed
from repro.core import sctl_star, sctl_star_sample

CONFIGS = [("orkut", 4), ("orkut", 5), ("skitter", 4), ("email", 7), ("pokec", 6)]
# orkut's densest region is a diffuse near-clique; the convex family needs
# ~2-8x more iterations there than on the planted datasets to pass 0.95
# (it provably converges to 1.0 — see bench_convergence.py)
ITERATIONS = 30


@lru_cache(maxsize=None)
def ladder_rows():
    rows = []
    for name, k in CONFIGS:
        graph = dataset(name)
        idx = index(name)
        optimum = optimal_density(name, k)
        entries = [
            ("Peel", timed(lambda: greedy_peeling(graph, k))),
            ("CoreApp", timed(lambda: core_app(graph, k))),
            ("KCL", timed(lambda: kcl(graph, k, iterations=ITERATIONS))),
            ("SCTL*", timed(lambda: sctl_star(idx, k, iterations=ITERATIONS))),
            (
                "SCTL*-Sample",
                timed(
                    lambda: sctl_star_sample(
                        idx, k, sample_size=5_000, iterations=ITERATIONS, seed=0
                    )
                ),
            ),
        ]
        for label, outcome in entries:
            ratio = outcome.result.approximation_ratio(optimum)
            rows.append(
                [name, k, label, f"{outcome.seconds:.3f}", f"{ratio:.4f}"]
            )
    return rows


def render() -> str:
    return format_table(
        ["dataset", "k", "algorithm", "time (s)", "ratio to optimal"],
        ladder_rows(),
        title="Extra: the full approximation ladder",
    )


class TestLadder:
    def test_every_ratio_within_guarantee(self):
        for name, k, label, _, ratio in ladder_rows():
            bound = 1.0 / k if label in ("Peel", "CoreApp") else 0.9
            assert float(ratio) >= bound - 1e-9, (name, k, label)

    def test_sctl_star_near_optimal_everywhere(self):
        for row in ladder_rows():
            if row[2] == "SCTL*":
                assert float(row[4]) >= 0.95, row

    def test_peel_at_least_coreapp(self):
        """Peeling keeps the best suffix; CoreApp keeps the innermost
        core of the same peel metric — peeling can only match or win."""
        by_config = {}
        for name, k, label, _, ratio in ladder_rows():
            by_config.setdefault((name, k), {})[label] = float(ratio)
        for config, ratios in by_config.items():
            assert ratios["Peel"] >= ratios["CoreApp"] - 1e-9, config

    def test_benchmark_peel(self, benchmark):
        graph = dataset("orkut")
        benchmark.pedantic(lambda: greedy_peeling(graph, 5), rounds=3, iterations=1)


if __name__ == "__main__":
    print(render())
