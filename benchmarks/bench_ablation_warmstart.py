"""Ablation D — the sampling warm start inside SCTL*-Exact.

Isolates §6.2's design: SCTL*-Exact seeds its engagement reduction with
the density achieved by SCTL*-Sample.  How much does that warm start
shrink the verification scope compared with seeding from the maximum
clique alone (sample_size=1 degenerates the warm start to near-nothing)?
"""

from functools import lru_cache

from common import dataset, index
from repro.bench import format_table, timed
from repro.core import sctl_star_exact

CONFIGS = [("orkut", 4), ("orkut", 5), ("skitter", 4)]


@lru_cache(maxsize=None)
def ablation_rows():
    rows = []
    for name, k in CONFIGS:
        graph = dataset(name)
        idx = index(name)
        warm = timed(
            lambda: sctl_star_exact(
                graph, k, index=idx, sample_size=20_000, iterations=8, seed=0
            )
        )
        cold = timed(
            lambda: sctl_star_exact(
                graph, k, index=idx, sample_size=1, iterations=8, seed=0
            )
        )
        assert warm.result.density_fraction == cold.result.density_fraction
        rows.append(
            [
                name,
                k,
                f"{warm.seconds:.3f}",
                warm.result.stats["scope_vertices"],
                warm.result.stats["scope_cliques"],
                f"{cold.seconds:.3f}",
                cold.result.stats["scope_vertices"],
                cold.result.stats["scope_cliques"],
            ]
        )
    return rows


def render() -> str:
    return format_table(
        [
            "dataset",
            "k",
            "warm s",
            "warm |V(scope)|",
            "warm cliques",
            "cold s",
            "cold |V(scope)|",
            "cold cliques",
        ],
        ablation_rows(),
        title="Ablation D: SCTL*-Sample warm start in SCTL*-Exact",
    )


class TestAblationWarmStart:
    def test_results_agree(self):
        ablation_rows()  # the internal assert compares densities

    def test_warm_scope_never_larger(self):
        for row in ablation_rows():
            assert row[3] <= row[6], row

    def test_benchmark_warm(self, benchmark):
        graph = dataset("orkut")
        idx = index("orkut")
        benchmark.pedantic(
            lambda: sctl_star_exact(
                graph, 5, index=idx, sample_size=20_000, iterations=8, seed=0
            ),
            rounds=2,
            iterations=1,
        )

    def test_benchmark_cold(self, benchmark):
        graph = dataset("orkut")
        idx = index("orkut")
        benchmark.pedantic(
            lambda: sctl_star_exact(
                graph, 5, index=idx, sample_size=1, iterations=8, seed=0
            ),
            rounds=2,
            iterations=1,
        )


if __name__ == "__main__":
    print(render())
