"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` file regenerates one table or figure of the paper.
Run any of them directly (``python benchmarks/bench_table3_approx.py``) for
the full printed artefact, or through ``pytest benchmarks/
--benchmark-only`` to get wall-clock measurements of the key cells.

Datasets, indexes and exact optimal densities are memoised process-wide so
the suite does not redo offline work per experiment — mirroring the paper,
which treats index construction as offline and reports it separately.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import List, Tuple

from repro.core import SCTIndex, sctl_star_exact
from repro.core.sct import SCTPath
from repro.datasets import load_dataset

__all__ = [
    "dataset",
    "index",
    "valid_paths",
    "optimal_density",
    "k_sweep",
    "BUDGET_SECONDS",
]

# soft per-call budget: the miniature analogue of the paper's 10^5 s limit
BUDGET_SECONDS = 60.0


def dataset(name: str):
    """The named registry graph (memoised by the registry itself)."""
    return load_dataset(name)


@lru_cache(maxsize=None)
def index(name: str) -> SCTIndex:
    """The (complete) SCT*-Index of the named dataset, built once."""
    return SCTIndex.build(dataset(name))


@lru_cache(maxsize=None)
def valid_paths(name: str, k: int) -> Tuple[SCTPath, ...]:
    """The k-valid root-to-leaf paths of the named dataset's index."""
    return tuple(index(name).collect_paths(k))


@lru_cache(maxsize=None)
def optimal_density(name: str, k: int) -> Fraction:
    """The exact optimal k-clique density (memoised per dataset and k)."""
    graph = dataset(name)
    result = sctl_star_exact(
        graph, k, index=index(name), sample_size=20_000, iterations=8, seed=0
    )
    return result.density_fraction


def k_sweep(name: str, points: int = 5, k_min: int = 3) -> List[int]:
    """``points`` evenly spread k values from ``k_min`` to the dataset's
    ``k_max`` — the x axis of the paper's figures."""
    k_max = index(name).max_clique_size
    if k_max <= k_min:
        return [k_min]
    if points == 1:
        return [k_max]
    step = (k_max - k_min) / (points - 1)
    values = sorted({k_min + round(i * step) for i in range(points)})
    return [k for k in values if k_min <= k <= k_max]
