"""Regenerate every table and figure in one pass.

Usage::

    python benchmarks/run_all.py            # print everything
    python benchmarks/run_all.py --out experiments_raw.txt

The per-artefact modules are imported in paper order and their
``render()`` output concatenated; all caches (datasets, indexes, exact
optima) are shared, so this is faster than running the files separately.
"""

from __future__ import annotations

import argparse
import sys
import time

ARTEFACTS = [
    ("Table 2", "bench_table2_datasets"),
    ("Table 3", "bench_table3_approx"),
    ("Figure 4", "bench_fig4_effect_of_k"),
    ("Figure 5", "bench_fig5_accuracy"),
    ("Table 4", "bench_table4_reductions"),
    ("Table 5", "bench_table5_sampling"),
    ("Table 6", "bench_table6_exact"),
    ("Ablation A (batch)", "bench_ablation_batch"),
    ("Ablation B (max-depth)", "bench_ablation_maxdepth"),
    ("Ablation C (partial index)", "bench_ablation_partial_index"),
    ("Ablation D (warm start)", "bench_ablation_warmstart"),
    ("Convergence", "bench_convergence"),
    ("LP cross-check", "bench_lp_crosscheck"),
    ("Extra baselines ladder", "bench_extra_baselines"),
    ("Memory", "bench_memory"),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", help="also write the output to this file")
    args = parser.parse_args(argv)
    sections = []
    for label, module_name in ARTEFACTS:
        start = time.perf_counter()
        module = __import__(module_name)
        body = module.render()
        elapsed = time.perf_counter() - start
        sections.append(f"==== {label} (generated in {elapsed:.1f}s) ====\n{body}")
        print(sections[-1], flush=True)
        print()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(sections) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
