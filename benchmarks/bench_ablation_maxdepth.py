"""Ablation B — max-depth pruning of the SCT*-Index traversal.

Isolates the §4.1 design choice of storing a max-depth per tree node: when
listing k-cliques, how many tree nodes does the pruned traversal visit
compared with walking the whole tree (what the original succinct clique
tree would do)?  The saving is what lets SCTL touch "only a small fraction
of the index as k gets large".
"""

from functools import lru_cache

from common import index, k_sweep
from repro.bench import format_table

DATASETS = ("email", "gowalla", "dblp", "livejournal")


@lru_cache(maxsize=None)
def ablation_rows():
    rows = []
    for name in DATASETS:
        idx = index(name)
        full = idx.traversal_node_count(None)
        for k in k_sweep(name, points=4):
            pruned = idx.traversal_node_count(k)
            rows.append(
                [name, k, full, pruned, f"{pruned / full:.2%}" if full else "-"]
            )
    return rows


def render() -> str:
    return format_table(
        ["dataset", "k", "nodes (no pruning)", "nodes (max-depth)", "visited"],
        ablation_rows(),
        title="Ablation B: max-depth pruning of index traversal",
    )


class TestAblationMaxDepth:
    def test_pruning_never_visits_more(self):
        for row in ablation_rows():
            assert row[3] <= row[2]

    def test_visits_shrink_as_k_grows(self):
        by_dataset = {}
        for row in ablation_rows():
            by_dataset.setdefault(row[0], []).append(row[3])
        for name, visits in by_dataset.items():
            assert visits == sorted(visits, reverse=True), name

    def test_large_k_visits_tiny_fraction(self):
        """Near k_max, the traversal must touch well under half the tree."""
        last_rows = {}
        for row in ablation_rows():
            last_rows[row[0]] = row
        for name, row in last_rows.items():
            assert row[3] <= row[2] * 0.5, row

    def test_benchmark_pruned_traversal(self, benchmark):
        idx = index("livejournal")
        k = idx.max_clique_size - 2
        benchmark(lambda: idx.traversal_node_count(k))

    def test_benchmark_full_traversal(self, benchmark):
        idx = index("livejournal")
        benchmark(lambda: idx.traversal_node_count(None))


if __name__ == "__main__":
    print(render())
