PYTHON ?= python3

.PHONY: install test bench experiments examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-assert:
	$(PYTHON) -m pytest benchmarks/ --benchmark-disable

experiments:
	$(PYTHON) benchmarks/run_all.py --out experiments_raw.txt

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
