"""Legacy setup shim.

The execution environment's setuptools predates PEP 660 editable installs
(no ``bdist_wheel``), so ``pip install -e . --no-build-isolation
--no-use-pep517`` goes through this file instead.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["repro-kcds = repro.cli:main"]},
)
