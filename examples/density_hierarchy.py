"""The full density hierarchy of a network.

Beyond the single densest subgraph, the density-friendly decomposition
splits the whole vertex set into shells of strictly decreasing marginal
density — core-periphery structure made exact.  This example builds the
k-clique hypergraph of a layered social network and prints its shells,
then shows how converged Frank–Wolfe vertex loads line up with them (the
structural fact behind the paper's weight-ordered extraction step).

Run:  python examples/density_hierarchy.py
"""

from repro.core.frank_wolfe import frank_wolfe
from repro.graph.generators import disjoint_union, planted_near_cliques_graph, gnp_graph
from repro.hypergraph import Hypergraph, density_friendly_decomposition


def main() -> None:
    # core: 10-vertex near-clique; middle: looser 12-vertex community;
    # periphery: sparse background
    layered = planted_near_cliques_graph(
        60, [(10, 0.95), (12, 0.55)], background_p=0.0, seed=31
    )
    background = gnp_graph(60, 0.03, seed=32)
    network = disjoint_union([layered, background])
    print(f"network: {network.n} vertices, {network.m} edges")

    k = 3
    hypergraph = Hypergraph.from_graph_cliques(network, k)
    print(f"{k}-clique hypergraph: {hypergraph.m} hyperedges\n")

    levels = density_friendly_decomposition(hypergraph)
    print("density-friendly decomposition (marginal densities):")
    for i, level in enumerate(levels, start=1):
        preview = list(level.vertices[:10])
        suffix = "..." if len(level.vertices) > 10 else ""
        print(f"  shell {i}: {len(level.vertices):3d} vertices, "
              f"density {float(level.density):8.3f}   {preview}{suffix}")

    # Frank-Wolfe loads converge to the shell densities
    state = frank_wolfe(hypergraph.edges, network.n, iterations=200)
    print("\nmean converged Frank-Wolfe load per shell:")
    for i, level in enumerate(levels, start=1):
        loads = [state.weights[v] for v in level.vertices]
        mean = sum(loads) / len(loads)
        print(f"  shell {i}: mean load {mean:8.3f} "
              f"(marginal density {float(level.density):8.3f})")


if __name__ == "__main__":
    main()
