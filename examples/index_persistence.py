"""Offline index construction and reuse across queries.

The SCT*-Index is designed to be built once, offline, and then serve
k-clique densest queries for *any* k (§4.1, Table 3's "offline
construction" column).  This example builds an index, saves it to disk,
reloads it in a fresh object, and answers a sweep of k values without ever
touching the raw graph again.

Run:  python examples/index_persistence.py
"""

import os
import tempfile
import time

from repro import SCTIndex, sctl_star
from repro.graph.generators import powerlaw_cluster_graph


def main() -> None:
    graph = powerlaw_cluster_graph(1500, 6, 0.6, seed=5)
    print(f"graph: {graph.n} vertices, {graph.m} edges")

    t0 = time.perf_counter()
    index = SCTIndex.build(graph)
    print(f"index built in {time.perf_counter() - t0:.3f}s "
          f"({index.n_tree_nodes} nodes)")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "graph.sct")
        index.save(path)
        size_kb = os.path.getsize(path) / 1024
        print(f"index saved to {path} ({size_kb:.1f} KiB)")

        t0 = time.perf_counter()
        reloaded = SCTIndex.load(path)
        print(f"index reloaded in {time.perf_counter() - t0:.3f}s\n")

    print("clique profile straight off the index:")
    for size, count in reloaded.clique_counts_by_size().items():
        if size >= 3:
            print(f"  {size}-cliques: {count}")

    print("\ndensest subgraph queries from the reloaded index:")
    for k in range(3, reloaded.max_clique_size + 1):
        t0 = time.perf_counter()
        result = sctl_star(reloaded, k, iterations=10)
        elapsed = time.perf_counter() - t0
        print(f"  k={k}: density {result.density:10.4f} "
              f"on {result.size:3d} vertices   ({elapsed:.3f}s)")


if __name__ == "__main__":
    main()
