"""Finding multiple fraud rings with iterated densest-subgraph extraction.

The paper's introduction motivates k-clique densest subgraphs with fraud
detection in financial networks (Hooi et al.'s FRAUDAR line of work):
colluding accounts interact with each other far more densely than honest
users do.  One ring is rarely the whole story, so this example uses
``top_dense_subgraphs`` — find the densest region, remove it, repeat — to
pull out every planted ring in order of density.

Run:  python examples/fraud_rings.py
"""

from repro import top_dense_subgraphs
from repro.graph.generators import disjoint_union, gnp_graph, planted_near_cliques_graph


def main() -> None:
    # three colluding rings of decreasing tightness inside a sparse
    # population of honest accounts
    rings = planted_near_cliques_graph(
        60,
        communities=[(12, 0.95), (10, 0.9), (8, 0.85)],
        background_p=0.0,
        seed=41,
    )
    honest = gnp_graph(500, 0.004, seed=42)
    network = disjoint_union([rings, honest])
    print(f"transaction network: {network.n} accounts, {network.m} interactions")

    k = 3
    found = top_dense_subgraphs(network, k, count=5, exact=True, min_density=1.0)
    print(f"\nrings detected (k={k}, exact, stopping below density 1.0):")
    planted = [set(range(12)), set(range(12, 22)), set(range(22, 30))]
    for rank, ring in enumerate(found, start=1):
        members = set(ring.vertices)
        overlaps = [f"{len(members & p)}/{len(p)}" for p in planted]
        print(f"  #{rank}: {ring.size} accounts, density {ring.density:.2f}, "
              f"overlap with planted rings: {overlaps}")

    recovered = set().union(*(set(r.vertices) for r in found)) if found else set()
    planted_all = set(range(30))
    precision = len(recovered & planted_all) / len(recovered) if recovered else 0
    recall = len(recovered & planted_all) / len(planted_all)
    print(f"\nprecision {precision:.2%}, recall {recall:.2%} "
          f"against the planted collusion set")


if __name__ == "__main__":
    main()
