"""Near-clique detection in a protein-interaction-style network.

The paper's motivating application (§1): in a protein-protein-interaction
network, a "near-clique" — a subgraph one or two edges short of complete —
often marks a protein complex whose missing edges are *predicted
interactions*.  This example plants two such complexes inside a noisy
background, recovers them with the k-clique densest subgraph, and prints
the missing intra-complex edges as interaction predictions.

Run:  python examples/protein_complexes.py
"""

from itertools import combinations

from repro import SCTIndex, sctl_star_exact
from repro.graph.generators import planted_near_cliques_graph


def main() -> None:
    # complex A: 10 proteins at 93% interaction coverage
    # complex B: 8 proteins at 88% coverage; sparse experimental noise around
    network = planted_near_cliques_graph(
        150,
        communities=[(10, 0.93), (8, 0.88)],
        background_p=0.015,
        seed=2024,
    )
    print(f"interaction network: {network.n} proteins, {network.m} interactions")

    index = SCTIndex.build(network)
    k = 4  # quadruplet co-membership: robust to single missing edges
    result = sctl_star_exact(network, k, index=index)
    complex_members = result.vertices
    print(f"\ndetected complex ({result.algorithm}, k={k}): "
          f"{len(complex_members)} proteins, "
          f"{result.clique_count} {k}-cliques, density {result.density:.2f}")
    print(f"members: {complex_members}")

    planted = set(range(10))
    recovered = planted & set(complex_members)
    print(f"overlap with planted complex A: {len(recovered)}/10 proteins")

    # missing intra-complex edges = predicted interactions
    predictions = [
        (u, v)
        for u, v in combinations(sorted(complex_members), 2)
        if not network.has_edge(u, v)
    ]
    print(f"\npredicted interactions (missing edges inside the complex):")
    for u, v in predictions:
        print(f"  protein {u} -- protein {v}")
    if not predictions:
        print("  (none: the detected complex is a perfect clique)")


if __name__ == "__main__":
    main()
