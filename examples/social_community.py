"""Comparing all algorithms on a social-network community graph.

Reproduces the paper's evaluation story in one script: on a graph with
pronounced community structure, run every approximation algorithm at the
same iteration budget and compare density, runtime and (via the exact
solver) true approximation ratios — the Table 3 / Figure 5 view in
miniature.

Run:  python examples/social_community.py
"""

import time

from repro import SCTIndex, densest_subgraph
from repro.bench import format_table
from repro.core import sctl_star_exact
from repro.graph import overlapping_community_graph


def main() -> None:
    graph = overlapping_community_graph(
        400, n_communities=30, community_size=18, intra_p=0.55,
        memberships=2, seed=77,
    )
    print(f"social graph: {graph.n} users, {graph.m} friendships")

    k = 4
    t0 = time.perf_counter()
    index = SCTIndex.build(graph)
    build_time = time.perf_counter() - t0
    print(f"SCT*-Index built in {build_time:.3f}s "
          f"({index.n_tree_nodes} nodes, k_max={index.max_clique_size})\n")

    exact = sctl_star_exact(graph, k, index=index)
    optimum = exact.density_fraction
    print(f"optimal {k}-clique density: {exact.density:.4f} "
          f"on {exact.size} vertices\n")

    rows = []
    for method in ("coreapp", "kcl", "sctl", "sctl+", "sctl*", "sctl*-sample"):
        t0 = time.perf_counter()
        result = densest_subgraph(
            graph, k, method=method, iterations=10,
            index=index, sample_size=5000,
        )
        elapsed = time.perf_counter() - t0
        rows.append([
            result.algorithm,
            f"{elapsed:.3f}",
            result.size,
            f"{result.density:.4f}",
            f"{result.approximation_ratio(optimum):.4f}",
        ])
    print(format_table(
        ["algorithm", "time (s)", "|S|", "density", "ratio to optimal"],
        rows,
        title=f"approximation algorithms at k={k}, T=10",
    ))


if __name__ == "__main__":
    main()
