"""Sampling on a large graph with a partial SCT*-k'-Index.

The paper's §6 workflow for graphs too big to index completely: build a
partial SCT*-k'-Index (skipping subtrees that cannot hold a k'-clique),
then run SCTL*-Sample, which (1) samples k-cliques proportionally per
index path without enumerating them, (2) refines weights on the sample,
and (3) recovers the *true* density of the chosen subgraph through index
counting — never listing all k-cliques at any point.

Run:  python examples/large_scale_sampling.py
"""

import time

from repro import SCTIndex, sctl_star_sample
from repro.datasets import load_dataset


def main() -> None:
    # the registry's Friendster stand-in: the largest bundled graph
    graph = load_dataset("friendster")
    print(f"graph: {graph.n} vertices, {graph.m} edges")

    threshold = 5
    t0 = time.perf_counter()
    partial = SCTIndex.build(graph, threshold=threshold)
    full = SCTIndex.build(graph)
    print(f"partial SCT*-{threshold}-Index: {partial.n_tree_nodes} nodes "
          f"(full index: {full.n_tree_nodes}) "
          f"built in {time.perf_counter() - t0:.2f}s\n")

    sigma = 10_000
    for k in (6, 9, 12):
        t0 = time.perf_counter()
        result = sctl_star_sample(
            partial, k, sample_size=sigma, iterations=10, seed=0
        )
        elapsed = time.perf_counter() - t0
        print(f"k={k}: sampled {result.stats['sampled_cliques']} cliques, "
              f"visited {result.stats['clique_visits']} during refinement")
        print(f"       -> density {result.density:.3f} on {result.size} "
              f"vertices  ({elapsed:.2f}s)\n")


if __name__ == "__main__":
    main()
