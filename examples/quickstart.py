"""Quickstart: find the k-clique densest subgraph of a small graph.

Builds a community graph, constructs the SCT*-Index once, and queries it
for several clique sizes with both the fast approximation (SCTL*) and the
exact solver (SCTL*-Exact).

Run:  python examples/quickstart.py
"""

from repro import SCTIndex, sctl_star, sctl_star_exact
from repro.graph import relaxed_caveman_graph


def main() -> None:
    # ten communities of eight vertices each, lightly rewired
    graph = relaxed_caveman_graph(10, 8, rewire_p=0.1, seed=1)
    print(f"input graph: {graph.n} vertices, {graph.m} edges")

    # the index is built once (offline in the paper's terms) and then
    # answers any clique size k
    index = SCTIndex.build(graph)
    print(f"SCT*-Index: {index.n_tree_nodes} tree nodes, "
          f"max clique size {index.max_clique_size}\n")

    for k in (3, 4, 5):
        approx = sctl_star(index, k, iterations=10)
        exact = sctl_star_exact(graph, k, index=index)
        ratio = approx.approximation_ratio(exact.density_fraction)
        print(f"k={k}:")
        print(f"  {approx.summary()}")
        print(f"  {exact.summary()}")
        print(f"  approximation ratio after 10 iterations: {ratio:.4f}")
        print(f"  certified upper bound from SCTL*: {approx.upper_bound:.4f}\n")


if __name__ == "__main__":
    main()
