"""Descriptive graph statistics.

Summary measures used by the dataset registry, the CLI and the
experiments when characterising inputs: degree profile, triangle-based
clustering, edge density.  Triangle counts are computed with the same
bitset trick as the clique algorithms (one ``&`` per edge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .graph import Graph

__all__ = [
    "GraphSummary",
    "degree_histogram",
    "triangle_counts",
    "local_clustering",
    "average_clustering",
    "transitivity",
    "edge_density",
    "summarize",
]


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Mapping degree -> number of vertices with that degree."""
    histogram: Dict[int, int] = {}
    for d in graph.degrees():
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def triangle_counts(graph: Graph) -> List[int]:
    """``result[v]`` = number of triangles through vertex ``v``."""
    bits = graph.adjacency_bitsets()
    counts = [0] * graph.n
    for u, v in graph.edges():
        common = (bits[u] & bits[v]).bit_count()
        if common:
            counts[u] += common
            counts[v] += common
    # every triangle was counted twice at each corner (once per incident edge)
    return [c // 2 for c in counts]


def local_clustering(graph: Graph) -> List[float]:
    """Watts–Strogatz local clustering coefficient per vertex."""
    triangles = triangle_counts(graph)
    coefficients = []
    for v in graph.vertices():
        d = graph.degree(v)
        possible = d * (d - 1) // 2
        coefficients.append(triangles[v] / possible if possible else 0.0)
    return coefficients


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient (0 for an empty graph)."""
    if graph.n == 0:
        return 0.0
    coefficients = local_clustering(graph)
    return sum(coefficients) / graph.n


def transitivity(graph: Graph) -> float:
    """Global clustering: ``3 * triangles / open-or-closed wedges``."""
    triangles = sum(triangle_counts(graph)) // 3
    wedges = sum(d * (d - 1) // 2 for d in graph.degrees())
    if wedges == 0:
        return 0.0
    return 3 * triangles / wedges


def edge_density(graph: Graph) -> float:
    """``m / C(n, 2)`` (0 for graphs with fewer than two vertices)."""
    if graph.n < 2:
        return 0.0
    return graph.m / (graph.n * (graph.n - 1) / 2)


@dataclass(frozen=True)
class GraphSummary:
    """One-stop descriptive summary of a graph."""

    n: int
    m: int
    min_degree: int
    max_degree: int
    mean_degree: float
    triangles: int
    average_clustering: float
    transitivity: float
    edge_density: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping of every summary field (full precision)."""
        return {
            "vertices": self.n,
            "edges": self.m,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "triangles": self.triangles,
            "average_clustering": self.average_clustering,
            "transitivity": self.transitivity,
            "edge_density": self.edge_density,
        }

    def as_row(self) -> List:
        """Flat row for table rendering."""
        return [
            self.n,
            self.m,
            self.min_degree,
            self.max_degree,
            f"{self.mean_degree:.2f}",
            self.triangles,
            f"{self.average_clustering:.3f}",
            f"{self.transitivity:.3f}",
            f"{self.edge_density:.4f}",
        ]


def summarize(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    degrees = graph.degrees()
    return GraphSummary(
        n=graph.n,
        m=graph.m,
        min_degree=min(degrees, default=0),
        max_degree=max(degrees, default=0),
        mean_degree=(2 * graph.m / graph.n) if graph.n else 0.0,
        triangles=sum(triangle_counts(graph)) // 3,
        average_clustering=average_clustering(graph),
        transitivity=transitivity(graph),
        edge_density=edge_density(graph),
    )
