"""Degeneracy-ordered DAG orientation.

Both KCList and the SCT*-Index build start from the same preprocessing step:
orient every edge of the undirected graph from the vertex that is peeled
*earlier* in a degeneracy ordering to the one peeled *later*.  The resulting
DAG has maximum out-degree equal to the degeneracy, so any recursion confined
to an out-neighbourhood works on at most ``degeneracy`` vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .cores import CoreDecomposition, core_decomposition
from .graph import Graph

__all__ = ["DegeneracyDAG", "build_degeneracy_dag"]


@dataclass(frozen=True)
class DegeneracyDAG:
    """Degeneracy-oriented view of an undirected graph.

    Attributes
    ----------
    graph:
        The underlying undirected graph.
    decomposition:
        The core decomposition that produced the orientation.
    out_neighbors:
        ``out_neighbors[v]`` lists the neighbours of ``v`` that appear
        *after* ``v`` in the degeneracy ordering, sorted by position in the
        ordering (so recursive algorithms see a consistent order).
    """

    graph: Graph
    decomposition: CoreDecomposition
    out_neighbors: List[List[int]]

    @property
    def degeneracy(self) -> int:
        """Degeneracy of the underlying graph (max out-degree bound)."""
        return self.decomposition.degeneracy

    def out_degree(self, v: int) -> int:
        """Out-degree of ``v`` in the orientation."""
        return len(self.out_neighbors[v])


def build_degeneracy_dag(
    graph: Graph, decomposition: Optional[CoreDecomposition] = None
) -> DegeneracyDAG:
    """Orient ``graph`` along a degeneracy ordering.

    Parameters
    ----------
    graph:
        The undirected input graph.
    decomposition:
        A pre-computed core decomposition to reuse; computed if omitted.
    """
    if decomposition is None:
        decomposition = core_decomposition(graph)
    pos = decomposition.position
    out: List[List[int]] = [[] for _ in range(graph.n)]
    for v in graph.vertices():
        later = [u for u in graph.neighbors(v) if pos[u] > pos[v]]
        later.sort(key=pos.__getitem__)
        out[v] = later
    return DegeneracyDAG(graph=graph, decomposition=decomposition, out_neighbors=out)
