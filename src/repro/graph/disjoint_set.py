"""Disjoint-set (union–find) forest.

Used by ``KPComputation`` (Algorithm 3 of the paper) to maintain k-clique
isolating partitions while sweeping root-to-leaf paths of the SCT*-Index.
Implements union-by-rank and iterative path compression, giving effectively
constant-time operations (inverse Ackermann amortised).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = ["DisjointSet"]


class DisjointSet:
    """Union–find over the integers ``0 .. n-1``."""

    __slots__ = ("_parent", "_rank", "_count")

    def __init__(self, n: int):
        self._parent = list(range(n))
        self._rank = [0] * n
        self._count = n

    @property
    def n_components(self) -> int:
        """Current number of disjoint sets."""
        return self._count

    def find(self, x: int) -> int:
        """Representative of the set containing ``x`` (path-compressed)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> int:
        """Merge the sets of ``x`` and ``y``; return the new representative."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        rank = self._rank
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        self._count -= 1
        return rx

    def union_many(self, items: Iterable[int]) -> int:
        """Merge all ``items`` into one set; return its representative.

        Raises ``IndexError`` on an empty iterable, mirroring ``union``'s
        requirement of at least one element.
        """
        it = iter(items)
        root = self.find(next(it))
        for x in it:
            root = self.union(root, x)
        return root

    def connected(self, x: int, y: int) -> bool:
        """Whether ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def groups(self) -> Dict[int, List[int]]:
        """Mapping from representative to the sorted members of its set."""
        out: Dict[int, List[int]] = {}
        for x in range(len(self._parent)):
            out.setdefault(self.find(x), []).append(x)
        return out

    def __len__(self) -> int:
        return len(self._parent)
