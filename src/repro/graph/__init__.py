"""Graph substrate: container, I/O, generators, cores, orientation."""

from .components import component_of, connected_components, is_connected
from .cores import CoreDecomposition, core_decomposition, degeneracy, k_core_vertices
from .disjoint_set import DisjointSet
from .generators import (
    barabasi_albert_graph,
    disjoint_union,
    gnm_graph,
    gnp_graph,
    grid_graph,
    overlapping_community_graph,
    planted_clique_graph,
    planted_near_cliques_graph,
    powerlaw_cluster_graph,
    relaxed_caveman_graph,
)
from .graph import Graph, iter_bits
from .io import parse_edge_lines, read_edge_list, write_edge_list
from .orientation import DegeneracyDAG, build_degeneracy_dag

__all__ = [
    "Graph",
    "iter_bits",
    "DisjointSet",
    "CoreDecomposition",
    "core_decomposition",
    "degeneracy",
    "k_core_vertices",
    "DegeneracyDAG",
    "build_degeneracy_dag",
    "connected_components",
    "component_of",
    "is_connected",
    "parse_edge_lines",
    "read_edge_list",
    "write_edge_list",
    "gnp_graph",
    "gnm_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
    "planted_clique_graph",
    "planted_near_cliques_graph",
    "relaxed_caveman_graph",
    "grid_graph",
    "overlapping_community_graph",
    "disjoint_union",
]
