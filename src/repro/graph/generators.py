"""Synthetic graph generators.

These generators provide the workloads for the examples, tests and the
benchmark suite.  Since the paper's SNAP datasets cannot be redistributed
(and billion-edge graphs are out of reach for pure Python), the dataset
registry composes these primitives into 12 graphs that mirror the structural
*roles* of the paper's datasets: community-rich social graphs, clique-poor
road networks, heavy-tailed collaboration graphs with very large maximum
cliques, and so on.

Every generator takes an explicit ``seed`` so all experiments are exactly
reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import InvalidParameterError
from .graph import Graph

__all__ = [
    "gnp_graph",
    "gnm_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
    "planted_clique_graph",
    "planted_near_cliques_graph",
    "relaxed_caveman_graph",
    "grid_graph",
    "overlapping_community_graph",
    "disjoint_union",
]


def _check_positive(name: str, value: int) -> None:
    if value < 0:
        raise InvalidParameterError(f"{name} must be non-negative, got {value}")


def gnp_graph(n: int, p: float, seed: int = 0) -> Graph:
    """Erdős–Rényi ``G(n, p)`` random graph."""
    _check_positive("n", n)
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]
    return Graph(n, edges)


def gnm_graph(n: int, m: int, seed: int = 0) -> Graph:
    """Uniform random graph with exactly ``n`` vertices and ``m`` edges."""
    _check_positive("n", n)
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise InvalidParameterError(f"m={m} exceeds max {max_m} for n={n}")
    rng = random.Random(seed)
    chosen: Set[Tuple[int, int]] = set()
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if u > v:
            u, v = v, u
        chosen.add((u, v))
    return Graph(n, chosen)


def barabasi_albert_graph(n: int, m: int, seed: int = 0) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    Each new vertex attaches to ``m`` existing vertices chosen proportionally
    to degree (sampling from the repeated-endpoint list, the standard BA
    construction).
    """
    if m < 1 or n < m + 1:
        raise InvalidParameterError(f"need n > m >= 1, got n={n}, m={m}")
    rng = random.Random(seed)
    edges: List[Tuple[int, int]] = []
    # start from a star on m+1 vertices so every vertex has degree >= 1
    repeated: List[int] = []
    for v in range(1, m + 1):
        edges.append((0, v))
        repeated.extend((0, v))
    for v in range(m + 1, n):
        targets: Set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            edges.append((v, t))
            repeated.extend((v, t))
    return Graph(n, edges)


def powerlaw_cluster_graph(n: int, m: int, p: float, seed: int = 0) -> Graph:
    """Holme–Kim powerlaw graph with tunable clustering.

    Like Barabási–Albert, but after each preferential attachment step a
    triad-formation step closes a triangle with probability ``p``.  High
    ``p`` yields many triangles and hence non-trivial k-cliques — the
    social-network-like regime the paper's datasets live in.
    """
    if m < 1 or n < m + 1:
        raise InvalidParameterError(f"need n > m >= 1, got n={n}, m={m}")
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"p must be in [0, 1], got {p}")
    rng = random.Random(seed)
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    repeated: List[int] = []

    def add_edge(u: int, v: int) -> None:
        if u != v and v not in adjacency[u]:
            adjacency[u].add(v)
            adjacency[v].add(u)
            repeated.extend((u, v))

    for v in range(1, m + 1):
        add_edge(0, v)
    for v in range(m + 1, n):
        added = 0
        last_target: Optional[int] = None
        guard = 0
        while added < m and guard < 50 * m:
            guard += 1
            if last_target is not None and rng.random() < p:
                # triad formation: attach to a neighbour of the last target
                candidates = [u for u in adjacency[last_target] if u != v and u not in adjacency[v]]
                if candidates:
                    t = rng.choice(candidates)
                    add_edge(v, t)
                    added += 1
                    last_target = t
                    continue
            t = rng.choice(repeated)
            if t != v and t not in adjacency[v]:
                add_edge(v, t)
                added += 1
                last_target = t
    edges = [(u, v) for u in range(n) for v in adjacency[u] if u < v]
    return Graph(n, edges)


def planted_clique_graph(n: int, clique_size: int, p: float, seed: int = 0) -> Graph:
    """``G(n, p)`` background with one planted clique on vertices ``0..s-1``."""
    if clique_size > n:
        raise InvalidParameterError(f"clique_size={clique_size} exceeds n={n}")
    base = gnp_graph(n, p, seed=seed)
    edges = list(base.edges())
    edges.extend(
        (i, j) for i in range(clique_size) for j in range(i + 1, clique_size)
    )
    return Graph(n, edges)


def planted_near_cliques_graph(
    n: int,
    communities: Sequence[Tuple[int, float]],
    background_p: float = 0.002,
    seed: int = 0,
) -> Graph:
    """Sparse background with several planted dense blocks ("near-cliques").

    Parameters
    ----------
    n:
        Total vertex count.
    communities:
        Sequence of ``(size, density)`` pairs; blocks are placed on disjoint
        vertex ranges starting at 0 and wired internally as ``G(size,
        density)``.
    background_p:
        Edge probability between all remaining pairs.
    """
    total = sum(size for size, _ in communities)
    if total > n:
        raise InvalidParameterError(
            f"communities need {total} vertices but n={n}"
        )
    rng = random.Random(seed)
    edges: Set[Tuple[int, int]] = set()
    start = 0
    for size, density in communities:
        members = range(start, start + size)
        for i in members:
            for j in range(i + 1, start + size):
                if rng.random() < density:
                    edges.add((i, j))
        start += size
    # sparse background over all pairs (cheap sampling: expected count draws)
    expected = background_p * n * (n - 1) / 2
    draws = int(expected * 1.2) + 1
    for _ in range(draws):
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if u > v:
            u, v = v, u
        edges.add((u, v))
    return Graph(n, edges)


def relaxed_caveman_graph(
    n_cliques: int, clique_size: int, rewire_p: float, seed: int = 0
) -> Graph:
    """Connected caveman graph with random rewiring.

    ``n_cliques`` cliques of ``clique_size`` vertices each; every edge is
    rewired to a random endpoint with probability ``rewire_p``.  A classic
    community-structure benchmark: each cave is a true clique minus the
    rewired edges, i.e. exactly the "near-clique" objects the k-clique
    densest subgraph targets.
    """
    if n_cliques < 1 or clique_size < 2:
        raise InvalidParameterError("need n_cliques >= 1 and clique_size >= 2")
    rng = random.Random(seed)
    n = n_cliques * clique_size
    edges: Set[Tuple[int, int]] = set()
    for c in range(n_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                u, v = base + i, base + j
                if rng.random() < rewire_p:
                    w = rng.randrange(n)
                    if w != u:
                        v = w
                if u > v:
                    u, v = v, u
                if u != v:
                    edges.add((u, v))
    # ring of caves to keep things connected
    for c in range(n_cliques):
        u = c * clique_size
        v = ((c + 1) % n_cliques) * clique_size
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph(n, edges)


def grid_graph(rows: int, cols: int, diagonal_p: float = 0.0, seed: int = 0) -> Graph:
    """A rows×cols lattice, optionally with random diagonals.

    With ``diagonal_p == 0`` the graph is triangle-free (`k_max == 2`), the
    road-network regime of the paper's ``road-CA`` dataset.  Small
    ``diagonal_p`` sprinkles triangles to emulate highway interchanges.
    """
    _check_positive("rows", rows)
    _check_positive("cols", cols)
    rng = random.Random(seed)
    idx = lambda r, c: r * cols + c  # noqa: E731 - tiny local helper
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((idx(r, c), idx(r, c + 1)))
            if r + 1 < rows:
                edges.append((idx(r, c), idx(r + 1, c)))
            if diagonal_p and r + 1 < rows and c + 1 < cols:
                if rng.random() < diagonal_p:
                    edges.append((idx(r, c), idx(r + 1, c + 1)))
    return Graph(rows * cols, edges)


def overlapping_community_graph(
    n: int,
    n_communities: int,
    community_size: int,
    intra_p: float,
    memberships: int = 2,
    seed: int = 0,
) -> Graph:
    """Random overlapping communities (an LFR-lite benchmark).

    Each vertex joins ``memberships`` communities uniformly at random; each
    community is wired internally as ``G(size, intra_p)``.  Overlaps create
    vertices shared by several dense regions — the case where
    clique-connectivity partitions are non-trivial.
    """
    _check_positive("n", n)
    rng = random.Random(seed)
    members: List[List[int]] = [[] for _ in range(n_communities)]
    for v in range(n):
        for c in rng.sample(range(n_communities), min(memberships, n_communities)):
            if len(members[c]) < community_size:
                members[c].append(v)
    edges: Set[Tuple[int, int]] = set()
    for group in members:
        for i, u in enumerate(group):
            for v in group[i + 1:]:
                if rng.random() < intra_p:
                    edges.add((min(u, v), max(u, v)))
    return Graph(n, edges)


def disjoint_union(graphs: Iterable[Graph]) -> Graph:
    """The disjoint union of ``graphs`` (vertex ids shifted left-to-right)."""
    edges: List[Tuple[int, int]] = []
    offset = 0
    for g in graphs:
        edges.extend((u + offset, v + offset) for u, v in g.edges())
        offset += g.n
    return Graph(offset, edges)
