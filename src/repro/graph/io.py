"""Reading and writing graphs as edge-list text files.

The format is the SNAP convention the paper's datasets use: one edge per
line, two whitespace-separated vertex tokens, ``#``-prefixed comment lines
ignored.  Vertex tokens may be arbitrary strings; they become graph labels.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Tuple, Union

from ..errors import EdgeListParseError
from .graph import Graph

__all__ = ["read_edge_list", "write_edge_list", "parse_edge_lines"]

PathLike = Union[str, "os.PathLike[str]"]


def parse_edge_lines(
    lines: Iterable[str], source: str = ""
) -> List[Tuple[str, str]]:
    """Parse edge-list text lines into ``(u, v)`` label pairs.

    Blank lines and lines starting with ``#`` or ``%`` are skipped.
    Raises :class:`~repro.errors.EdgeListParseError` on malformed lines,
    carrying the 1-based line number and the offending text (prefixed
    with ``source`` when given, e.g. the file path).
    """
    edges: List[Tuple[str, str]] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("%"):
            continue
        parts = line.split()
        if len(parts) < 2:
            where = f"{source}, line {lineno}" if source else f"line {lineno}"
            raise EdgeListParseError(
                lineno, line,
                f"{where}: expected two vertex tokens, got {line!r}",
            )
        u, v = parts[0], parts[1]
        if u == v:
            continue  # SNAP files occasionally contain self-loops; drop them
        edges.append((u, v))
    return edges


def read_edge_list(path: PathLike, directed_as_undirected: bool = True) -> Graph:
    """Read a graph from an edge-list file.

    Parameters
    ----------
    path:
        File to read.
    directed_as_undirected:
        Kept for interface clarity; edges are always symmetrised because the
        library only models undirected graphs.
    """
    del directed_as_undirected  # undirected is the only supported mode
    with open(path, "r", encoding="utf-8") as handle:
        pairs = parse_edge_lines(handle, source=str(path))
    return Graph.from_edges(pairs)


def write_edge_list(graph: Graph, path: PathLike, header: str = "") -> None:
    """Write ``graph`` as an edge-list file (labels used when present)."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# n={graph.n} m={graph.m}\n")
        for u, v in graph.edges():
            handle.write(f"{graph.label_of(u)}\t{graph.label_of(v)}\n")
