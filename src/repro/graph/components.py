"""Connected components and related traversal utilities."""

from __future__ import annotations

from collections import deque
from typing import List

from .graph import Graph

__all__ = ["connected_components", "component_of", "is_connected"]


def connected_components(graph: Graph) -> List[List[int]]:
    """All connected components, each as a sorted vertex list.

    Components are returned in order of their smallest vertex.
    """
    seen = [False] * graph.n
    components: List[List[int]] = []
    for start in graph.vertices():
        if seen[start]:
            continue
        comp = []
        queue = deque([start])
        seen[start] = True
        while queue:
            v = queue.popleft()
            comp.append(v)
            for u in graph.neighbors(v):
                if not seen[u]:
                    seen[u] = True
                    queue.append(u)
        comp.sort()
        components.append(comp)
    return components


def component_of(graph: Graph, v: int) -> List[int]:
    """The sorted vertex list of the component containing ``v``."""
    seen = {v}
    queue = deque([v])
    while queue:
        x = queue.popleft()
        for u in graph.neighbors(x):
            if u not in seen:
                seen.add(u)
                queue.append(u)
    return sorted(seen)


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (vacuously true when ``n <= 1``)."""
    if graph.n <= 1:
        return True
    return len(component_of(graph, 0)) == graph.n
