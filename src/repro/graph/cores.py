"""k-core decomposition and degeneracy ordering.

The degeneracy ordering drives both the KCList baseline and the SCT*-Index
build: orienting every edge from the earlier to the later vertex in the
ordering yields a DAG whose out-degrees are bounded by the degeneracy, which
bounds the work of all clique-local recursions.

The peeling algorithm is the classic linear-time bucket peel of
Matula & Beck (1983): repeatedly remove a vertex of minimum remaining degree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .graph import Graph

__all__ = ["CoreDecomposition", "core_decomposition", "k_core_vertices", "degeneracy"]


@dataclass(frozen=True)
class CoreDecomposition:
    """Result of a core decomposition.

    Attributes
    ----------
    order:
        Degeneracy ordering — the vertices in the order they were peeled.
    core_number:
        ``core_number[v]`` is the largest ``c`` such that ``v`` belongs to
        the c-core.
    degeneracy:
        The graph degeneracy ``max(core_number)`` (0 for an empty graph).
    position:
        ``position[v]`` is the index of ``v`` in ``order``.
    """

    order: List[int]
    core_number: List[int]
    degeneracy: int
    position: List[int]


def core_decomposition(graph: Graph) -> CoreDecomposition:
    """Compute core numbers and a degeneracy ordering by bucket peeling.

    Runs in ``O(n + m)`` time.
    """
    n = graph.n
    degree = list(graph.degrees())
    max_deg = max(degree, default=0)

    # bucket[d] holds the vertices whose current degree is d
    bucket: List[List[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        bucket[degree[v]].append(v)

    removed = [False] * n
    core_number = [0] * n
    order: List[int] = []
    current_core = 0
    cursor = 0  # smallest possibly non-empty bucket index

    while len(order) < n:
        # Entries are inserted lazily: a vertex may sit in several buckets,
        # only the one matching its current degree is live.
        while cursor <= max_deg and not bucket[cursor]:
            cursor += 1
        v = bucket[cursor].pop()
        if removed[v] or degree[v] != cursor:
            continue  # stale entry
        current_core = max(current_core, cursor)
        core_number[v] = current_core
        removed[v] = True
        order.append(v)
        for u in graph.neighbors(v):
            if not removed[u] and degree[u] > 0:
                degree[u] -= 1
                bucket[degree[u]].append(u)
                if degree[u] < cursor:
                    cursor = degree[u]

    position = [0] * n
    for i, v in enumerate(order):
        position[v] = i
    return CoreDecomposition(
        order=order,
        core_number=core_number,
        degeneracy=max(core_number, default=0),
        position=position,
    )


def degeneracy(graph: Graph) -> int:
    """The degeneracy of ``graph`` (maximum core number)."""
    return core_decomposition(graph).degeneracy


def k_core_vertices(graph: Graph, k: int) -> List[int]:
    """Vertices of the k-core (maximal subgraph with min degree >= k).

    Returns a sorted vertex list; empty if no k-core exists.
    """
    decomp = core_decomposition(graph)
    return [v for v in graph.vertices() if decomp.core_number[v] >= k]
