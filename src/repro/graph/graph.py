"""Core undirected-graph container.

The :class:`Graph` class stores a simple, undirected, unweighted graph with
vertices compacted to the integer range ``0 .. n-1``.  It is the substrate
every algorithm in this package operates on.

Two adjacency representations are kept:

* ``set`` rows — convenient for membership tests and iteration; and
* big-integer *bitset* rows (built lazily) — Python arbitrary-precision
  integers make ``&`` between neighbourhoods a single C-level operation,
  which is what makes pure-Python clique enumeration tolerable.

Graphs are conceptually immutable once constructed: all mutating algorithms
(peeling, reductions, ...) either work on copies of the adjacency or build
induced subgraphs via :meth:`Graph.induced_subgraph`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import GraphError

__all__ = ["Graph", "iter_bits"]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the positions of set bits in ``mask`` in increasing order.

    This is the standard trick for iterating a big-int bitset: repeatedly
    isolate the lowest set bit with ``mask & -mask``.

    >>> list(iter_bits(0b10110))
    [1, 2, 4]
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class Graph:
    """A simple undirected graph over vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n``.  Self-loops are
        rejected; duplicate edges (in either orientation) are collapsed.
    labels:
        Optional external labels, one per vertex.  Purely cosmetic — every
        algorithm works on the integer ids.
    """

    __slots__ = ("_n", "_m", "_adj", "_labels", "_bitsets", "_degree_cache")

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[int, int]] = (),
        labels: Optional[Sequence] = None,
    ):
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        if labels is not None and len(labels) != n:
            raise GraphError(
                f"labels has {len(labels)} entries but graph has {n} vertices"
            )
        self._n = n
        adj: List[set] = [set() for _ in range(n)]
        m = 0
        for u, v in edges:
            if u == v:
                raise GraphError(f"self-loop on vertex {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
            if v not in adj[u]:
                adj[u].add(v)
                adj[v].add(u)
                m += 1
        self._adj = adj
        self._m = m
        self._labels = list(labels) if labels is not None else None
        self._bitsets: Optional[List[int]] = None
        self._degree_cache: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple]) -> "Graph":
        """Build a graph from edges over arbitrary hashable labels.

        Labels are compacted to ``0 .. n-1`` in first-seen order; the
        original labels are preserved on the returned graph.
        """
        ids: Dict = {}
        compact_edges: List[Tuple[int, int]] = []
        labels: List = []
        for u, v in edges:
            for x in (u, v):
                if x not in ids:
                    ids[x] = len(labels)
                    labels.append(x)
            compact_edges.append((ids[u], ids[v]))
        return cls(len(labels), compact_edges, labels=labels)

    @classmethod
    def complete(cls, n: int) -> "Graph":
        """The complete graph :math:`K_n`."""
        return cls(n, [(i, j) for i in range(n) for j in range(i + 1, n)])

    @classmethod
    def empty(cls, n: int) -> "Graph":
        """The edgeless graph on ``n`` vertices."""
        return cls(n)

    def copy(self) -> "Graph":
        """An independent copy of this graph."""
        return Graph(self._n, self.edges(), labels=self._labels)

    def _with_edge_delta(
        self,
        inserts: Sequence[Tuple[int, int]],
        deletes: Sequence[Tuple[int, int]],
    ) -> "Graph":
        """A structurally shared copy with an edge batch applied.

        Only the adjacency rows of touched vertices are copied; every
        other row (and the cached bitsets / degrees, patched per edge)
        is shared with ``self`` — which is safe because graphs are
        immutable once constructed.  Callers must already have validated
        the batch (every insert absent, every delete present, no
        overlap); :func:`repro.core.update.apply_edge_updates` is the
        validating front door.
        """
        g = object.__new__(Graph)
        g._n = self._n
        adj = list(self._adj)
        touched: set = set()
        for u, v in inserts:
            for x in (u, v):
                if x not in touched:
                    touched.add(x)
                    adj[x] = set(adj[x])
            adj[u].add(v)
            adj[v].add(u)
        for u, v in deletes:
            for x in (u, v):
                if x not in touched:
                    touched.add(x)
                    adj[x] = set(adj[x])
            adj[u].discard(v)
            adj[v].discard(u)
        g._adj = adj
        g._m = self._m + len(inserts) - len(deletes)
        g._labels = list(self._labels) if self._labels is not None else None
        if self._bitsets is not None:
            rows = list(self._bitsets)
            for u, v in inserts:
                rows[u] |= 1 << v
                rows[v] |= 1 << u
            for u, v in deletes:
                rows[u] &= ~(1 << v)
                rows[v] &= ~(1 << u)
            g._bitsets = rows
        else:
            g._bitsets = None
        if self._degree_cache is not None:
            degs = list(self._degree_cache)
            for u, v in inserts:
                degs[u] += 1
                degs[v] += 1
            for u, v in deletes:
                degs[u] -= 1
                degs[v] -= 1
            g._degree_cache = degs
        else:
            g._degree_cache = None
        return g

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def vertices(self) -> range:
        """All vertex ids."""
        return range(self._n)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each edge once as ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def neighbors(self, v: int) -> set:
        """The neighbour set of ``v``.  Treat as read-only."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return len(self._adj[v])

    def degrees(self) -> List[int]:
        """Degrees of all vertices (cached)."""
        if self._degree_cache is None:
            self._degree_cache = [len(s) for s in self._adj]
        return self._degree_cache

    def max_degree(self) -> int:
        """The maximum degree, 0 for an empty graph."""
        return max(self.degrees(), default=0)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return v in self._adj[u]

    def label_of(self, v: int) -> object:
        """External label of ``v`` (the id itself if no labels were given)."""
        if self._labels is None:
            return v
        return self._labels[v]

    @property
    def labels(self) -> Optional[List]:
        """The external label list, or ``None``."""
        return self._labels

    # ------------------------------------------------------------------
    # bitset adjacency
    # ------------------------------------------------------------------

    def adjacency_bitsets(self) -> List[int]:
        """Adjacency rows as big-int bitsets (bit ``v`` of row ``u`` set iff
        ``{u, v}`` is an edge).  Built once and cached."""
        if self._bitsets is None:
            rows = [0] * self._n
            for u, nbrs in enumerate(self._adj):
                row = 0
                for v in nbrs:
                    row |= 1 << v
                rows[u] = row
            self._bitsets = rows
        return self._bitsets

    # ------------------------------------------------------------------
    # subgraphs
    # ------------------------------------------------------------------

    def induced_subgraph(self, vertices: Iterable[int]) -> Tuple["Graph", List[int]]:
        """The subgraph induced by ``vertices``.

        Returns ``(subgraph, orig_ids)`` where ``orig_ids[i]`` is the vertex
        of *this* graph that became vertex ``i`` of the subgraph.  Vertex
        order follows increasing original id, so results are deterministic.
        """
        keep = sorted(set(vertices))
        for v in keep:
            if not (0 <= v < self._n):
                raise GraphError(f"vertex {v} out of range for n={self._n}")
        remap = {v: i for i, v in enumerate(keep)}
        keep_set = remap.keys()
        sub_edges = []
        for u in keep:
            for v in self._adj[u]:
                if u < v and v in keep_set:
                    sub_edges.append((remap[u], remap[v]))
        labels = [self.label_of(v) for v in keep]
        return Graph(len(keep), sub_edges, labels=labels), keep

    def is_clique(self, vertices: Sequence[int]) -> bool:
        """Whether ``vertices`` (distinct ids) induce a complete subgraph."""
        vs = list(vertices)
        if len(set(vs)) != len(vs):
            return False
        for i, u in enumerate(vs):
            nbrs = self._adj[u]
            for v in vs[i + 1:]:
                if v not in nbrs:
                    return False
        return True

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __contains__(self, v) -> bool:
        return isinstance(v, int) and 0 <= v < self._n

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self):  # graphs are mutable-ish containers; unhashable
        raise TypeError("Graph objects are unhashable")

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"
