"""Application-level workflows built on k-clique densest subgraphs."""

from .near_cliques import NearClique, extract_near_clique, predict_missing_edges
from .evaluation import f1_score, jaccard, precision_recall

__all__ = [
    "NearClique",
    "extract_near_clique",
    "predict_missing_edges",
    "precision_recall",
    "jaccard",
    "f1_score",
]
