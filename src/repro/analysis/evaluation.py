"""Evaluation helpers for detection experiments.

Small, dependency-free metrics for comparing detected vertex sets against
planted ground truth — used by the examples and the integration tests.
"""

from __future__ import annotations

from typing import Iterable, Tuple

__all__ = ["precision_recall", "jaccard", "f1_score"]


def precision_recall(detected: Iterable, truth: Iterable) -> Tuple[float, float]:
    """``(precision, recall)`` of ``detected`` against ``truth``.

    Empty ``detected`` has precision 1.0 by convention (no false
    positives); empty ``truth`` has recall 1.0.
    """
    detected_set = set(detected)
    truth_set = set(truth)
    hit = len(detected_set & truth_set)
    precision = hit / len(detected_set) if detected_set else 1.0
    recall = hit / len(truth_set) if truth_set else 1.0
    return precision, recall


def jaccard(a: Iterable, b: Iterable) -> float:
    """Jaccard similarity of two sets (1.0 when both are empty)."""
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def f1_score(detected: Iterable, truth: Iterable) -> float:
    """Harmonic mean of precision and recall (0.0 when both are 0)."""
    precision, recall = precision_recall(detected, truth)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
