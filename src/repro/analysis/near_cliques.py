"""Near-clique extraction and missing-edge prediction.

The paper's §1 motivates k-clique densest subgraphs through applications
where a *near-clique* — a subgraph a handful of edges short of complete —
is the object of interest, and the missing edges are themselves the
signal (predicted protein interactions, forming communities).  This
module packages that workflow:

* :func:`extract_near_clique` — find the densest region and report it
  with completeness statistics;
* :func:`predict_missing_edges` — rank the region's non-edges by how many
  k-cliques each would complete if added (the natural link-prediction
  score in this setting).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import comb
from typing import List, Optional, Tuple

from ..core.exact import sctl_star_exact
from ..core.sct import SCTIndex
from ..core.sctl_star import sctl_star
from ..errors import InvalidParameterError
from ..graph.graph import Graph

__all__ = ["NearClique", "extract_near_clique", "predict_missing_edges"]


@dataclass(frozen=True)
class NearClique:
    """A detected near-clique region.

    Attributes
    ----------
    members:
        Sorted vertex ids of the region.
    k:
        The clique size the detection ran with.
    clique_count:
        Number of k-cliques inside the region.
    density:
        Its k-clique density.
    present_edges / possible_edges:
        Edge completeness of the region; ``completeness`` is their ratio
        (1.0 for a perfect clique).
    missing_edges:
        The region's non-edges, ranked by prediction score (descending).
    """

    members: List[int]
    k: int
    clique_count: int
    density: float
    present_edges: int
    possible_edges: int
    missing_edges: List[Tuple[int, int]]

    @property
    def completeness(self) -> float:
        """Fraction of possible edges present (1.0 when empty too small)."""
        if self.possible_edges == 0:
            return 1.0
        return self.present_edges / self.possible_edges

    @property
    def is_clique(self) -> bool:
        """Whether the region is a perfect clique."""
        return self.present_edges == self.possible_edges


def predict_missing_edges(
    graph: Graph, members: List[int], k: int
) -> List[Tuple[int, int, int]]:
    """Rank the non-edges inside ``members`` by completion score.

    The score of a non-edge ``{u, v}`` is the number of *new* k-cliques
    that would appear if it were added: ``C(c, k-2)`` where ``c`` is the
    number of common neighbours of ``u`` and ``v`` inside the region —
    the measure behind "missing edges are good predictions of new
    interactions" (§1).

    Returns ``(u, v, score)`` triples sorted by descending score (ties by
    vertex ids).
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    inside = set(members)
    scored = []
    for u, v in combinations(sorted(inside), 2):
        if graph.has_edge(u, v):
            continue
        common = sum(
            1
            for w in graph.neighbors(u)
            if w in inside and graph.has_edge(v, w)
        )
        score = comb(common, k - 2) if common >= k - 2 else 0
        scored.append((u, v, score))
    scored.sort(key=lambda t: (-t[2], t[0], t[1]))
    return scored


def extract_near_clique(
    graph: Graph,
    k: int,
    index: Optional[SCTIndex] = None,
    exact: bool = True,
    iterations: int = 10,
    seed: int = 0,
) -> NearClique:
    """Detect the k-clique densest region and describe it as a near-clique.

    Parameters
    ----------
    graph:
        The input graph.
    k:
        Clique size (robustness knob: larger k tolerates fewer missing
        edges inside the region).
    index:
        Optional pre-built SCT*-Index.
    exact:
        Use the exact solver (default) or the SCTL* approximation.
    iterations, seed:
        Passed through to the underlying algorithm.
    """
    if index is None:
        index = SCTIndex.build(graph)
    if exact:
        result = sctl_star_exact(
            graph, k, index=index, iterations=iterations, seed=seed
        )
    else:
        result = sctl_star(index, k, iterations=iterations)
    members = result.vertices
    possible = len(members) * (len(members) - 1) // 2
    inside = set(members)
    present = sum(
        1 for u in members for v in graph.neighbors(u) if u < v and v in inside
    )
    ranked = predict_missing_edges(graph, members, k)
    return NearClique(
        members=members,
        k=k,
        clique_count=result.clique_count,
        density=result.density,
        present_edges=present,
        possible_edges=possible,
        missing_edges=[(u, v) for u, v, _ in ranked],
    )
