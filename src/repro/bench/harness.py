"""Benchmark harness: timing, soft timeouts, and table/series rendering.

The paper's evaluation machinery, in miniature.  Experiments time algorithm
calls, honour a per-call soft budget (a run whose wall-clock exceeds the
budget is reported as ``time out``, and — like the paper — larger ``k`` on
the same dataset/algorithm pair is skipped once a smaller one timed out),
and render plain-text tables and per-series "figures" that mirror the
paper's layout row for row.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import MetricsRecorder, Recorder

__all__ = [
    "Timed",
    "TimedWithMemory",
    "TimeoutTracker",
    "timed",
    "timed_hard",
    "timed_with_memory",
    "timed_with_metrics",
    "format_table",
    "format_series",
]


@dataclass
class Timed:
    """Outcome of one timed call.

    ``metrics`` is a :meth:`repro.obs.MetricsRecorder.snapshot` when the
    call was made through :func:`timed_with_metrics`, ``None`` otherwise.
    """

    result: Any
    seconds: float
    timed_out: bool = False
    metrics: Optional[Dict[str, Any]] = None

    @property
    def cell(self) -> str:
        """Table cell: seconds or ``time out``.

        Sub-millisecond runs render as ``<0.001`` — a literal ``0.000``
        would misread as "did not run at all" in the paper-style tables.
        """
        if self.timed_out:
            return "time out"
        rendered = f"{self.seconds:.3f}"
        return "<0.001" if rendered == "0.000" else rendered

    def stage_seconds(self, span: str) -> Optional[float]:
        """Total seconds recorded under ``span`` (and its sub-spans).

        Matches any span path equal to ``span``, starting with
        ``span + "/"`` — or *ending* with either, so a nested stage like
        ``"index/build"`` is found inside ``exact/scope_index/index/build``
        too.  ``None`` when no metrics were collected or nothing matched.
        """
        if self.metrics is None:
            return None
        total = None
        lead = span + "/"
        for entry in self.metrics.get("spans", []):
            path = entry["span"]
            if (
                path == span
                or path.startswith(lead)
                or path.endswith("/" + span)
                or ("/" + lead) in path
            ):
                total = (total or 0.0) + entry["seconds"]
        return total

    def stage_cell(self, span: str) -> str:
        """Table cell for one pipeline stage, e.g. ``exact/flow_round``.

        Renders like :attr:`cell`; ``-`` when the stage never ran or no
        recorder was attached.  This is what lets a benchmark row carry
        stage breakdowns next to its wall-clock column.
        """
        seconds = self.stage_seconds(span)
        if seconds is None:
            return "-"
        rendered = f"{seconds:.3f}"
        return "<0.001" if rendered == "0.000" else rendered


def timed(fn: Callable[[], Any], budget: Optional[float] = None) -> Timed:
    """Run ``fn`` and measure wall-clock time.

    ``budget`` is a *soft* limit: the call always completes (pure-Python
    code cannot be preempted safely), but the outcome is flagged
    ``timed_out`` when it overruns, and callers report it the way the
    paper reports its ``10^5 s`` limit.
    """
    start = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - start
    return Timed(
        result=result,
        seconds=seconds,
        timed_out=budget is not None and seconds > budget,
    )


def timed_with_metrics(
    fn: Callable[[Recorder], Any],
    budget: Optional[float] = None,
    recorder: Optional[MetricsRecorder] = None,
) -> Timed:
    """Run ``fn`` with a metrics recorder attached and keep its snapshot.

    ``fn`` receives a fresh :class:`~repro.obs.MetricsRecorder` (or the
    one supplied) and should pass it through as the ``recorder=`` of
    whatever it calls.  The returned :class:`Timed` carries the recorder's
    aggregate snapshot in ``metrics``, so one benchmark row can print the
    wall-clock :attr:`~Timed.cell` alongside per-stage
    :meth:`~Timed.stage_cell` breakdowns.

    The recorder itself adds measurable (if small) overhead; when
    comparing against plain :func:`timed` wall-clocks, report the stage
    *shares*, not absolute seconds.
    """
    if recorder is None:
        recorder = MetricsRecorder()
    start = time.perf_counter()
    result = fn(recorder)
    seconds = time.perf_counter() - start
    return Timed(
        result=result,
        seconds=seconds,
        timed_out=budget is not None and seconds > budget,
        metrics=recorder.snapshot(),
    )


@dataclass
class TimedWithMemory:
    """Outcome of a timed call with peak-allocation tracking."""

    result: Any
    seconds: float
    peak_bytes: int

    @property
    def peak_mib(self) -> float:
        """Peak tracemalloc allocation in MiB."""
        return self.peak_bytes / (1024 * 1024)


def timed_with_memory(fn: Callable[[], Any]) -> TimedWithMemory:
    """Run ``fn`` measuring wall-clock time *and* peak Python allocations.

    Uses :mod:`tracemalloc`, so only Python-level allocations are counted
    — exactly the per-clique state the paper's memory analysis concerns
    (KCL-Exact stores every clique's weight split; SCTL*-Exact stores a
    reduced scope).  Tracing slows the call down; never mix these numbers
    with plain :func:`timed` measurements.
    """
    import tracemalloc

    tracemalloc.start()
    start = time.perf_counter()
    try:
        result = fn()
        seconds = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return TimedWithMemory(result=result, seconds=seconds, peak_bytes=peak)


def timed_hard(fn: Callable[[], Any], budget: float) -> Timed:
    """Run ``fn`` in a forked child with a *hard* wall-clock limit.

    Some baseline calls are combinatorially infeasible by design — e.g.
    KCList at ``k = 32`` inside a 34-clique touches ~2^34 recursion nodes,
    which is precisely why the paper reports "time out" for them.  A soft
    budget cannot preempt such a call, so this helper forks, waits up to
    ``budget`` seconds, and terminates the child if needed.

    ``fork`` means the callable need not be picklable (closures and
    lambdas work); only the *result* crosses the process boundary.
    """
    ctx = multiprocessing.get_context("fork")
    queue = ctx.SimpleQueue()

    def worker() -> None:
        try:
            queue.put(("ok", fn()))
        except Exception as exc:  # surface child errors to the parent
            queue.put(("error", repr(exc)))

    child = ctx.Process(target=worker)
    start = time.perf_counter()
    child.start()
    child.join(budget)
    if child.is_alive():
        child.terminate()
        child.join()
        return Timed(result=None, seconds=float("inf"), timed_out=True)
    seconds = time.perf_counter() - start
    if queue.empty():  # child died without reporting anything
        # decode how it died: a signal (negative exitcode) names an
        # external killer — SIGKILL usually means the OOM reaper — while
        # a plain nonzero exit is a crash inside the child.  Either way
        # it is a harness-level failure worth raising loudly, not a
        # silent "time out" row; exitcode 0/None keeps the historical
        # timed-out report (the child was torn down mid-put).
        code = child.exitcode
        if code is not None and code < 0:
            try:
                name = signal.Signals(-code).name
            except ValueError:
                name = f"signal {-code}"
            hint = " (likely the OOM killer)" if -code == signal.SIGKILL else ""
            raise RuntimeError(
                f"hard-timed child died from {name}{hint} "
                f"after {seconds:.3f}s without reporting a result"
            )
        if code:  # nonzero exit, no result on the queue
            raise RuntimeError(
                f"hard-timed child exited with code {code} "
                f"after {seconds:.3f}s without reporting a result"
            )
        return Timed(result=None, seconds=seconds, timed_out=True)
    tag, value = queue.get()
    if tag == "error":
        raise RuntimeError(f"hard-timed call failed in child: {value}")
    return Timed(result=value, seconds=seconds, timed_out=seconds > budget)


@dataclass
class TimeoutTracker:
    """Skip-forward bookkeeping for parameter sweeps.

    Once ``(dataset, algorithm)`` times out, every later (larger) setting
    for that pair is skipped outright — matching how the paper's tables
    show ``time out`` for all subsequent k values.
    """

    budget: float
    _dead: set = field(default_factory=set)

    def run(self, dataset: str, algorithm: str, fn: Callable[[], Any]) -> Timed:
        """Run ``fn`` under the (soft) budget unless the pair timed out."""
        key = (dataset, algorithm)
        if key in self._dead:
            return Timed(result=None, seconds=float("inf"), timed_out=True)
        outcome = timed(fn, budget=self.budget)
        if outcome.timed_out:
            self._dead.add(key)
        return outcome

    def run_hard(self, dataset: str, algorithm: str, fn: Callable[[], Any]) -> Timed:
        """Like :meth:`run`, but with preemptive (forked) enforcement.

        Use for baseline calls that may be combinatorially infeasible —
        the killed child is reported exactly like the paper's "time out"
        rows, and later settings for the pair are skipped.
        """
        key = (dataset, algorithm)
        if key in self._dead:
            return Timed(result=None, seconds=float("inf"), timed_out=True)
        outcome = timed_hard(fn, budget=self.budget)
        if outcome.timed_out:
            self._dead.add(key)
        return outcome


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table (paper-style)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Any],
    series: Dict[str, Sequence[Any]],
    title: str = "",
) -> str:
    """Render figure data as one aligned column block per series.

    The paper's figures are line plots of (k, time) or (k, accuracy); this
    prints the same series so shapes (orderings, crossovers) are visible
    in text output and diffable across runs.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: List[Any] = [x]
        for name in series:
            value = series[name][i]
            row.append(f"{value:.4f}" if isinstance(value, float) else value)
        rows.append(row)
    return format_table(headers, rows, title=title)
