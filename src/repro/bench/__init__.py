"""Benchmark harness utilities."""

from .harness import (
    Timed,
    TimedWithMemory,
    TimeoutTracker,
    format_series,
    format_table,
    timed,
    timed_hard,
    timed_with_memory,
    timed_with_metrics,
)

__all__ = [
    "Timed",
    "TimedWithMemory",
    "TimeoutTracker",
    "timed",
    "timed_hard",
    "timed_with_memory",
    "timed_with_metrics",
    "format_table",
    "format_series",
]
