"""Fault injection at pipeline stage boundaries (`repro.resilience.faults`).

CI proves interrupt-anywhere safety by *injecting* interrupts: a
:class:`FaultPlan` names pipeline stages — the obs span names every
instrumented function already announces (``"index/build"``,
``"refine/iteration/3"``, ``"exact/flow_round/1"``, ...) — and an action
to take when the stage boundary is crossed:

* ``"raise"`` — throw :class:`FaultInjected`, simulating a crash exactly
  at that boundary (the chaos harness then resumes from checkpoints);
* ``"cancel"`` — cooperatively cancel an attached
  :class:`~repro.resilience.budget.RunBudget`, so the pipeline must
  degrade to a well-formed :class:`~repro.core.density.PartialResult`;
* ``"delay"`` — sleep, for shaking out deadline races.

The plan plugs in through the observability seam: :meth:`FaultPlan.recorder`
wraps any :class:`~repro.obs.Recorder` (the null one by default) and fires
faults from ``span()`` boundaries, so no production code knows faults
exist and coverage automatically tracks the instrumented stage set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Tuple

from ..errors import ReproError
from ..obs import NULL_RECORDER, Recorder
from .budget import RunBudget

__all__ = ["Fault", "FaultInjected", "FaultPlan", "PIPELINE_STAGES"]

# The instrumented stage families of the SCTL* pipeline (obs span names;
# a trailing element like ``refine/iteration/3`` matches the family
# ``refine/iteration``).  The chaos sweep injects one fault per entry.
PIPELINE_STAGES: Tuple[str, ...] = (
    "index/build",
    "ordered_view",
    "reductions/engagement",
    "reductions/kp_computation",
    "refine/iteration",
    "sample/draw",
    "sample/refine",
    "sample/recover",
    "exact/warm_start",
    "exact/scope_reduction",
    "exact/scope_index",
    "exact/flow_round",
)


class FaultInjected(ReproError):
    """The error a ``"raise"`` fault throws at its target stage boundary."""

    def __init__(self, stage: str, when: str = "enter"):
        self.stage = stage
        self.when = when
        super().__init__(f"injected fault at {when} of stage {stage!r}")


@dataclass
class Fault:
    """One planned fault.

    ``stage`` matches a span *name* exactly or as a path prefix, so
    ``"refine/iteration"`` hits ``"refine/iteration/1"`` too.  The fault
    fires on its ``hit``-th matching boundary, once.
    """

    stage: str
    action: str = "raise"  # "raise" | "cancel" | "delay"
    when: str = "enter"  # "enter" | "exit"
    hit: int = 1
    seconds: float = 0.0  # for "delay"
    budget: Optional[RunBudget] = None  # for "cancel"
    _seen: int = field(default=0, repr=False)
    _spent: bool = field(default=False, repr=False)

    def matches(self, name: str) -> bool:
        return name == self.stage or name.startswith(self.stage + "/")

    def fire(self, name: str, when: str) -> None:
        if self._spent or when != self.when or not self.matches(name):
            return
        self._seen += 1
        if self._seen < self.hit:
            return
        self._spent = True
        if self.action == "raise":
            raise FaultInjected(name, when)
        if self.action == "cancel":
            if self.budget is None:
                raise ValueError(
                    f"cancel fault at {self.stage!r} has no budget attached"
                )
            self.budget.cancel(f"fault injected at {name}")
        elif self.action == "delay":
            time.sleep(self.seconds)


class FaultPlan:
    """A set of :class:`Fault` entries plus the trigger log.

    Use :meth:`recorder` to obtain the injecting recorder to pass as the
    ``recorder=`` of the code under test; :attr:`triggered` records every
    fault that actually fired, so tests can distinguish "survived the
    fault" from "the fault never happened".
    """

    def __init__(self, faults: Iterable[Fault] = ()):
        self.faults: List[Fault] = list(faults)
        self.triggered: List[Tuple[str, str, str]] = []  # (stage, action, when)

    # -- convenience constructors --------------------------------------

    @classmethod
    def raising(cls, stage: str, hit: int = 1, when: str = "enter") -> "FaultPlan":
        """A plan that crashes at the ``hit``-th boundary of ``stage``."""
        return cls([Fault(stage, action="raise", hit=hit, when=when)])

    @classmethod
    def cancelling(
        cls, stage: str, budget: RunBudget, hit: int = 1, when: str = "enter"
    ) -> "FaultPlan":
        """A plan that cancels ``budget`` at the boundary of ``stage``."""
        return cls([Fault(stage, action="cancel", hit=hit, when=when,
                          budget=budget)])

    @classmethod
    def delaying(
        cls, stage: str, seconds: float, hit: int = 1, when: str = "enter"
    ) -> "FaultPlan":
        """A plan that sleeps ``seconds`` at the boundary of ``stage``."""
        return cls([Fault(stage, action="delay", hit=hit, when=when,
                          seconds=seconds)])

    # -- wiring ---------------------------------------------------------

    def fire(self, name: str, when: str) -> None:
        """Fire every armed fault matching this boundary (may raise)."""
        for fault in self.faults:
            before = fault._spent
            try:
                fault.fire(name, when)  # may raise FaultInjected
            finally:
                # log the trigger even when the fault raises — tests need to
                # distinguish "survived the fault" from "never reached it"
                if fault._spent and not before:
                    self.triggered.append((name, fault.action, when))

    def recorder(self, inner: Recorder = NULL_RECORDER) -> "FaultInjectingRecorder":
        """A :class:`~repro.obs.Recorder` that injects this plan's faults."""
        return FaultInjectingRecorder(self, inner)

    def __repr__(self) -> str:
        return f"FaultPlan({self.faults!r})"


class _FaultSpan:
    """Span context manager firing plan boundaries around the inner span."""

    __slots__ = ("_plan", "_name", "_inner")

    def __init__(self, plan: FaultPlan, name: str, inner: Any):
        self._plan = plan
        self._name = name
        self._inner = inner

    def __enter__(self) -> "_FaultSpan":
        self._plan.fire(self._name, "enter")
        self._inner.__enter__()
        return self

    def __exit__(self, *exc: Any) -> bool:
        suppressed = self._inner.__exit__(*exc)
        if exc[0] is None:  # exit boundaries only fire on clean exits
            self._plan.fire(self._name, "exit")
        return bool(suppressed)


class FaultInjectingRecorder:
    """Recorder wrapper that fires a :class:`FaultPlan` at span boundaries.

    Counters, gauges and events delegate untouched to the wrapped
    recorder (the null one by default), and ``enabled`` mirrors it — so
    fault injection perturbs *only* control flow at stage boundaries,
    never the measurement path.
    """

    def __init__(self, plan: FaultPlan, inner: Recorder = NULL_RECORDER):
        self.plan = plan
        self.inner = inner
        self.enabled = inner.enabled

    def counter(self, name: str, amount: int = 1) -> None:
        self.inner.counter(name, amount)

    def gauge(self, name: str, value: Any) -> None:
        self.inner.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.inner.observe(name, value)

    def event(self, name: str, **fields: Any) -> None:
        self.inner.event(name, **fields)

    def span(self, name: str, observe: Optional[str] = None) -> _FaultSpan:
        return _FaultSpan(
            self.plan, name, self.inner.span(name, observe=observe)
        )

    def __repr__(self) -> str:
        return f"FaultInjectingRecorder({self.plan!r})"
