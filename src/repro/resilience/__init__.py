"""Resilience layer (`repro.resilience`): budgets, checkpoints, faults.

Three cooperating pieces harden the long-running SCTL* pipeline:

* :class:`RunBudget` — a wall-clock deadline, optional iteration cap and
  cooperative ``cancel()`` / signal hook, threaded as an explicit
  ``budget=`` keyword through every pipeline stage.  Hot loops poll it
  behind a cheap ``budget.active`` guard, so the default
  :data:`NULL_BUDGET` path stays byte-identical to an unbudgeted run.
  On exhaustion, result-returning stages degrade to a
  :class:`~repro.core.density.PartialResult` with their best-so-far
  answer instead of crashing.
* :class:`Checkpointer` — periodic atomic snapshots (temp file +
  ``os.replace``, versioned header, CRC-verified on load) of index-build
  frontier state and SCTL weight vectors, with ``resume=`` restart that
  is parity-tested against an uninterrupted run.
* :class:`FaultPlan` — raises, cancels or delays at named stage
  boundaries (the obs span names), so CI can prove interrupt-anywhere
  safety; ``python -m repro.resilience.chaos`` sweeps one fault per
  pipeline stage.
* :class:`AdmissionGate` / :class:`AdmissionController` /
  :class:`CircuitBreaker` (:mod:`repro.resilience.overload`) — bounded
  concurrency with a small wait queue per endpoint class, and a
  per-cache-key consecutive-failure latch with half-open probes; the
  service composes them into 429/Retry-After overload handling.

See ``docs/robustness.md`` for the full API and semantics.
"""

from ..core.density import PartialResult
from ..errors import BudgetExhausted, CheckpointError, TimeoutExceeded
from .budget import NULL_BUDGET, Budget, NullBudget, RunBudget
from .checkpoint import Checkpointer, atomic_writer, require_match
from .faults import (
    PIPELINE_STAGES,
    Fault,
    FaultInjected,
    FaultInjectingRecorder,
    FaultPlan,
)
from .overload import (
    AdmissionController,
    AdmissionDecision,
    AdmissionGate,
    CircuitBreaker,
    HotKeyTracker,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionGate",
    "CircuitBreaker",
    "HotKeyTracker",
    "Budget",
    "NullBudget",
    "RunBudget",
    "NULL_BUDGET",
    "Checkpointer",
    "atomic_writer",
    "require_match",
    "Fault",
    "FaultPlan",
    "FaultInjected",
    "FaultInjectingRecorder",
    "PIPELINE_STAGES",
    "PartialResult",
    "BudgetExhausted",
    "TimeoutExceeded",
    "CheckpointError",
]
