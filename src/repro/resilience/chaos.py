"""Chaos sweep: one injected fault per pipeline stage, zero tracebacks.

Usage::

    python -m repro.resilience.chaos dataset:email -k 7
    python -m repro.resilience.chaos graph.txt -k 4 --method sctl*

For every instrumented stage of the pipeline (:data:`PIPELINE_STAGES`)
the sweep runs the query twice:

* **crash** — a ``"raise"`` fault throws :class:`FaultInjected` at the
  stage boundary (with a checkpoint directory armed), then the query is
  re-run with ``--resume`` semantics; the resumed answer must equal the
  fault-free baseline exactly.
* **cancel** — a ``"cancel"`` fault cooperatively cancels a
  :class:`RunBudget` at the stage boundary; the run must complete or
  degrade to a well-formed :class:`~repro.core.density.PartialResult`
  whose achieved density never exceeds the baseline.

A stage the chosen method never reaches is reported as ``skipped`` (the
fault is armed but nothing crosses the boundary).  Any traceback, malformed
result or density mismatch fails the sweep; the process exit code is the
number of failing stages, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import traceback
from typing import List, Optional, Tuple

from .. import densest_subgraph
from ..core.density import DensestSubgraphResult
from ..graph import Graph, read_edge_list
from ..options import RunOptions
from .budget import RunBudget
from .faults import PIPELINE_STAGES, FaultInjected, FaultPlan

__all__ = ["run_sweep", "main"]


def _load_graph(spec: str) -> Graph:
    if spec.startswith("dataset:"):
        from ..datasets import load_dataset

        return load_dataset(spec.split(":", 1)[1])
    return read_edge_list(spec)


def _well_formed(result: DensestSubgraphResult, k: int) -> Optional[str]:
    """None when ``result`` is structurally sound, else a complaint."""
    if not isinstance(result, DensestSubgraphResult):
        return f"returned {type(result).__name__}, not a result object"
    if result.k != k:
        return f"result.k = {result.k}, expected {k}"
    if result.clique_count < 0 or len(result.vertices) != len(set(result.vertices)):
        return "malformed vertices/clique_count"
    if result.is_partial and not result.reason:
        return "partial result without a reason"
    try:
        result.summary()
    except Exception as exc:  # summary must never crash on any outcome
        return f"summary() raised {exc!r}"
    return None


def _check_crash(
    graph: Graph, k: int, method: str, stage: str, baseline: DensestSubgraphResult,
    **query_kwargs,
) -> Tuple[str, str]:
    """Inject a crash at ``stage``, resume, demand the exact baseline."""
    ckpt_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        plan = FaultPlan.raising(stage)
        try:
            result = densest_subgraph(
                graph, k, method=method,
                options=RunOptions(
                    recorder=plan.recorder(), checkpoint=ckpt_dir
                ),
                **query_kwargs,
            )
        except FaultInjected:
            result = None
        except Exception:
            return "FAIL", f"unexpected traceback:\n{traceback.format_exc()}"
        if not plan.triggered:
            return "skipped", "stage not reached by this method"
        if result is None:  # crashed as planned: resume must recover exactly
            try:
                result = densest_subgraph(
                    graph, k, method=method,
                    options=RunOptions(checkpoint=ckpt_dir, resume=True),
                    **query_kwargs,
                )
            except Exception:
                return "FAIL", f"resume raised:\n{traceback.format_exc()}"
        complaint = _well_formed(result, k)
        if complaint:
            return "FAIL", complaint
        if result.density_fraction != baseline.density_fraction:
            return "FAIL", (
                f"resumed density {result.density} != "
                f"baseline {baseline.density}"
            )
        return "ok", "crashed, resumed to the exact baseline"
    finally:
        shutil.rmtree(ckpt_dir, ignore_errors=True)


def _check_cancel(
    graph: Graph, k: int, method: str, stage: str, baseline: DensestSubgraphResult,
    **query_kwargs,
) -> Tuple[str, str]:
    """Cancel the budget at ``stage``, demand graceful degradation."""
    budget = RunBudget()
    plan = FaultPlan.cancelling(stage, budget)
    try:
        result = densest_subgraph(
            graph, k, method=method,
            options=RunOptions(recorder=plan.recorder(), budget=budget),
            **query_kwargs,
        )
    except Exception:
        return "FAIL", f"unexpected traceback:\n{traceback.format_exc()}"
    if not plan.triggered:
        return "skipped", "stage not reached by this method"
    complaint = _well_formed(result, k)
    if complaint:
        return "FAIL", complaint
    if result.is_partial and result.valid:
        if result.density_fraction > baseline.density_fraction:
            return "FAIL", (
                f"partial density {result.density} exceeds "
                f"baseline {baseline.density}"
            )
        return "ok", f"degraded to a valid partial ({result.reason})"
    if result.is_partial:
        return "ok", f"degraded to an invalid partial at {result.stage}"
    return "ok", "completed despite the cancellation"


def run_sweep(
    graph: Graph, k: int, method: str = "sctl*-exact", seed: int = 0,
    sample_size: Optional[int] = None,
    stages: Tuple[str, ...] = PIPELINE_STAGES,
) -> List[Tuple[str, str, str, str]]:
    """Run the full sweep; returns ``(stage, mode, status, detail)`` rows."""
    kwargs = {"seed": seed, "sample_size": sample_size}
    baseline = densest_subgraph(graph, k, method=method, **kwargs)
    rows: List[Tuple[str, str, str, str]] = []
    for stage in stages:
        status, detail = _check_crash(
            graph, k, method, stage, baseline, **kwargs
        )
        rows.append((stage, "crash", status, detail))
        status, detail = _check_cancel(
            graph, k, method, stage, baseline, **kwargs
        )
        rows.append((stage, "cancel", status, detail))
    return rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="fault-injection sweep over every pipeline stage",
    )
    parser.add_argument("graph", help="edge-list path or dataset:<name>")
    parser.add_argument("-k", type=int, required=True, help="clique size")
    parser.add_argument(
        "--method", default="sctl*-exact",
        help="query method to stress (default: sctl*-exact)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--sample-size", type=int, default=None,
        help="sample size for the warm start (smaller = faster sweep)",
    )
    args = parser.parse_args(argv)

    graph = _load_graph(args.graph)
    rows = run_sweep(
        graph, args.k, method=args.method, seed=args.seed,
        sample_size=args.sample_size,
    )
    failures = 0
    for stage, mode, status, detail in rows:
        if status == "FAIL":
            failures += 1
        print(f"{status:>7}  {mode:<6} {stage:<24} {detail}")
    injected = sum(1 for _, _, status, _ in rows if status != "skipped")
    print(
        f"\nchaos sweep: {injected} faults injected across "
        f"{len(PIPELINE_STAGES)} stages, {failures} failures"
    )
    return failures


if __name__ == "__main__":
    sys.exit(main())
