"""Atomic, integrity-checked checkpoints for resumable pipeline stages.

Long index builds and SCTL* refinement runs are naturally resumable: the
build frontier advances one root subtree at a time and the weight vectors
evolve one whole iteration at a time, so a snapshot at either boundary
restarts the run with *exact* parity against an uninterrupted one (the
traversal and update order are deterministic).

Snapshots are written crash-safely — to a temporary file in the target
directory, then :func:`os.replace`\\ d over the final name — with a
versioned header and a CRC-32 checksum verified on load, so a checkpoint
can never be half-written and a corrupted one fails loudly
(:class:`~repro.errors.CheckpointError`) instead of resuming garbage.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib
from contextlib import contextmanager
from typing import Any, Callable, Dict, IO, Iterator, Optional, Union

from ..errors import CheckpointError

__all__ = ["Checkpointer", "atomic_writer", "require_match"]

_FORMAT_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]


@contextmanager
def atomic_writer(
    path: PathLike, encoding: str = "utf-8", binary: bool = False
) -> Iterator[IO]:
    """Write a file atomically: temp file + :func:`os.replace`.

    The handle yielded writes to a temporary file in the same directory
    as ``path`` (same filesystem, so the final rename is atomic).  Only
    when the block completes is the temp file fsynced and moved over
    ``path``; on any exception the temp file is removed and the previous
    contents of ``path`` stay untouched and readable.

    ``binary=True`` yields a bytes handle (``encoding`` is then ignored) —
    the v2 index format writes through this.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    if binary:
        handle = os.fdopen(fd, "wb")
    else:
        handle = os.fdopen(fd, "w", encoding=encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    handle.close()
    os.replace(tmp, target)


class Checkpointer:
    """Periodic snapshot store for one run, keyed by snapshot ``kind``.

    Each kind (``"sct-build"``, ``"sctl-weights"``, ...) lives in its own
    ``<directory>/<kind>.ckpt`` file: a JSON header line carrying the
    format version, the kind, and a CRC-32 of the payload, then the JSON
    payload line.  :meth:`load` re-verifies all three.

    Parameters
    ----------
    directory:
        Where snapshots live; created if missing.
    interval_seconds:
        Minimum spacing between :meth:`due` saves of the same kind.  The
        first boundary is always due; afterwards saves are throttled to
        one per interval (default 5 s) so snapshot cost stays negligible
        next to the work between boundaries.  Exhaustion-time saves
        bypass :meth:`due`, so nothing completed is ever lost.  The
        parity tests pass ``0`` to make *every* boundary due.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        directory: PathLike,
        interval_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.interval_seconds = interval_seconds
        self._clock = clock
        self._last_save: Dict[str, float] = {}

    @classmethod
    def ensure(
        cls, checkpoint: Union[None, PathLike, "Checkpointer"]
    ) -> Optional["Checkpointer"]:
        """Normalise a ``checkpoint=`` argument: directory path or instance."""
        if checkpoint is None or isinstance(checkpoint, Checkpointer):
            return checkpoint
        return cls(checkpoint)

    def path_for(self, kind: str) -> str:
        """The snapshot file for ``kind``."""
        return os.path.join(self.directory, f"{kind}.ckpt")

    def due(self, kind: str) -> bool:
        """Whether enough time has passed to save ``kind`` again (cheap)."""
        last = self._last_save.get(kind)
        if last is None:
            return True
        return self._clock() - last >= self.interval_seconds

    def save(self, kind: str, payload: Dict[str, Any]) -> str:
        """Atomically write a snapshot of ``kind``; returns its path."""
        body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        header = json.dumps(
            {
                "format": _FORMAT_VERSION,
                "kind": kind,
                "checksum": zlib.crc32(body.encode("utf-8")),
            }
        )
        target = self.path_for(kind)
        with atomic_writer(target) as handle:
            handle.write(header + "\n")
            handle.write(body + "\n")
        self._last_save[kind] = self._clock()
        return target

    def has(self, kind: str) -> bool:
        """Whether a snapshot of ``kind`` exists on disk."""
        return os.path.exists(self.path_for(kind))

    def load(self, kind: str) -> Optional[Dict[str, Any]]:
        """Read back a snapshot of ``kind``.

        Returns ``None`` when no snapshot exists; raises
        :class:`~repro.errors.CheckpointError` when the file is corrupt,
        truncated, of the wrong kind, or from an unsupported format.
        """
        target = self.path_for(kind)
        try:
            with open(target, "r", encoding="utf-8") as handle:
                header_line = handle.readline()
                body = handle.readline()
        except FileNotFoundError:
            return None
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"corrupt checkpoint header in {target}: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("format") != _FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format in {target}: "
                f"{header.get('format') if isinstance(header, dict) else header!r}"
            )
        if header.get("kind") != kind:
            raise CheckpointError(
                f"checkpoint kind mismatch in {target}: "
                f"expected {kind!r}, found {header.get('kind')!r}"
            )
        body = body.rstrip("\n")
        if not body:
            raise CheckpointError(f"truncated checkpoint payload in {target}")
        if zlib.crc32(body.encode("utf-8")) != header.get("checksum"):
            raise CheckpointError(
                f"checkpoint checksum mismatch in {target} "
                "(truncated or corrupted write)"
            )
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:  # checksum passed but body broken
            raise CheckpointError(
                f"corrupt checkpoint payload in {target}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"checkpoint payload in {target} is not an object"
            )
        return payload

    def clear(self, kind: str) -> None:
        """Remove the snapshot of ``kind`` (after a run completes)."""
        try:
            os.unlink(self.path_for(kind))
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return (
            f"Checkpointer({self.directory!r}, "
            f"interval_seconds={self.interval_seconds})"
        )


def require_match(
    payload: Dict[str, Any], expected: Dict[str, Any], kind: str
) -> None:
    """Verify a loaded snapshot belongs to the run resuming from it.

    ``expected`` maps field names to the resuming run's parameters (graph
    size, ``k``, algorithm toggles...); any mismatch raises
    :class:`~repro.errors.CheckpointError` naming the offending field.
    """
    for field, want in expected.items():
        got = payload.get(field)
        if got != want:
            raise CheckpointError(
                f"checkpoint {kind!r} does not match this run: "
                f"{field}={got!r} in snapshot, {want!r} requested"
            )
