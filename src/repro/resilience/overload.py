"""Overload protection: admission gates and circuit breakers.

Two transport-free primitives behind the service's resilience story
(``docs/robustness.md`` has the operator-facing contract):

* :class:`AdmissionGate` / :class:`AdmissionController` — a bounded
  concurrency limit plus a small bounded wait queue per endpoint class
  (cold builds queue separately from warm queries, so an index-build
  storm cannot starve cheap lookups).  A request either takes a slot
  immediately, waits in the bounded queue until a slot frees, or is
  turned away with a :class:`AdmissionDecision` naming why — the server
  maps that to HTTP 429 plus a ``Retry-After`` derived from its latency
  histograms.
* :class:`CircuitBreaker` — a per-cache-key failure latch.  After
  ``threshold`` consecutive build/query failures the breaker *opens* and
  requests fast-fail with the last error instead of re-running a doomed
  computation; after ``cooldown_s`` one *half-open* probe is let through,
  and its outcome either re-closes or re-opens the breaker.

Both are plain :mod:`threading` objects with injectable clocks, usable
(and tested) without any HTTP machinery.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..errors import InvalidParameterError

__all__ = [
    "AdmissionDecision",
    "AdmissionGate",
    "AdmissionController",
    "CircuitBreaker",
    "HotKeyTracker",
]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one :meth:`AdmissionGate.try_acquire`.

    ``reason`` is ``"admitted"``, ``"queue_full"`` (turned away at the
    door — the bounded wait queue had no room) or ``"wait_timeout"``
    (queued, but no slot freed within the caller's wait budget).
    ``queue_depth`` is the number of waiters observed at decision time.
    """

    admitted: bool
    reason: str
    waited_s: float = 0.0
    queue_depth: int = 0


class AdmissionGate:
    """A concurrency slot pool with a bounded FIFO-ish wait queue.

    At most ``max_concurrent`` callers hold a slot; at most ``max_queue``
    more may wait for one.  Anyone beyond that is rejected immediately —
    rejection is cheap, pile-up is not.
    """

    def __init__(
        self,
        max_concurrent: int,
        max_queue: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not isinstance(max_concurrent, int) or max_concurrent < 1:
            raise InvalidParameterError(
                f"max_concurrent must be an int >= 1, got {max_concurrent!r}"
            )
        if not isinstance(max_queue, int) or max_queue < 0:
            raise InvalidParameterError(
                f"max_queue must be an int >= 0, got {max_queue!r}"
            )
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self._clock = clock
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0

    @property
    def active(self) -> int:
        with self._cond:
            return self._active

    @property
    def waiting(self) -> int:
        with self._cond:
            return self._waiting

    @property
    def saturated(self) -> bool:
        """Every slot busy *and* the wait queue full: reject territory."""
        with self._cond:
            return (
                self._active >= self.max_concurrent
                and self._waiting >= self.max_queue
            )

    def try_acquire(
        self, wait_timeout_s: Optional[float] = None
    ) -> AdmissionDecision:
        """Take a slot, waiting up to ``wait_timeout_s`` in the queue.

        ``None`` waits indefinitely (the queue bound still applies, so
        the pile-up stays finite).  The caller MUST :meth:`release` after
        an admitted decision, and must not after a rejected one.
        """
        start = self._clock()
        with self._cond:
            if self._active < self.max_concurrent and self._waiting == 0:
                self._active += 1
                return AdmissionDecision(True, "admitted", 0.0, 0)
            if self._waiting >= self.max_queue:
                return AdmissionDecision(
                    False, "queue_full", 0.0, self._waiting
                )
            self._waiting += 1
            deadline = (
                None if wait_timeout_s is None else start + wait_timeout_s
            )
            try:
                while self._active >= self.max_concurrent:
                    remaining = (
                        None if deadline is None
                        else deadline - self._clock()
                    )
                    if remaining is not None and remaining <= 0:
                        return AdmissionDecision(
                            False, "wait_timeout",
                            self._clock() - start, self._waiting,
                        )
                    self._cond.wait(remaining)
                self._active += 1
                return AdmissionDecision(
                    True, "admitted", self._clock() - start, self._waiting
                )
            finally:
                self._waiting -= 1

    def release(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify()

    def snapshot(self) -> Dict[str, int]:
        with self._cond:
            return {
                "active": self._active,
                "waiting": self._waiting,
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
            }


class AdmissionController:
    """One :class:`AdmissionGate` per endpoint class.

    The default classes mirror the service's split: ``"query"`` for warm
    lookups and ``"cold"`` for index builds/profiles, each with its own
    slots and queue so neither workload can starve the other.
    """

    def __init__(
        self,
        max_concurrent: int,
        max_queue: int = 0,
        classes: Sequence[str] = ("query", "cold"),
        clock: Callable[[], float] = time.monotonic,
    ):
        self._gates: Dict[str, AdmissionGate] = {
            cls: AdmissionGate(max_concurrent, max_queue, clock=clock)
            for cls in classes
        }

    def gate(self, cls: str) -> AdmissionGate:
        return self._gates[cls]

    @property
    def classes(self) -> Tuple[str, ...]:
        return tuple(self._gates)

    @property
    def saturated(self) -> bool:
        """Any class at capacity with a full queue (``/readyz`` → 503)."""
        return any(gate.saturated for gate in self._gates.values())

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        return {cls: gate.snapshot() for cls, gate in self._gates.items()}


class CircuitBreaker:
    """Consecutive-failure latch with a half-open recovery probe.

    States: ``closed`` (all traffic flows) → ``open`` after ``threshold``
    consecutive failures (everything fast-fails with :attr:`last_error`)
    → ``half_open`` after ``cooldown_s`` (exactly one probe allowed; its
    outcome decides) → ``closed`` again, or back to ``open``.

    Thread-safe; callers pair every allowed request with exactly one
    :meth:`record_success` or :meth:`record_failure`.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not isinstance(threshold, int) or threshold < 1:
            raise InvalidParameterError(
                f"threshold must be an int >= 1, got {threshold!r}"
            )
        if cooldown_s < 0:
            raise InvalidParameterError(
                f"cooldown_s must be >= 0, got {cooldown_s!r}"
            )
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.last_error: Optional[BaseException] = None

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # lock held; an expired cooldown reads as half_open
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a request proceed right now?

        In half-open state only the first caller gets a ``True`` (the
        probe); everyone else keeps fast-failing until the probe reports.
        """
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN:
                if not self._probing:
                    self._state = self.HALF_OPEN
                    self._probing = True
                    return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._probing = False
            self.last_error = None

    def release_probe(self) -> None:
        """An allowed request ended with no breaker-relevant outcome
        (budget exhausted, bad request): free the half-open probe slot so
        the next request can try instead of fast-failing forever."""
        with self._lock:
            self._probing = False

    def record_failure(self, error: Optional[BaseException] = None) -> None:
        with self._lock:
            if error is not None:
                self.last_error = error
            self._failures += 1
            was_half_open = self._state == self.HALF_OPEN
            self._probing = False
            if was_half_open or self._failures >= self.threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()

    @property
    def retry_after_s(self) -> float:
        """Seconds until the next half-open probe (0 when not open)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            remaining = self.cooldown_s - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._effective_state(),
                "failures": self._failures,
                "last_error": (
                    repr(self.last_error) if self.last_error else None
                ),
            }


class HotKeyTracker:
    """Windowed hot/cold classification over monotonic per-key counters.

    The fleet router polls each worker's ``key_hits`` stats (absolute,
    ever-growing totals) and feeds the merged totals into
    :meth:`observe` once per poll window.  The tracker differences the
    totals into per-window rates: a key whose window delta reaches
    ``threshold`` becomes **hot** (the router promotes a warm replica);
    a hot key that sits at zero delta for ``cold_windows`` consecutive
    windows is demoted again.  Any traffic at all — even below the
    promotion threshold — resets the demotion countdown, so a replica
    is only dropped when the key has gone genuinely quiet.

    Thread-safe; transport-free (the router owns the polling cadence).
    """

    def __init__(self, threshold: int = 8, cold_windows: int = 3):
        if not isinstance(threshold, int) or threshold < 1:
            raise InvalidParameterError(
                f"threshold must be an int >= 1, got {threshold!r}"
            )
        if not isinstance(cold_windows, int) or cold_windows < 1:
            raise InvalidParameterError(
                f"cold_windows must be an int >= 1, got {cold_windows!r}"
            )
        self.threshold = threshold
        self.cold_windows = cold_windows
        self._lock = threading.Lock()
        self._totals: Dict[str, int] = {}
        self._hot: Dict[str, int] = {}  # key -> consecutive quiet windows

    def observe(self, totals: Dict[str, int]) -> None:
        """Fold in one poll window of merged absolute per-key totals.

        A total lower than the previous one (a worker restarted and its
        counters reset) is treated as a fresh baseline, not a negative
        rate.
        """
        with self._lock:
            for key, total in totals.items():
                previous = self._totals.get(key, 0)
                delta = total - previous if total >= previous else total
                self._totals[key] = total
                if delta >= self.threshold:
                    self._hot[key] = 0
                elif key in self._hot:
                    if delta > 0:
                        self._hot[key] = 0
                    else:
                        self._hot[key] += 1
                        if self._hot[key] >= self.cold_windows:
                            del self._hot[key]

    def hot_keys(self) -> Tuple[str, ...]:
        """The currently-hot keys, hottest-total first."""
        with self._lock:
            return tuple(sorted(
                self._hot, key=lambda k: -self._totals.get(k, 0)
            ))

    def is_hot(self, key: str) -> bool:
        with self._lock:
            return key in self._hot

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "hot": sorted(self._hot),
                "tracked": len(self._totals),
                "threshold": self.threshold,
                "cold_windows": self.cold_windows,
            }
