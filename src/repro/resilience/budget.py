"""Run budgets: cooperative wall-clock / iteration limits and cancellation.

The paper's heavy workloads — SCT*-Index builds and SCTL*-Exact's doubling
refinement-plus-max-flow rounds — run for hours on billion-clique graphs.
A :class:`RunBudget` threads an explicit ``budget=`` keyword through every
stage of that pipeline so a run can stop *cooperatively*: hot loops poll
at iteration/path granularity behind a cheap ``budget.active`` guard (the
same pattern as ``recorder.enabled`` in :mod:`repro.obs`), so the default
:data:`NULL_BUDGET` path stays byte-identical to an unbudgeted run.

On exhaustion, result-returning stages degrade to a
:class:`~repro.core.density.PartialResult` carrying their best-so-far
answer; producers that cannot return a result (``SCTIndex.build``,
``iter_paths``) raise the matching :class:`~repro.errors.BudgetExhausted`
subtype instead (:class:`~repro.errors.TimeoutExceeded` for deadlines).
"""

from __future__ import annotations

import signal
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from ..errors import BudgetExhausted, TimeoutExceeded

__all__ = ["Budget", "NullBudget", "RunBudget", "NULL_BUDGET"]

try:  # Protocol is typing-only; runtime never dispatches on it
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py<3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class Budget(Protocol):
    """What budget-aware code may call on a ``budget=`` argument.

    ``active`` gates *all* polling work: instrumented loops must skip
    every budget call when it is ``False``, keeping the default path free.
    """

    active: bool

    def exceeded(self) -> Optional[str]:
        """``None`` while within budget, else the exhaustion reason."""

    def check(self, stage: str = "") -> None:
        """Raise the matching :class:`BudgetExhausted` if exhausted."""

    def error(self, reason: str, stage: str = "") -> BudgetExhausted:
        """Build (not raise) the exception for an observed ``reason``."""

    def tick(self) -> None:
        """Count one completed refinement iteration against the budget."""


class NullBudget:
    """The zero-overhead default budget: never exhausted, every call a no-op.

    A single shared instance, :data:`NULL_BUDGET`, is the default for every
    ``budget=`` keyword in the library.
    """

    __slots__ = ()

    active = False
    cancelled = False

    def exceeded(self) -> Optional[str]:
        return None

    def check(self, stage: str = "") -> None:
        pass

    def error(self, reason: str, stage: str = "") -> BudgetExhausted:
        return BudgetExhausted(reason=reason, stage=stage)

    def tick(self) -> None:
        pass

    def remaining(self) -> Optional[float]:
        return None


NULL_BUDGET = NullBudget()


class RunBudget:
    """A cooperative budget for one pipeline run.

    Parameters
    ----------
    wall_seconds:
        Wall-clock limit; the deadline is ``clock() + wall_seconds`` at
        construction, so one budget threaded through several stages is a
        single shared deadline for the whole run.
    max_iterations:
        Global cap on refinement iterations (:meth:`tick` calls) across
        every stage the budget passes through.
    clock:
        Monotonic time source (injectable for deterministic tests);
        defaults to :func:`time.monotonic`.

    A budget with neither limit starts ``active == False`` (free to
    thread through unconditionally); :meth:`cancel` — called directly,
    from another thread, or by the :meth:`on_signal` hook — flips it
    active and exhausts it immediately.
    """

    def __init__(
        self,
        wall_seconds: Optional[float] = None,
        max_iterations: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if wall_seconds is not None and wall_seconds < 0:
            raise ValueError(f"wall_seconds must be >= 0, got {wall_seconds}")
        if max_iterations is not None and max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self.wall_seconds = wall_seconds
        self.max_iterations = max_iterations
        self._clock = clock
        self._deadline = (
            clock() + wall_seconds if wall_seconds is not None else None
        )
        self._iterations = 0
        self.cancelled = False
        self.cancel_reason = ""
        self.active = wall_seconds is not None or max_iterations is not None

    # -- state ----------------------------------------------------------

    @property
    def iterations(self) -> int:
        """Refinement iterations counted so far (:meth:`tick` calls)."""
        return self._iterations

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` without one)."""
        if self._deadline is None:
            return None
        return self._deadline - self._clock()

    # -- control --------------------------------------------------------

    def cancel(self, reason: str = "") -> None:
        """Cooperatively cancel the run; safe from any thread or handler."""
        self.cancel_reason = reason or "cancelled"
        self.cancelled = True
        self.active = True

    def tick(self) -> None:
        """Count one completed refinement iteration."""
        self._iterations += 1

    @contextmanager
    def on_signal(self, *signums: int) -> Iterator["RunBudget"]:
        """Install handlers that :meth:`cancel` this budget on a signal.

        Defaults to ``SIGINT`` and ``SIGTERM``; previous handlers are
        restored on exit.  Main-thread only (a CPython restriction on
        :func:`signal.signal`).
        """
        if not signums:
            signums = (signal.SIGINT, signal.SIGTERM)

        def handler(signum, frame):  # noqa: ARG001 - signal API
            self.cancel(f"signal {signal.Signals(signum).name}")

        previous = {s: signal.signal(s, handler) for s in signums}
        try:
            yield self
        finally:
            for s, old in previous.items():
                signal.signal(s, old)

    # -- polling --------------------------------------------------------

    def exceeded(self) -> Optional[str]:
        """``None`` while within budget, else the first tripped reason."""
        if self.cancelled:
            return "cancelled"
        if self._deadline is not None and self._clock() >= self._deadline:
            return "deadline"
        if (
            self.max_iterations is not None
            and self._iterations >= self.max_iterations
        ):
            return "max_iterations"
        return None

    def check(self, stage: str = "") -> None:
        """Raise the matching :class:`BudgetExhausted` if exhausted."""
        reason = self.exceeded()
        if reason:
            raise self.error(reason, stage)

    def error(self, reason: str, stage: str = "") -> BudgetExhausted:
        """The exception describing an exhaustion ``reason`` at ``stage``."""
        where = f" in {stage}" if stage else ""
        if reason == "deadline":
            return TimeoutExceeded(
                self.wall_seconds if self.wall_seconds is not None else 0.0,
                f"exceeded time budget of {self.wall_seconds}s{where}",
                stage=stage,
            )
        if reason == "max_iterations":
            return BudgetExhausted(
                f"exceeded iteration budget of {self.max_iterations}{where}",
                reason=reason,
                stage=stage,
            )
        detail = self.cancel_reason or "cancelled"
        return BudgetExhausted(
            f"run cancelled ({detail}){where}", reason="cancelled", stage=stage
        )

    def __repr__(self) -> str:
        limits = []
        if self.wall_seconds is not None:
            limits.append(f"wall_seconds={self.wall_seconds}")
        if self.max_iterations is not None:
            limits.append(f"max_iterations={self.max_iterations}")
        if self.cancelled:
            limits.append("cancelled")
        return f"RunBudget({', '.join(limits)})"
