"""Consistent-hash placement of index cache keys onto service workers.

The fleet front (:mod:`repro.service.router`) must answer one question
deterministically on every request: *which worker owns this index?*  The
canonical cache key is the same triple the single-process daemon already
uses — ``(graph source, threshold, canonical build_options)`` — and the
:class:`HashRing` maps its string form onto worker ids so that

* every key has exactly one **owner** at any ring state (plus an ordered
  list of distinct fallback nodes, :meth:`HashRing.preference`, used for
  warm replicas and failover);
* adding or removing one of N workers moves only ~1/N of the keys
  (``tests/test_hashring.py`` pins ≤ 2/N as a hard property), because
  each worker is hashed onto the ring at ``vnodes`` pseudo-random
  positions and a key belongs to the first vnode clockwise from its own
  hash;
* placement is a pure function of the member set — router, workers and
  topology-aware clients all derive the *same* owner from the same
  membership, so a client can route directly without asking the router.

Every membership change bumps a monotonic ``epoch``; responses that
crossed the router carry it as ``ring_epoch`` so clients can detect a
stale topology and re-fetch (see ``docs/service.md``, "Fleet
deployment").

Hashing is SHA-256 (first 8 bytes, big-endian) — stable across
processes, platforms and Python versions, unlike ``hash()``.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError

__all__ = [
    "HashRing",
    "request_key",
    "key_string",
    "parse_key_string",
    "graph_string",
]

DEFAULT_VNODES = 64


def _hash(data: str) -> int:
    """A stable 64-bit ring position for ``data``."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def request_key(obj: Dict[str, Any]) -> Tuple[Tuple[str, str], int, str]:
    """The canonical index cache key named by one request object.

    Exactly the triple :class:`~repro.service.ReproService` caches
    under — ``((kind, source), threshold, build_options fingerprint)`` —
    computed from the request fields alone, so router and topology-aware
    clients agree with the worker without a round trip.
    """
    dataset = obj.get("dataset")
    path = obj.get("path")
    if (dataset is None) == (path is None):
        raise InvalidParameterError(
            "exactly one of 'dataset' or 'path' is required"
        )
    graph_key = (
        ("dataset", dataset) if dataset is not None else ("path", path)
    )
    threshold = int(obj.get("threshold", 0))
    build_options = obj.get("build_options") or {}
    if not isinstance(build_options, dict):
        raise InvalidParameterError(
            "build_options must be a JSON object when given"
        )
    fingerprint = json.dumps(build_options, sort_keys=True)
    return (graph_key, threshold, fingerprint)


def key_string(index_key: Tuple[Tuple[str, str], int, str]) -> str:
    """One canonical string per index key — the unit the ring places.

    Round-trips through :func:`parse_key_string`, so a key observed in a
    worker's ``key_hits`` stats can be turned back into request fields.
    """
    (kind, source), threshold, fingerprint = index_key
    return json.dumps([[kind, source], threshold, fingerprint])


def parse_key_string(canonical: str) -> Dict[str, Any]:
    """Request fields (``dataset``/``path``, ``threshold``,
    ``build_options``) for a :func:`key_string` canonical key."""
    (kind, source), threshold, fingerprint = json.loads(canonical)
    return {
        kind: source,
        "threshold": threshold,
        "build_options": json.loads(fingerprint),
    }


def graph_string(canonical: str) -> str:
    """The graph-source component of a canonical key (replication and
    update fan-out group by *graph*, not by index key)."""
    return json.dumps(json.loads(canonical)[0])


class HashRing:
    """A consistent-hash ring over named nodes with virtual nodes.

    Deterministic: two rings holding the same member set place every key
    identically, regardless of join order.  Thread-unsafe by design —
    callers (the router) serialise membership changes behind their own
    lock and lookups are reads of immutable snapshots swapped whole.
    """

    def __init__(
        self, nodes: Sequence[str] = (), vnodes: int = DEFAULT_VNODES
    ):
        if vnodes < 1:
            raise InvalidParameterError(
                f"vnodes must be >= 1, got {vnodes!r}"
            )
        self.vnodes = vnodes
        self._nodes: set = set()
        # sorted (position, node) pairs; parallel position list for bisect
        self._ring: List[Tuple[int, str]] = []
        self._positions: List[int] = []
        self._epoch = 0
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotonic membership-change counter (the ``ring_epoch``)."""
        return self._epoch

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> bool:
        """Join ``node``; returns False (no epoch bump) if already present."""
        if not isinstance(node, str) or not node:
            raise InvalidParameterError(
                f"node must be a non-empty string, got {node!r}"
            )
        if node in self._nodes:
            return False
        self._nodes.add(node)
        for i in range(self.vnodes):
            entry = (_hash(f"{node}#{i}"), node)
            bisect.insort(self._ring, entry)
        self._positions = [pos for pos, _ in self._ring]
        self._epoch += 1
        return True

    def remove(self, node: str) -> bool:
        """Leave ``node``; returns False (no epoch bump) if absent."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        self._ring = [entry for entry in self._ring if entry[1] != node]
        self._positions = [pos for pos, _ in self._ring]
        self._epoch += 1
        return True

    # -- placement ------------------------------------------------------

    def owner(self, key: str) -> Optional[str]:
        """The node owning ``key`` (None on an empty ring)."""
        if not self._ring:
            return None
        idx = bisect.bisect_right(self._positions, _hash(key))
        if idx == len(self._ring):
            idx = 0  # wrap: past the last vnode belongs to the first
        return self._ring[idx][1]

    def preference(self, key: str, n: int = 2) -> List[str]:
        """The first ``n`` *distinct* nodes clockwise from ``key``.

        ``preference(key)[0]`` is the owner; the rest are the natural
        replica/failover candidates.  When one node leaves, the old
        ``preference[1]`` becomes the new owner — which is exactly why
        warm replicas are placed there.
        """
        if not self._ring:
            return []
        idx = bisect.bisect_right(self._positions, _hash(key))
        seen: List[str] = []
        for step in range(len(self._ring)):
            node = self._ring[(idx + step) % len(self._ring)][1]
            if node not in seen:
                seen.append(node)
                if len(seen) >= n:
                    break
        return seen

    def snapshot(self) -> Dict[str, Any]:
        return {
            "epoch": self._epoch,
            "nodes": list(self.nodes),
            "vnodes": self.vnodes,
        }

    def __repr__(self) -> str:
        return (
            f"HashRing(nodes={list(self.nodes)!r}, vnodes={self.vnodes}, "
            f"epoch={self._epoch})"
        )
