"""Wire protocol of the query daemon: line-delimited JSON over HTTP.

A **request** is one JSON object per line.  Fields common to every op:

``op``
    ``"query"`` | ``"profile"`` | ``"stats"`` | ``"build"`` |
    ``"update"``.
``dataset`` / ``path``
    Graph source: a bundled synthetic dataset name (``repro datasets``)
    or an edge-list file path readable by the server.  Exactly one is
    required for every op except ``stats`` (server-wide, no graph).
``threshold``
    Partial SCT*-k'-Index threshold (``k'`` in §6.1; default 0 =
    complete index).  Part of the index cache key.
``build_options``
    Free-form JSON object folded into the build fingerprint — two
    requests whose ``(graph, threshold, build_options)`` agree share one
    cached index.
``timeout_s`` / ``max_iterations``
    Per-request :class:`~repro.resilience.RunBudget`.  On expiry the
    response carries a valid best-so-far partial (``code`` 4) or, when
    nothing usable was achieved, an empty invalid partial (``code`` 3) —
    the same exit codes the CLI uses.
``request_id``
    Optional client-chosen correlation id (non-empty string).  Echoed
    verbatim in the response envelope; when omitted the server generates
    one at ingress.  The id is stamped on every trace event (``"rid"``)
    and access-log entry the request produces, including events from
    pool workers.

``query`` adds ``k`` (required), ``method``, ``iterations``,
``sample_size``, ``seed``, ``include_stats``; ``profile`` adds
``iterations``.

``update`` applies an edge batch to the graph *and* its cached
SCT*-Index incrementally (``POST /v1/update``).  It adds ``inserts``
and ``deletes`` — lists of ``[u, v]`` vertex pairs, at least one edge
between them — plus an optional ``method`` that is validated against
the registry's ``supports_update`` capability (unsupported methods are
rejected with code 2 and the list of methods that do).  A successful
response carries ``applied: true``, a ``update`` digest (dirty-region
counters from :class:`~repro.core.update.DirtyRegion`), the counts of
invalidated/retained result-cache entries and the new
``graph_version``.  A budget that expires mid-update returns code 4
with ``applied: false`` — the previous index keeps serving and the
version does not move.

``graph_version`` is a per-graph monotonic counter: 0 until the first
update commits, incremented by each one.  ``query`` and ``build``
responses echo the version their result was computed against, so a
client can tell a pre-update cached answer from a post-update one.

Every **response** is one JSON object per line wrapped in the
``repro/service-v1`` envelope::

    {"schema": "repro/service-v1", "op": ..., "code": 0, "error": null,
     ...op-specific payload...}

``code`` mirrors the CLI exit codes: 0 success, 1 internal error,
2 usage / bad request, 3 budget exhausted with nothing usable, 4 budget
exhausted but a valid partial result is included; code 5 is
service-only: the request was **rejected by admission control**
(concurrency slots and the bounded wait queue are full) and was never
started.  Rejection envelopes carry ``"rejected": true`` and a
``"retry_after_s"`` hint derived from the server's latency histograms;
over HTTP they map to status 429 with a ``Retry-After`` header.  A
request whose ``timeout_s`` provably cannot be met given the current
queue (queue depth × observed p50) is rejected with code 3 semantics
instead — budget exhausted before it began — also flagged
``"rejected": true``.  Responses that fast-failed on an open circuit
breaker carry ``"breaker_open": true`` (HTTP 503) plus
``retry_after_s`` until the next half-open probe.

Every response also carries ``request_id`` (see above).  Query
responses embed the full ``repro/result-v1`` payload under ``"result"``
plus ``cached`` (served from the finished-result cache), ``coalesced``
(shared a concurrent identical computation) and ``query_time_s``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..errors import InvalidParameterError
from ..results import PROFILE_SCHEMA, RESULT_SCHEMA, STATS_SCHEMA

__all__ = [
    "SERVICE_SCHEMA",
    "SERVICE_STATS_SCHEMA",
    "RESULT_SCHEMA",
    "PROFILE_SCHEMA",
    "STATS_SCHEMA",
    "KNOWN_OPS",
    "envelope",
    "error_envelope",
    "parse_request",
]

SERVICE_SCHEMA = "repro/service-v1"
SERVICE_STATS_SCHEMA = "repro/service-stats-v1"

KNOWN_OPS = ("query", "profile", "stats", "build", "update")


def envelope(op: str, code: int = 0, **payload: Any) -> Dict[str, Any]:
    """A well-formed ``repro/service-v1`` response object."""
    body: Dict[str, Any] = {
        "schema": SERVICE_SCHEMA,
        "op": op,
        "code": code,
        "error": None,
    }
    body.update(payload)
    return body


def error_envelope(
    op: Optional[str], code: int, message: str, **payload: Any
) -> Dict[str, Any]:
    """An error response; ``code`` follows the CLI exit-code convention.

    Extra keyword fields (``rejected``, ``retry_after_s``,
    ``breaker_open``, ...) land as envelope siblings.
    """
    body: Dict[str, Any] = {
        "schema": SERVICE_SCHEMA,
        "op": op or "",
        "code": code,
        "error": message,
    }
    body.update(payload)
    return body


def parse_request(line: str) -> Dict[str, Any]:
    """Decode and structurally validate one request line.

    Raises :class:`~repro.errors.InvalidParameterError` (mapped to code 2
    by the server) on anything malformed; op-specific field validation
    happens in the handlers, where the error messages can be specific.
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"request is not valid JSON: {exc}")
    if not isinstance(obj, dict):
        raise InvalidParameterError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    op = obj.get("op")
    if op not in KNOWN_OPS:
        raise InvalidParameterError(
            f"unknown op {op!r}; expected one of: {', '.join(KNOWN_OPS)}"
        )
    return obj
