"""Wire protocol of the query daemon: line-delimited JSON over HTTP.

A **request** is one JSON object per line.  Fields common to every op:

``op``
    ``"query"`` | ``"profile"`` | ``"stats"`` | ``"build"`` |
    ``"update"``.
``dataset`` / ``path``
    Graph source: a bundled synthetic dataset name (``repro datasets``)
    or an edge-list file path readable by the server.  Exactly one is
    required for every op except ``stats`` (server-wide, no graph).
``threshold``
    Partial SCT*-k'-Index threshold (``k'`` in §6.1; default 0 =
    complete index).  Part of the index cache key.
``build_options``
    Free-form JSON object folded into the build fingerprint — two
    requests whose ``(graph, threshold, build_options)`` agree share one
    cached index.
``timeout_s`` / ``max_iterations``
    Per-request :class:`~repro.resilience.RunBudget`.  On expiry the
    response carries a valid best-so-far partial (``code`` 4) or, when
    nothing usable was achieved, an empty invalid partial (``code`` 3) —
    the same exit codes the CLI uses.
``request_id``
    Optional client-chosen correlation id (non-empty string).  Echoed
    verbatim in the response envelope; when omitted the server generates
    one at ingress.  The id is stamped on every trace event (``"rid"``)
    and access-log entry the request produces, including events from
    pool workers.

``query`` adds ``k`` (required), ``method``, ``iterations``,
``sample_size``, ``seed``, ``include_stats``; ``profile`` adds
``iterations``.

``update`` applies an edge batch to the graph *and* its cached
SCT*-Index incrementally (``POST /v1/update``).  It adds ``inserts``
and ``deletes`` — lists of ``[u, v]`` vertex pairs, at least one edge
between them — plus an optional ``method`` that is validated against
the registry's ``supports_update`` capability (unsupported methods are
rejected with code 2 and the list of methods that do).  A successful
response carries ``applied: true``, a ``update`` digest (dirty-region
counters from :class:`~repro.core.update.DirtyRegion`), the counts of
invalidated/retained result-cache entries and the new
``graph_version``.  A budget that expires mid-update returns code 4
with ``applied: false`` — the previous index keeps serving and the
version does not move.

``graph_version`` is a per-graph monotonic counter: 0 until the first
update commits, incremented by each one.  ``query`` and ``build``
responses echo the version their result was computed against, so a
client can tell a pre-update cached answer from a post-update one.

Every **response** is one JSON object per line wrapped in the
``repro/service-v1`` envelope::

    {"schema": "repro/service-v1", "op": ..., "code": 0, "error": null,
     ...op-specific payload...}

``code`` mirrors the CLI exit codes: 0 success, 1 internal error,
2 usage / bad request, 3 budget exhausted with nothing usable, 4 budget
exhausted but a valid partial result is included; code 5 is
service-only: the request was **rejected by admission control**
(concurrency slots and the bounded wait queue are full) and was never
started.  Rejection envelopes carry ``"rejected": true`` and a
``"retry_after_s"`` hint derived from the server's latency histograms;
over HTTP they map to status 429 with a ``Retry-After`` header.  A
request whose ``timeout_s`` provably cannot be met given the current
queue (queue depth × observed p50) is rejected with code 3 semantics
instead — budget exhausted before it began — also flagged
``"rejected": true``.  Responses that fast-failed on an open circuit
breaker carry ``"breaker_open": true`` (HTTP 503) plus
``retry_after_s`` until the next half-open probe.

Every response also carries ``request_id`` (see above).  Query
responses embed the full ``repro/result-v1`` payload under ``"result"``
plus ``cached`` (served from the finished-result cache), ``coalesced``
(shared a concurrent identical computation) and ``query_time_s``.

**Topology fields (``repro/service-v1.1``).**  In a fleet deployment
(see ``docs/service.md``, "Fleet deployment") envelopes grow two
*optional* fields: ``served_by`` — the worker id that computed the
response (stamped by workers started with ``--worker-id`` and by the
router on every forwarded response) — and ``ring_epoch`` — the router's
monotonic hash-ring membership counter, present only on responses that
crossed the router.  An envelope carrying either field is tagged
``schema: repro/service-v1.1``; everything else about the contract is
unchanged.  The compatibility rule is the usual one for optional
fields: **a v1 consumer must ignore unknown optional fields**, so every
valid v1.1 envelope is also a valid v1 envelope minus the tag, and
``python -m repro.obs.validate --result`` accepts both versions.  The
router additionally serves ``GET /v1/topology``: a v1.1 envelope whose
``topology`` payload (``repro/topology-v1``) carries the ring epoch,
the worker table and the warm-replica map, so clients can route
directly to owners.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..errors import InvalidParameterError
from ..results import PROFILE_SCHEMA, RESULT_SCHEMA, STATS_SCHEMA

__all__ = [
    "SERVICE_SCHEMA",
    "SERVICE_SCHEMA_V11",
    "SERVICE_STATS_SCHEMA",
    "ROUTER_STATS_SCHEMA",
    "TOPOLOGY_SCHEMA",
    "RESULT_SCHEMA",
    "PROFILE_SCHEMA",
    "STATS_SCHEMA",
    "KNOWN_OPS",
    "envelope",
    "error_envelope",
    "stamp_topology",
    "parse_request",
]

SERVICE_SCHEMA = "repro/service-v1"
# v1.1 adds the *optional* topology fields served_by / ring_epoch; the
# compatibility rule (unknown optional fields are ignored) makes every
# v1.1 envelope readable by a v1 consumer
SERVICE_SCHEMA_V11 = "repro/service-v1.1"
SERVICE_STATS_SCHEMA = "repro/service-stats-v1"
ROUTER_STATS_SCHEMA = "repro/router-stats-v1"
TOPOLOGY_SCHEMA = "repro/topology-v1"

KNOWN_OPS = ("query", "profile", "stats", "build", "update")


def envelope(op: str, code: int = 0, **payload: Any) -> Dict[str, Any]:
    """A well-formed ``repro/service-v1`` response object."""
    body: Dict[str, Any] = {
        "schema": SERVICE_SCHEMA,
        "op": op,
        "code": code,
        "error": None,
    }
    body.update(payload)
    return body


def error_envelope(
    op: Optional[str], code: int, message: str, **payload: Any
) -> Dict[str, Any]:
    """An error response; ``code`` follows the CLI exit-code convention.

    Extra keyword fields (``rejected``, ``retry_after_s``,
    ``breaker_open``, ...) land as envelope siblings.
    """
    body: Dict[str, Any] = {
        "schema": SERVICE_SCHEMA,
        "op": op or "",
        "code": code,
        "error": message,
    }
    body.update(payload)
    return body


def stamp_topology(
    env: Dict[str, Any],
    served_by: Optional[str] = None,
    ring_epoch: Optional[int] = None,
) -> Dict[str, Any]:
    """Stamp the optional topology fields onto ``env`` (in place).

    Any envelope carrying ``served_by`` and/or ``ring_epoch`` is tagged
    with the ``repro/service-v1.1`` schema; an envelope stamped with
    neither is returned untouched, so single-process deployments keep
    emitting plain v1.
    """
    if served_by is not None:
        env["served_by"] = served_by
    if ring_epoch is not None:
        env["ring_epoch"] = ring_epoch
    if "served_by" in env or "ring_epoch" in env:
        env["schema"] = SERVICE_SCHEMA_V11
    return env


def parse_request(line: str) -> Dict[str, Any]:
    """Decode and structurally validate one request line.

    Raises :class:`~repro.errors.InvalidParameterError` (mapped to code 2
    by the server) on anything malformed; op-specific field validation
    happens in the handlers, where the error messages can be specific.
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(f"request is not valid JSON: {exc}")
    if not isinstance(obj, dict):
        raise InvalidParameterError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    op = obj.get("op")
    if op not in KNOWN_OPS:
        raise InvalidParameterError(
            f"unknown op {op!r}; expected one of: {', '.join(KNOWN_OPS)}"
        )
    return obj
