"""``repro.service`` — the long-lived k-clique density query daemon.

The SCT*-Index is built once and queried for many ``k`` (§4.1 of the
paper); this package is the process that makes the amortisation real: a
stdlib-only threaded HTTP server that holds built indices in a bounded
LRU cache, coalesces concurrent identical requests into one computation
(single-flight), maps client timeouts onto per-request
:class:`~repro.resilience.RunBudget`\\ s, folds per-request metrics into
a server-wide trace, and drains gracefully on SIGTERM.

Start it with ``python -m repro serve`` (or ``python -m repro.service``)
and speak line-delimited JSON to it::

    curl -s http://127.0.0.1:8642/v1/query \\
         -d '{"dataset": "email", "k": 5, "method": "sctl*"}'

Every response is a ``repro/service-v1`` envelope; query responses embed
the versioned ``repro/result-v1`` payload.  ``docs/service.md`` has the
full protocol, the cache-key rules and the tuning guide.
"""

from .cache import LRUCache
from .client import (
    ProfileOutcome,
    QueryOutcome,
    ServiceClient,
    ServiceOutcome,
    UpdateOutcome,
)
from .hashring import HashRing, key_string, parse_key_string, request_key
from .protocol import (
    KNOWN_OPS,
    ROUTER_STATS_SCHEMA,
    SERVICE_SCHEMA,
    SERVICE_SCHEMA_V11,
    SERVICE_STATS_SCHEMA,
    TOPOLOGY_SCHEMA,
    envelope,
    error_envelope,
    parse_request,
    stamp_topology,
)
from .router import (
    FleetManager,
    RouterConfig,
    RouterService,
    make_router,
    serve_fleet,
)
from .server import ReproService, ServiceConfig, make_server, serve_forever
from .singleflight import SingleFlight

__all__ = [
    "LRUCache",
    "ServiceClient",
    "ServiceOutcome",
    "QueryOutcome",
    "ProfileOutcome",
    "UpdateOutcome",
    "SingleFlight",
    "ReproService",
    "ServiceConfig",
    "make_server",
    "serve_forever",
    "HashRing",
    "key_string",
    "parse_key_string",
    "request_key",
    "FleetManager",
    "RouterConfig",
    "RouterService",
    "make_router",
    "serve_fleet",
    "SERVICE_SCHEMA",
    "SERVICE_SCHEMA_V11",
    "SERVICE_STATS_SCHEMA",
    "ROUTER_STATS_SCHEMA",
    "TOPOLOGY_SCHEMA",
    "KNOWN_OPS",
    "envelope",
    "error_envelope",
    "parse_request",
    "stamp_topology",
]
