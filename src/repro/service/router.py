"""Fleet front for the query daemon: consistent-hash routing over workers.

One ``ThreadingHTTPServer`` process cannot serve the millions-of-users
north star: every SCT*-Index is resident in a single process and cold
builds serialize behind the GIL.  The fleet splits the roles:

* N **workers** — unmodified :class:`~repro.service.ReproService`
  processes on loopback ports (spawned by :class:`FleetManager`, or
  supplied as a static table), each started with ``--worker-id`` so its
  envelopes carry ``served_by``;
* one **router** — :class:`RouterService`, which places every canonical
  index cache key ``(graph source, threshold, build_options)`` on the
  :class:`~repro.service.hashring.HashRing` and forwards each request to
  the owner, so *each index is resident exactly once* across the fleet.

On top of plain placement the router adds:

* **warm-replica promotion** — a poll thread reads each worker's
  ``key_hits`` stats, feeds the merged totals into
  :class:`~repro.resilience.overload.HotKeyTracker`, and replicates hot
  keys to their next preference node with a ``build`` request; reads
  then round-robin across owner + replicas.
* **worker death handling** — forwards run behind a per-worker
  :class:`~repro.resilience.overload.CircuitBreaker`; a connection-level
  failure on a dead process removes the worker from the ring (epoch
  bump) and the request fails over to the next candidate, so a
  mid-flight SIGKILL costs retries, not answers.
* **fleet-wide update semantics** — ``/v1/update`` goes to the key's
  owner first; a committed batch is appended to a per-graph update log
  and replayed to every worker serving a replica of that graph, and to
  any worker that later becomes an owner cold (ring reassignment), so
  ``graph_version`` stays monotonic per graph across the whole fleet.
* a **versioned topology surface** — ``GET /v1/topology`` returns the
  ring epoch, worker table and replica map (``repro/topology-v1``);
  every response that crosses the router is stamped ``ring_epoch`` (and
  therefore tagged ``repro/service-v1.1``), which is how
  topology-aware clients notice membership changes.

The router holds no graph data and builds no indices — it is a thin
placement layer, which is exactly what lets a loopback fleet scale cold
builds near-linearly (see ``scripts/bench_fleet.py``).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from queue import Empty, Queue
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError
from ..obs import MetricsRecorder, render_exposition
from ..resilience.overload import CircuitBreaker, HotKeyTracker
from .hashring import (
    DEFAULT_VNODES,
    HashRing,
    graph_string,
    key_string,
    parse_key_string,
    request_key,
)
from .protocol import (
    ROUTER_STATS_SCHEMA,
    TOPOLOGY_SCHEMA,
    envelope,
    error_envelope,
    parse_request,
    stamp_topology,
)
from .server import (
    CODE_BAD_REQUEST,
    CODE_ERROR,
    CODE_OK,
    _status_for,
)

__all__ = [
    "RouterConfig",
    "FleetManager",
    "RouterService",
    "make_router",
    "serve_fleet",
]

# the worker announce line serve_forever prints once its socket is bound
_ANNOUNCE_PREFIX = "repro service listening on "

# ops that carry a graph source and therefore a ring placement
_PLACED_OPS = ("query", "build", "profile", "update")

# hard cap on replayable updates retained per graph; a graph past the
# cap stops being replicated (correctness first: replicas that cannot
# be converged are not served)
_UPDATE_LOG_CAP = 512

# at most this many keys hold warm replicas at once
_MAX_REPLICATED_KEYS = 8


@dataclass
class RouterConfig:
    """Tunables for one :class:`RouterService`."""

    host: str = "127.0.0.1"
    port: int = 8642
    vnodes: int = DEFAULT_VNODES
    replica_count: int = 1
    request_timeout_s: float = 60.0
    poll_interval_s: float = 2.0
    hot_key_threshold: int = 8
    hot_key_cold_windows: int = 3
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 5.0


@dataclass
class _Worker:
    """Router-side view of one fleet member."""

    worker_id: str
    url: str
    breaker: CircuitBreaker = field(
        default_factory=lambda: CircuitBreaker(threshold=3, cooldown_s=5.0)
    )


class FleetManager:
    """Spawns and supervises N worker processes on loopback ports.

    Each worker is the existing ``serve`` machinery —
    ``python -m repro serve --role worker --worker-id w<i> --port 0`` —
    so the fleet reuses every single-process behavior (admission
    control, caches, crash recovery) unchanged.  ``start`` blocks until
    every worker has printed its announce line and returns the
    ``{worker_id: url}`` table the router routes by.
    """

    def __init__(
        self,
        count: int,
        extra_args: Sequence[str] = (),
        index_dir: Optional[str] = None,
        startup_timeout_s: float = 30.0,
        python: str = sys.executable,
    ):
        if not isinstance(count, int) or count < 1:
            raise InvalidParameterError(
                f"fleet size must be an int >= 1, got {count!r}"
            )
        self.count = count
        self.extra_args = list(extra_args)
        self.index_dir = index_dir
        self.startup_timeout_s = startup_timeout_s
        self.python = python
        self._procs: Dict[str, subprocess.Popen] = {}
        self._lock = threading.Lock()

    def _spawn_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        # make sure the child can import this very package, regardless
        # of how the router process itself was launched
        package_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing
            else package_root
        )
        return env

    def _spawn(self, worker_id: str) -> subprocess.Popen:
        cmd = [
            self.python, "-m", "repro", "serve",
            "--role", "worker", "--worker-id", worker_id,
            "--host", "127.0.0.1", "--port", "0",
        ]
        if self.index_dir is not None:
            worker_dir = os.path.join(self.index_dir, worker_id)
            os.makedirs(worker_dir, exist_ok=True)
            cmd += ["--index-dir", worker_dir]
        cmd += self.extra_args
        return subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=None,  # worker warnings go to the fleet's stderr
            env=self._spawn_env(),
            text=True,
        )

    @staticmethod
    def _await_announce(
        proc: subprocess.Popen, timeout_s: float
    ) -> Optional[str]:
        """The worker's base URL from its announce line, or None.

        stdout is drained by a daemon thread for the worker's whole
        lifetime so a chatty worker can never block on a full pipe.
        """
        lines: Queue = Queue()

        def _drain() -> None:
            for line in proc.stdout:  # type: ignore[union-attr]
                lines.put(line)

        threading.Thread(target=_drain, daemon=True).start()
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or proc.poll() is not None:
                return None
            try:
                line = lines.get(timeout=min(remaining, 0.25))
            except Empty:
                continue
            if line.startswith(_ANNOUNCE_PREFIX):
                return line[len(_ANNOUNCE_PREFIX):].strip()

    def start(self) -> Dict[str, str]:
        """Spawn the fleet; returns ``{worker_id: base_url}``."""
        workers: Dict[str, str] = {}
        for i in range(self.count):
            worker_id = f"w{i}"
            proc = self._spawn(worker_id)
            url = self._await_announce(proc, self.startup_timeout_s)
            if url is None:
                proc.kill()
                self.terminate()
                raise RuntimeError(
                    f"worker {worker_id} failed to announce within "
                    f"{self.startup_timeout_s}s"
                )
            with self._lock:
                self._procs[worker_id] = proc
            workers[worker_id] = url
        return workers

    def alive(self, worker_id: str) -> bool:
        with self._lock:
            proc = self._procs.get(worker_id)
        return proc is not None and proc.poll() is None

    def kill(self, worker_id: str) -> bool:
        """SIGKILL one worker (the chaos suite's weapon of choice)."""
        with self._lock:
            proc = self._procs.get(worker_id)
        if proc is None or proc.poll() is not None:
            return False
        proc.kill()
        proc.wait()
        return True

    def terminate(self, timeout_s: float = 15.0) -> None:
        """SIGTERM every live worker and wait for the drain."""
        with self._lock:
            procs = list(self._procs.values())
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + timeout_s
        for proc in procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


class RouterService:
    """The routing brain: placement, failover, replication, fan-out.

    Transport-free (``handle_request`` maps one request object to one
    response envelope) so the tests can drive it without sockets; the
    HTTP layer below is a thin adapter, exactly like the worker's.
    """

    def __init__(
        self,
        config: RouterConfig,
        workers: Dict[str, str],
        manager: Optional[FleetManager] = None,
    ):
        if not workers:
            raise InvalidParameterError("a fleet needs at least one worker")
        self.config = config
        self.manager = manager
        self._lock = threading.RLock()
        self._workers: Dict[str, _Worker] = {
            worker_id: _Worker(
                worker_id, url.rstrip("/"),
                CircuitBreaker(
                    threshold=config.breaker_threshold,
                    cooldown_s=config.breaker_cooldown_s,
                ),
            )
            for worker_id, url in workers.items()
        }
        self.ring = HashRing(sorted(workers), vnodes=config.vnodes)
        # canonical key -> ordered replica worker ids (owner excluded)
        self._replicas: Dict[str, List[str]] = {}
        self._rr: Dict[str, int] = {}
        # per-graph replayable update history + per-(worker, graph)
        # applied counts; both only consulted when a graph has updates
        self._update_log: Dict[str, List[Dict[str, Any]]] = {}
        self._log_overflow: Dict[str, bool] = {}
        self._converged: Dict[Tuple[str, str], int] = {}
        self._graph_locks: Dict[str, threading.Lock] = {}
        self._tracker = HotKeyTracker(
            threshold=config.hot_key_threshold,
            cold_windows=config.hot_key_cold_windows,
        )
        self._recorder = MetricsRecorder()
        self._rec_lock = threading.Lock()
        self._draining = threading.Event()
        self._started = time.monotonic()
        self._poller: Optional[threading.Thread] = None

    # -- small shared helpers -------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._rec_lock:
            self._recorder.counter(name, amount)

    def _observe(self, name: str, value: float) -> None:
        with self._rec_lock:
            self._recorder.observe(name, value)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self) -> None:
        self._draining.set()

    def metrics_text(self) -> str:
        with self._rec_lock:
            snapshot = self._recorder.snapshot()
        return render_exposition(snapshot)

    def _graph_lock(self, graph: str) -> threading.Lock:
        with self._lock:
            lock = self._graph_locks.get(graph)
            if lock is None:
                lock = self._graph_locks[graph] = threading.Lock()
            return lock

    def _worker(self, worker_id: Optional[str]) -> Optional[_Worker]:
        if worker_id is None:
            return None
        with self._lock:
            return self._workers.get(worker_id)

    # -- wire to one worker ---------------------------------------------

    def _forward_once(
        self, worker: _Worker, path: str, obj: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        """One single-shot exchange with one worker.

        No retry loop on purpose: a worker's 429/503 envelope (with its
        histogram-derived ``retry_after_s``) must reach the client
        untouched — backoff is the *client's* job, and the router
        retrying into an overloaded worker would amplify the overload.
        Raises ``OSError`` on connection-level failure.
        """
        body = (
            json.dumps(obj).encode("utf-8") if obj is not None else None
        )
        request = urllib.request.Request(
            worker.url + path,
            data=body,
            method="POST" if body is not None else "GET",
            headers={"Content-Type": "application/x-ndjson"}
            if body is not None else {},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.config.request_timeout_s
            ) as response:
                status, payload = response.status, response.read()
        except urllib.error.HTTPError as exc:
            with exc:
                status, payload = exc.code, exc.read()
        except urllib.error.URLError as exc:
            reason = exc.reason
            raise reason if isinstance(reason, OSError) else OSError(
                str(reason)
            )
        lines = [ln for ln in payload.decode("utf-8").splitlines() if ln]
        if not lines:
            raise OSError(f"empty response body (HTTP {status})")
        return status, json.loads(lines[0])

    def _note_worker_failure(self, worker: _Worker, exc: BaseException) -> None:
        """A connection-level failure talking to ``worker``.

        A provably dead process (the manager watched it exit) leaves the
        ring immediately — reassignment, not cooldown.  Without a
        manager (static fleet) a refused connection is the same proof.
        Anything softer (timeout on a live process) just feeds the
        breaker so a struggling worker sheds load without losing its
        keys.
        """
        worker.breaker.record_failure(exc)
        self._count(f"router/worker_errors/{worker.worker_id}")
        dead = (
            self.manager is not None
            and not self.manager.alive(worker.worker_id)
        ) or (
            self.manager is None and isinstance(exc, ConnectionError)
        )
        if dead:
            self._remove_worker(worker.worker_id)

    def _remove_worker(self, worker_id: str) -> bool:
        with self._lock:
            if worker_id not in self._workers:
                return False
            del self._workers[worker_id]
            self.ring.remove(worker_id)
            for key, ids in list(self._replicas.items()):
                remaining = [i for i in ids if i != worker_id]
                if remaining:
                    self._replicas[key] = remaining
                else:
                    del self._replicas[key]
            for pair in [p for p in self._converged if p[0] == worker_id]:
                del self._converged[pair]
        self._count("router/workers_removed")
        print(
            json.dumps({
                "op": "topology", "event": "worker_removed",
                "worker_id": worker_id, "ring_epoch": self.ring.epoch,
            }),
            file=sys.stderr, flush=True,
        )
        return True

    # -- update-log convergence -----------------------------------------

    def _ensure_converged(self, worker: _Worker, graph: str) -> None:
        """Replay any update batches ``worker`` has not applied yet.

        Caller holds the graph lock.  Raises on a replay that fails, so
        callers never treat an unconverged worker as servable.
        """
        log = self._update_log.get(graph)
        if not log:
            return
        applied = self._converged.get((worker.worker_id, graph), 0)
        for entry in log[applied:]:
            status, env = self._forward_once(worker, "/v1/update", entry)
            if status != 200 or not env.get("applied"):
                raise OSError(
                    f"update replay to {worker.worker_id} failed "
                    f"(HTTP {status}, code {env.get('code')!r})"
                )
            applied += 1
            self._converged[(worker.worker_id, graph)] = applied
            self._count("router/update_replays")

    def _log_update(self, graph: str, entry: Dict[str, Any]) -> None:
        """Append one committed batch to the graph's replay log."""
        log = self._update_log.setdefault(graph, [])
        if len(log) >= _UPDATE_LOG_CAP:
            if not self._log_overflow.get(graph):
                self._log_overflow[graph] = True
                self._count("router/update_log/overflow")
            # past the cap new owners/replicas can no longer be
            # converged: stop replicating this graph's keys
            for key, _ids in list(self._replicas.items()):
                if graph_string(key) == graph:
                    del self._replicas[key]
            return
        log.append(entry)

    # -- request handling -----------------------------------------------

    def handle_line(self, line: str) -> Dict[str, Any]:
        try:
            obj = parse_request(line)
        except InvalidParameterError as exc:
            return self._finish(error_envelope(
                None, CODE_BAD_REQUEST, str(exc)
            ))
        return self.handle_request(obj)

    def handle_request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """One request object in, one stamped response envelope out."""
        op = obj.get("op")
        rid = obj.get("request_id")
        if not isinstance(rid, str) or not rid:
            rid = uuid.uuid4().hex[:16]
            obj = dict(obj, request_id=rid)
        started = time.perf_counter()
        response = self._dispatch(op, obj)
        response.setdefault("request_id", rid)
        if op in _PLACED_OPS and response.get("error") is None:
            temp = (
                "warm"
                if response.get("cached") or response.get("coalesced")
                else "cold"
            )
            self._observe(
                f"service/latency/{op}/{temp}",
                time.perf_counter() - started,
            )
        return self._finish(response)

    def _finish(self, response: Dict[str, Any]) -> Dict[str, Any]:
        return stamp_topology(response, ring_epoch=self.ring.epoch)

    def _dispatch(self, op: Any, obj: Dict[str, Any]) -> Dict[str, Any]:
        if self.draining:
            return error_envelope(op, CODE_ERROR, "router is draining")
        self._count(f"router/requests/{op}")
        try:
            if op == "topology":
                return self._op_topology()
            if op == "stats":
                return self._op_stats()
            if op == "update":
                return self._op_update(obj)
            if op in ("query", "build", "profile"):
                return self._op_forward(op, obj)
            return error_envelope(
                op, CODE_BAD_REQUEST,
                f"unknown op {op!r}; expected one of: "
                "build, profile, query, stats, topology, update",
            )
        except InvalidParameterError as exc:
            return error_envelope(op, CODE_BAD_REQUEST, str(exc))
        except Exception as exc:  # the router must survive anything
            return error_envelope(
                op, CODE_ERROR, f"router internal error: {exc!r}"
            )

    def _candidates(self, op: str, key: str) -> List[str]:
        """Worker ids to try, best first (reads rotate over replicas)."""
        with self._lock:
            owner = self.ring.owner(key)
            if owner is None:
                return []
            pool = [owner] + [
                worker_id for worker_id in self._replicas.get(key, ())
                if worker_id in self._workers and worker_id != owner
            ]
            if op != "query" or len(pool) == 1:
                return pool
            # round-robin reads across owner + warm replicas
            turn = self._rr.get(key, 0)
            self._rr[key] = turn + 1
            start = turn % len(pool)
            return pool[start:] + pool[:start]

    def _op_forward(self, op: str, obj: Dict[str, Any]) -> Dict[str, Any]:
        key = key_string(request_key(obj))
        graph = graph_string(key)
        last_error: Optional[BaseException] = None
        # one extra pass so a ring reassignment after a death gets tried
        for _attempt in range(len(self.ring) + 1):
            candidates = self._candidates(op, key)
            if not candidates:
                break
            for worker_id in candidates:
                worker = self._worker(worker_id)
                if worker is None:
                    continue
                if not worker.breaker.allow():
                    self._count("router/breaker_skips")
                    continue
                try:
                    if graph in self._update_log:
                        with self._graph_lock(graph):
                            self._ensure_converged(worker, graph)
                    status, env = self._forward_once(
                        worker, f"/v1/{op}", obj
                    )
                except OSError as exc:
                    last_error = exc
                    self._note_worker_failure(worker, exc)
                    continue
                worker.breaker.record_success()
                self._count(f"router/forwarded/{worker_id}")
                return env
        if last_error is not None:
            return error_envelope(
                op, CODE_ERROR,
                f"no worker could serve this key after failover: "
                f"{last_error!r}",
            )
        retry_hints = [
            w.breaker.retry_after_s
            for w in self._workers.values()
            if w.breaker.state != CircuitBreaker.CLOSED
        ]
        if retry_hints:
            return error_envelope(
                op, CODE_ERROR,
                "all candidate workers are circuit-broken",
                breaker_open=True,
                retry_after_s=max(retry_hints),
            )
        return error_envelope(op, CODE_ERROR, "no workers in the ring")

    def _op_update(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        key = key_string(request_key(obj))
        graph = graph_string(key)
        with self._graph_lock(graph):
            owner_id = self.ring.owner(key)
            worker = self._worker(owner_id)
            if worker is None:
                return error_envelope(
                    "update", CODE_ERROR, "no workers in the ring"
                )
            # a cold owner (reassigned after a death) first replays the
            # graph's committed history, keeping graph_version monotonic
            try:
                self._ensure_converged(worker, graph)
                status, env = self._forward_once(worker, "/v1/update", obj)
            except OSError as exc:
                self._note_worker_failure(worker, exc)
                # an update is not failed over blind: the connection may
                # have died after the owner applied the batch, and
                # replaying it elsewhere would double-apply
                return error_envelope(
                    "update", CODE_ERROR,
                    f"owner {owner_id} unreachable mid-update; the batch "
                    f"may or may not have been applied: {exc!r}",
                )
            worker.breaker.record_success()
            if status != 200 or not env.get("applied"):
                return env  # rejected / failed on the owner: no fan-out
            entry = {
                k: v for k, v in obj.items()
                if not k.startswith("_") and k != "request_id"
            }
            self._log_update(graph, entry)
            log_len = len(self._update_log.get(graph, ()))
            self._converged[(worker.worker_id, graph)] = log_len
            env["fanout"] = self._fan_out_update(graph, exclude=owner_id)
        return env

    def _fan_out_update(
        self, graph: str, exclude: Optional[str]
    ) -> Dict[str, Any]:
        """Converge every replica-holding worker of ``graph``.

        Caller holds the graph lock (the owner's batch is already in the
        log, so convergence includes it).  A replica that cannot be
        converged is dropped — never served stale.
        """
        with self._lock:
            targets = {
                worker_id
                for key, ids in self._replicas.items()
                if graph_string(key) == graph
                for worker_id in ids
                if worker_id != exclude and worker_id in self._workers
            }
        converged: List[str] = []
        dropped: List[str] = []
        for worker_id in sorted(targets):
            worker = self._worker(worker_id)
            if worker is None:
                continue
            try:
                self._ensure_converged(worker, graph)
            except OSError as exc:
                dropped.append(worker_id)
                self._note_worker_failure(worker, exc)
                with self._lock:
                    for key, ids in list(self._replicas.items()):
                        if graph_string(key) == graph and worker_id in ids:
                            remaining = [
                                i for i in ids if i != worker_id
                            ]
                            if remaining:
                                self._replicas[key] = remaining
                            else:
                                del self._replicas[key]
                self._count("router/replica/dropped")
                continue
            converged.append(worker_id)
        return {"replicas": converged, "dropped": dropped}

    # -- hot-key replication --------------------------------------------

    def poll_once(self) -> None:
        """One stats-poll + promote/demote round (the poll thread's
        body, callable directly from tests)."""
        merged: Dict[str, int] = {}
        with self._lock:
            workers = list(self._workers.values())
        for worker in workers:
            try:
                status, env = self._forward_once(worker, "/v1/stats", None)
            except OSError as exc:
                self._note_worker_failure(worker, exc)
                continue
            if status != 200:
                continue
            worker.breaker.record_success()
            for key, hits in (
                (env.get("stats") or {}).get("key_hits") or {}
            ).items():
                if isinstance(hits, int):
                    merged[key] = merged.get(key, 0) + hits
        self._tracker.observe(merged)
        self._reconcile_replicas()

    def _reconcile_replicas(self) -> None:
        hot = self._tracker.hot_keys()
        for key in hot[:_MAX_REPLICATED_KEYS]:
            with self._lock:
                have = bool(self._replicas.get(key))
                overflowed = self._log_overflow.get(graph_string(key))
            if have or overflowed or len(self.ring) < 2:
                continue
            self._promote(key)
        with self._lock:
            stale = [
                key for key in self._replicas
                if not self._tracker.is_hot(key)
            ]
            for key in stale:
                del self._replicas[key]
        for _ in stale:
            self._count("router/replica/demoted")

    def _promote(self, key: str) -> bool:
        """Warm one replica of ``key`` on its next preference node.

        The replica lands at ``preference[1]`` deliberately: when the
        owner dies, the ring reassigns the key to exactly that node, so
        the hottest keys fail over onto an already-warm index.
        """
        prefs = self.ring.preference(key, 1 + self.config.replica_count)
        targets = prefs[1:]
        if not targets:
            return False
        graph = graph_string(key)
        build_request = dict(parse_key_string(key), op="build")
        promoted: List[str] = []
        for worker_id in targets:
            worker = self._worker(worker_id)
            if worker is None or not worker.breaker.allow():
                continue
            try:
                with self._graph_lock(graph):
                    self._ensure_converged(worker, graph)
                    status, env = self._forward_once(
                        worker, "/v1/build", build_request
                    )
            except OSError as exc:
                self._note_worker_failure(worker, exc)
                continue
            worker.breaker.record_success()
            if status == 200 and env.get("code") == CODE_OK:
                promoted.append(worker_id)
        if not promoted:
            return False
        with self._lock:
            self._replicas[key] = promoted
        self._count("router/replica/promoted")
        return True

    def start_polling(self) -> None:
        """Launch the background stats-poll thread (idempotent)."""
        if self._poller is not None:
            return

        def _loop() -> None:
            while not self._draining.wait(self.config.poll_interval_s):
                try:
                    self.poll_once()
                except Exception:
                    self._count("router/poll_errors")

        self._poller = threading.Thread(
            target=_loop, name="router-poll", daemon=True
        )
        self._poller.start()

    # -- router-local ops -----------------------------------------------

    def _op_topology(self) -> Dict[str, Any]:
        with self._lock:
            payload = {
                "schema": TOPOLOGY_SCHEMA,
                "epoch": self.ring.epoch,
                "vnodes": self.ring.vnodes,
                "workers": [
                    {"id": worker.worker_id, "url": worker.url}
                    for worker in sorted(
                        self._workers.values(),
                        key=lambda w: w.worker_id,
                    )
                ],
                "replicas": {
                    key: list(ids)
                    for key, ids in sorted(self._replicas.items())
                },
            }
        return envelope("topology", CODE_OK, topology=payload)

    def _op_stats(self) -> Dict[str, Any]:
        with self._rec_lock:
            counters = dict(sorted(self._recorder.counters.items()))
            histograms = {
                name: hist.summary()
                for name, hist in sorted(
                    self._recorder.histograms.items()
                )
            }
        with self._lock:
            workers = {
                worker.worker_id: {
                    "url": worker.url,
                    "alive": (
                        self.manager.alive(worker.worker_id)
                        if self.manager is not None else True
                    ),
                    "breaker": worker.breaker.snapshot(),
                }
                for worker in self._workers.values()
            }
            replicas = {
                key: list(ids) for key, ids in self._replicas.items()
            }
            update_log = {
                graph: len(entries)
                for graph, entries in self._update_log.items()
            }
        payload = {
            "schema": ROUTER_STATS_SCHEMA,
            "uptime_s": time.monotonic() - self._started,
            "draining": self.draining,
            "ring": self.ring.snapshot(),
            "workers": workers,
            "replicas": replicas,
            "update_log": update_log,
            "hot_keys": self._tracker.snapshot(),
            "counters": counters,
            "histograms": histograms,
        }
        return envelope("stats", CODE_OK, stats=payload)

    def stats_snapshot(self) -> Dict[str, Any]:
        return self._op_stats()["stats"]


# ---------------------------------------------------------------------------
# HTTP transport (mirrors the worker's, minus the graph machinery)
# ---------------------------------------------------------------------------

class _RouterHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-router"

    @property
    def service(self) -> RouterService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _read_body(self) -> str:
        length = int(self.headers.get("Content-Length", 0))
        return self.rfile.read(length).decode("utf-8") if length else ""

    def _respond(
        self, status: int, body: bytes,
        retry_after: Optional[int] = None,
        content_type: str = "application/x-ndjson",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _respond_envelopes(self, envelopes) -> None:
        body = "".join(
            json.dumps(env) + "\n" for env in envelopes
        ).encode("utf-8")
        status, retry_after = _status_for(self.service, envelopes)
        self._respond(status, body, retry_after=retry_after)

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        body = self._read_body()
        if self.path == "/v1/rpc":
            lines = [line for line in body.splitlines() if line.strip()]
            if not lines:
                self._respond_envelopes([error_envelope(
                    None, CODE_BAD_REQUEST, "empty request"
                )])
                return
            self._respond_envelopes(
                [self.service.handle_line(line) for line in lines]
            )
            return
        op = {
            "/v1/query": "query",
            "/v1/build": "build",
            "/v1/profile": "profile",
            "/v1/stats": "stats",
            "/v1/update": "update",
            "/v1/topology": "topology",
        }.get(self.path)
        if op is None:
            self._respond_envelopes([error_envelope(
                None, CODE_BAD_REQUEST, f"unknown path {self.path!r}"
            )])
            return
        try:
            obj = json.loads(body or "{}")
        except json.JSONDecodeError as exc:
            self._respond_envelopes([error_envelope(
                op, CODE_BAD_REQUEST, f"request is not valid JSON: {exc}"
            )])
            return
        if not isinstance(obj, dict):
            self._respond_envelopes([error_envelope(
                op, CODE_BAD_REQUEST, "request must be a JSON object"
            )])
            return
        obj.setdefault("op", op)
        self._respond_envelopes([self.service.handle_request(obj)])

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        if self.path == "/healthz":
            status = 503 if self.service.draining else 200
            payload = {
                "status": "draining" if self.service.draining else "ok",
            }
            self._respond(status, (json.dumps(payload) + "\n").encode())
            return
        if self.path == "/readyz":
            draining = self.service.draining
            empty = len(self.service.ring) == 0
            ready = not draining and not empty
            payload = {
                "status": "ok" if ready else (
                    "draining" if draining else "no_workers"
                ),
                "draining": draining,
                "workers": len(self.service.ring),
            }
            self._respond(
                200 if ready else 503,
                (json.dumps(payload) + "\n").encode(),
            )
            return
        if self.path == "/v1/topology":
            self._respond_envelopes(
                [self.service.handle_request({"op": "topology"})]
            )
            return
        if self.path == "/v1/stats":
            self._respond_envelopes(
                [self.service.handle_request({"op": "stats"})]
            )
            return
        if self.path == "/metrics":
            self._respond(
                200, self.service.metrics_text().encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
            return
        self._respond_envelopes([error_envelope(
            None, CODE_BAD_REQUEST, f"unknown path {self.path!r}"
        )])


class _RouterHTTPServer(ThreadingHTTPServer):
    daemon_threads = False
    block_on_close = True
    request_queue_size = 128

    def __init__(self, address, service: RouterService):
        self.service = service
        super().__init__(address, _RouterHandler)


def make_router(
    config: RouterConfig,
    workers: Dict[str, str],
    manager: Optional[FleetManager] = None,
) -> Tuple[_RouterHTTPServer, RouterService]:
    """Bind a router for ``config`` without entering its accept loop
    (tests: bind port 0, read the real port, run in a thread)."""
    service = RouterService(config, workers, manager=manager)
    server = _RouterHTTPServer((config.host, config.port), service)
    return server, service


def serve_fleet(
    host: str = "127.0.0.1",
    port: int = 8642,
    fleet: int = 2,
    index_dir: Optional[str] = None,
    worker_args: Sequence[str] = (),
    replica_count: int = 1,
    poll_interval_s: float = 2.0,
) -> int:
    """Spawn ``fleet`` workers plus the router; run until SIGTERM/SIGINT.

    The first signal drains the whole fleet: the router stops accepting,
    every worker gets SIGTERM (each drains its own in-flight requests,
    exactly as standalone), and the router's accept loop stops once the
    workers have exited.
    """
    manager = FleetManager(fleet, extra_args=worker_args, index_dir=index_dir)
    workers = manager.start()
    config = RouterConfig(
        host=host, port=port,
        replica_count=replica_count,
        poll_interval_s=poll_interval_s,
    )
    try:
        server, service = make_router(config, workers, manager=manager)
    except OSError:
        manager.terminate()
        raise
    service.start_polling()

    def _on_signal(signum, frame):
        print(
            f"signal {signum}: draining fleet ({len(workers)} workers)",
            file=sys.stderr, flush=True,
        )
        service.drain()

        def _stop() -> None:
            manager.terminate()
            server.shutdown()

        threading.Thread(target=_stop, daemon=True).start()

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    actual_port = server.server_address[1]
    print(
        f"repro router listening on http://{config.host}:{actual_port} "
        f"(fleet of {len(workers)} workers)",
        flush=True,
    )
    for worker_id, url in sorted(workers.items()):
        print(f"repro worker {worker_id} at {url}", flush=True)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        manager.terminate()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    print("repro fleet drained", flush=True)
    return 0
