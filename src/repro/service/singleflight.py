"""Single-flight request coalescing.

When N clients concurrently ask the daemon for the same expensive thing
— the same cold index build, or the same ``densest_subgraph`` query —
exactly one thread (the *leader*) runs the computation and every
concurrent duplicate (the *followers*) blocks on an event and shares the
leader's outcome, success or exception.  This is the classic Go
``golang.org/x/sync/singleflight`` shape on :mod:`threading` primitives.

The group forgets a key the moment its call completes, so coalescing
only ever joins *in-flight* work; replaying a finished computation is the
result cache's job, not this module's.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Hashable, Tuple

__all__ = ["SingleFlight"]


class _Call:
    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException = None  # type: ignore[assignment]


class SingleFlight:
    """Coalesce concurrent calls for the same key into one execution."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: Dict[Hashable, _Call] = {}

    def do(self, key: Hashable, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per in-flight ``key``; duplicates share it.

        Returns ``(value, leader)`` where ``leader`` is ``True`` for the
        thread that actually executed ``fn``.  If the leader raised, every
        follower re-raises the same exception instance.
        """
        with self._lock:
            call = self._calls.get(key)
            if call is None:
                call = _Call()
                self._calls[key] = call
                leader = True
            else:
                leader = False
        if not leader:
            call.event.wait()
            if call.error is not None:
                raise call.error
            return call.value, False
        try:
            call.value = fn()
        except BaseException as exc:
            call.error = exc
            raise
        finally:
            # drop the key *before* waking followers so a request arriving
            # after completion starts a fresh flight instead of reading a
            # stale one
            with self._lock:
                self._calls.pop(key, None)
            call.event.set()
        return call.value, True

    def in_flight(self) -> int:
        """Number of distinct keys currently being computed."""
        with self._lock:
            return len(self._calls)
