"""Single-flight request coalescing.

When N clients concurrently ask the daemon for the same expensive thing
— the same cold index build, or the same ``densest_subgraph`` query —
exactly one thread (the *leader*) runs the computation and every
concurrent duplicate (the *followers*) blocks on an event and shares the
leader's outcome, success or exception.  This is the classic Go
``golang.org/x/sync/singleflight`` shape on :mod:`threading` primitives.

The group forgets a key the moment its call completes, so coalescing
only ever joins *in-flight* work; replaying a finished computation is the
result cache's job, not this module's.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable, Dict, Hashable, Tuple

__all__ = ["SingleFlight"]


def _follower_error(original: BaseException) -> BaseException:
    """A per-follower copy of the leader's exception, chained to it.

    Re-raising the *same* instance from N follower threads is a data
    race: each ``raise`` mutates the shared ``__traceback__`` (and
    ``raise ... from`` would overwrite ``__cause__``/``__context__``)
    while other threads are reading it, producing garbled stack traces.
    Each follower therefore raises its own shallow copy — same type,
    args, and attributes — with ``__cause__`` pointing at the leader's
    pristine original, so the true failure site stays in every report.
    An exception that refuses to copy falls back to the shared instance
    (correctness of control flow over cosmetics).
    """
    try:
        clone = copy.copy(original)
    except Exception:
        return original
    if type(clone) is not type(original):
        return original
    clone.__cause__ = original
    clone.__suppress_context__ = True
    clone.__traceback__ = None
    return clone


class _Call:
    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException = None  # type: ignore[assignment]


class SingleFlight:
    """Coalesce concurrent calls for the same key into one execution."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: Dict[Hashable, _Call] = {}

    def do(self, key: Hashable, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per in-flight ``key``; duplicates share it.

        Returns ``(value, leader)`` where ``leader`` is ``True`` for the
        thread that actually executed ``fn``.  If the leader raised, the
        leader re-raises its own exception and every follower raises a
        per-thread copy of it, chained via ``__cause__`` to the leader's
        original (see :func:`_follower_error`).
        """
        with self._lock:
            call = self._calls.get(key)
            if call is None:
                call = _Call()
                self._calls[key] = call
                leader = True
            else:
                leader = False
        if not leader:
            call.event.wait()
            if call.error is not None:
                raise _follower_error(call.error)
            return call.value, False
        try:
            call.value = fn()
        except BaseException as exc:
            call.error = exc
            raise
        finally:
            # drop the key *before* waking followers so a request arriving
            # after completion starts a fresh flight instead of reading a
            # stale one
            with self._lock:
                self._calls.pop(key, None)
            call.event.set()
        return call.value, True

    def in_flight(self) -> int:
        """Number of distinct keys currently being computed."""
        with self._lock:
            return len(self._calls)
