"""Single-flight request coalescing.

When N clients concurrently ask the daemon for the same expensive thing
— the same cold index build, or the same ``densest_subgraph`` query —
exactly one thread (the *leader*) runs the computation and every
concurrent duplicate (the *followers*) blocks on an event and shares the
leader's outcome, success or exception.  This is the classic Go
``golang.org/x/sync/singleflight`` shape on :mod:`threading` primitives.

The group forgets a key the moment its call completes, so coalescing
only ever joins *in-flight* work; replaying a finished computation is the
result cache's job, not this module's.

Leader death: a leader thread can die without ever completing the flight
— ``SystemExit`` raised by fault injection lands in the ``except
BaseException`` path, but a thread killed in the window between claiming
leadership and entering the ``try`` block (or torn down by interpreter
shutdown machinery) leaves a permanently unset event.  Followers
therefore wait in short slices and watch the leader thread's liveness;
a dead leader with an unset event wakes every follower with
:class:`LeaderDied` instead of hanging them forever, and the stale key
is removed so the next request starts a fresh flight.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable, Dict, Hashable, Tuple

__all__ = ["SingleFlight", "LeaderDied"]


class LeaderDied(RuntimeError):
    """The coalesced computation's leader thread died without reporting.

    Raised by followers (each gets its own instance) so they can retry
    or fail cleanly instead of blocking forever on an event no one will
    ever set."""


def _follower_error(original: BaseException) -> BaseException:
    """A per-follower copy of the leader's exception, chained to it.

    Re-raising the *same* instance from N follower threads is a data
    race: each ``raise`` mutates the shared ``__traceback__`` (and
    ``raise ... from`` would overwrite ``__cause__``/``__context__``)
    while other threads are reading it, producing garbled stack traces.
    Each follower therefore raises its own shallow copy — same type,
    args, and attributes — with ``__cause__`` pointing at the leader's
    pristine original, so the true failure site stays in every report.
    An exception that refuses to copy falls back to the shared instance
    (correctness of control flow over cosmetics).
    """
    try:
        clone = copy.copy(original)
    except Exception:
        return original
    if type(clone) is not type(original):
        return original
    clone.__cause__ = original
    clone.__suppress_context__ = True
    clone.__traceback__ = None
    return clone


class _Call:
    __slots__ = ("event", "value", "error", "leader_thread")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException = None  # type: ignore[assignment]
        self.leader_thread: threading.Thread = None  # type: ignore[assignment]


class SingleFlight:
    """Coalesce concurrent calls for the same key into one execution.

    ``poll_interval`` bounds how long a follower can keep waiting on a
    dead leader before noticing (tests shrink it; the default adds no
    overhead to the healthy path — the event wait returns immediately
    when the leader completes).
    """

    def __init__(self, poll_interval: float = 0.1) -> None:
        self._lock = threading.Lock()
        self._calls: Dict[Hashable, _Call] = {}
        self._poll_interval = poll_interval

    def do(self, key: Hashable, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per in-flight ``key``; duplicates share it.

        Returns ``(value, leader)`` where ``leader`` is ``True`` for the
        thread that actually executed ``fn``.  If the leader raised, the
        leader re-raises its own exception and every follower raises a
        per-thread copy of it, chained via ``__cause__`` to the leader's
        original (see :func:`_follower_error`).  If the leader *died*
        without completing, followers raise :class:`LeaderDied`.
        """
        with self._lock:
            call = self._calls.get(key)
            if call is not None and self._stale(call):
                # a previous leader died before completing: wake anyone
                # still parked on it and start over with a fresh flight
                call.error = LeaderDied(
                    f"single-flight leader for key {key!r} died "
                    "without completing"
                )
                del self._calls[key]
                call.event.set()
                call = None
            if call is None:
                call = _Call()
                call.leader_thread = threading.current_thread()
                self._calls[key] = call
                leader = True
            else:
                leader = False
        if not leader:
            self._follow(key, call)
            if call.error is not None:
                raise _follower_error(call.error)
            return call.value, False
        try:
            call.value = fn()
        except BaseException as exc:
            call.error = exc
            raise
        finally:
            # drop the key *before* waking followers so a request arriving
            # after completion starts a fresh flight instead of reading a
            # stale one
            with self._lock:
                self._calls.pop(key, None)
            call.event.set()
        return call.value, True

    @staticmethod
    def _stale(call: _Call) -> bool:
        """A call whose leader is dead but whose event never fired."""
        return (
            call.leader_thread is not None
            and not call.leader_thread.is_alive()
            and not call.event.is_set()
        )

    def _follow(self, key: Hashable, call: _Call) -> None:
        """Block until ``call`` completes or its leader provably died."""
        while not call.event.wait(self._poll_interval):
            if not self._stale(call):
                continue
            # one more slice: the leader may have completed between the
            # liveness check and here (set() runs in its finally block,
            # which a dying thread still executes)
            if call.event.wait(self._poll_interval):
                return
            with self._lock:
                if self._calls.get(key) is call:
                    del self._calls[key]
            if call.event.is_set():
                return
            if call.error is None:
                call.error = LeaderDied(
                    f"single-flight leader for key {key!r} died "
                    "without completing"
                )
            call.event.set()  # wake the other followers too
            return

    def in_flight(self) -> int:
        """Number of distinct keys currently being computed."""
        with self._lock:
            return len(self._calls)
