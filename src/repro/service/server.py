"""The query daemon: a threaded HTTP server around :class:`ReproService`.

Layering::

    _ServiceHTTPServer / _Handler   transport: HTTP, ND-JSON bodies
    ReproService                    ops, caches, coalescing, budgets, obs
    repro.densest_subgraph & co     the actual computations

:class:`ReproService` is transport-free — tests drive
:meth:`ReproService.handle_request` directly under a thread pool — and
the HTTP layer contains no logic beyond framing and status mapping.

Composition with the cross-cutting layers:

* **budgets** — each request's ``timeout_s``/``max_iterations`` becomes
  a private :class:`~repro.resilience.RunBudget`; exhaustion degrades to
  the same code-3/code-4 outcomes as the CLI.  :meth:`ReproService.drain`
  cancels every in-flight budget, so active queries return best-so-far
  :class:`~repro.results.PartialResult`\\ s instead of being dropped.
* **observability** — every request gets a correlation id at ingress
  (client-supplied ``request_id`` or a fresh one), echoed in the
  response envelope, stamped on trace events, and carried into pool
  workers.  Each request runs under its own
  :class:`~repro.obs.MetricsRecorder`; completed request snapshots are
  folded into one server-wide recorder (per-endpoint request counters
  and cold/warm latency histograms, cache hit/miss/eviction counters,
  queue-depth gauge), optionally mirrored to a ``--trace`` JSONL sink.
  ``GET /metrics`` renders the server-wide recorder in the Prometheus
  text format; ``--access-log`` appends one JSON line per request.
* **parallelism** — ``--workers`` becomes the
  :class:`~repro.parallel.ParallelConfig` used for cold index builds and
  path sweeps.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import signal
import sys
import threading
import time
import uuid
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from .. import densest_subgraph
from ..core import SCTIndex
from ..core.profile import density_profile
from ..core.update import compute_update
from ..datasets import load_dataset
from ..errors import (
    BudgetExhausted,
    CircuitOpenError,
    DatasetError,
    InvalidParameterError,
    ReproError,
)
from ..graph import read_edge_list
from ..graph.stats import summarize
from ..obs import MetricsRecorder, render_exposition
from ..options import RunOptions
from ..registry import get_method, methods_supporting
from ..resilience import NULL_BUDGET, RunBudget
from ..resilience.overload import AdmissionController, CircuitBreaker
from ..results import PROFILE_SCHEMA, STATS_SCHEMA, PartialResult
from .cache import LRUCache
from .hashring import key_string
from .protocol import (
    SERVICE_STATS_SCHEMA,
    envelope,
    error_envelope,
    parse_request,
    stamp_topology,
)
from .singleflight import SingleFlight

__all__ = ["ServiceConfig", "ReproService", "serve_forever"]

# response codes mirror the CLI exit codes (see repro.cli); 5 is
# service-only: rejected by admission control, never started (HTTP 429)
CODE_OK = 0
CODE_ERROR = 1
CODE_BAD_REQUEST = 2
CODE_EXHAUSTED = 3
CODE_PARTIAL = 4
CODE_REJECTED = 5

# endpoint classes for admission control: cold index builds queue
# separately from (usually warm) queries, and index updates get their
# own class so a burst of writes cannot starve reads (or vice versa);
# stats stays ungated so operators can always observe an overloaded
# server
_ADMISSION_CLASS = {
    "query": "query",
    "build": "cold",
    "profile": "cold",
    "update": "update",
}

# Retry-After clamp: never tell a client "0" (thundering retry) and
# never push it out more than two minutes
_RETRY_AFTER_MIN_S = 0.1
_RETRY_AFTER_MAX_S = 120.0
_RETRY_AFTER_DEFAULT_S = 1.0


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one daemon instance (see ``docs/service.md``)."""

    host: str = "127.0.0.1"
    port: int = 8642
    cache_size: int = 4
    result_cache_size: int = 128
    default_timeout_s: Optional[float] = None
    workers: Optional[int] = None
    trace_path: Optional[str] = None
    # directory for the on-disk index tier (v2 files, loaded via mmap on
    # cold start instead of rebuilding); None disables it
    index_dir: Optional[str] = None
    # structured JSON access log (one object per request); None disables
    access_log_path: Optional[str] = None
    # admission control: at most max_concurrent requests per endpoint
    # class run at once, at most max_queue more wait; beyond that the
    # server rejects with 429 + Retry-After.  None disables the gates.
    max_concurrent: Optional[int] = None
    max_queue: int = 16
    # circuit breaker per index cache key: open after this many
    # consecutive failures, half-open probe after the cooldown
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 30.0
    # fleet identity: when set (serve --role worker --worker-id w3) every
    # response envelope is stamped served_by=<id> (schema repro/service-v1.1)
    # and /v1/stats reports it, so the router and clients can attribute
    # responses to workers
    worker_id: Optional[str] = None


class ReproService:
    """Transport-free core of the daemon: ops, caches, coalescing, obs."""

    def __init__(self, config: ServiceConfig, sink=None, access_log=None):
        self.config = config
        if config.index_dir:
            os.makedirs(config.index_dir, exist_ok=True)
        self._indices = LRUCache(config.cache_size)
        self._results = LRUCache(config.result_cache_size)
        self._graphs = LRUCache(max(config.cache_size, 2))
        self._flight = SingleFlight()
        self._recorder = MetricsRecorder(sink=sink)
        self._rec_lock = threading.Lock()
        self._access_log = access_log
        self._access_lock = threading.Lock()
        self._draining = threading.Event()
        self._budgets_lock = threading.Lock()
        self._active_budgets: set = set()
        self._req_lock = threading.Lock()
        self._active_requests = 0
        self._admission = (
            AdmissionController(
                config.max_concurrent, config.max_queue,
                classes=tuple(sorted(set(_ADMISSION_CLASS.values()))),
            )
            if config.max_concurrent is not None else None
        )
        # incremental updates (POST /v1/update): the post-update graph is
        # pinned per graph key — the LRU would reload the *pre-update*
        # edge list from disk on a miss — the monotonic graph_version is
        # stamped into every graph-dependent envelope, and updates for
        # one index key serialise on a per-key lock (two concurrent
        # batches must apply one after the other, never coalesce)
        self._version_lock = threading.Lock()
        self._graph_versions: Dict[Any, int] = {}
        self._updated_graphs: Dict[Any, Any] = {}
        self._update_locks: Dict[Any, threading.Lock] = {}
        # every index key ever materialised, by graph key, so an update
        # can find sibling indices (same graph, other threshold/options)
        # that it must drop from memory and disk
        self._seen_index_keys: Dict[Any, set] = {}
        # per-key demand counters (canonical key string -> requests that
        # named it), exposed in /v1/stats as "key_hits" — the signal the
        # fleet router's hot-key promotion reads
        self._key_hits: Dict[str, int] = {}
        # stale-source startup warnings are emitted once per key
        self._stale_warned: set = set()
        self._breakers: Dict[Any, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        # pre-seed the overload counters so every stats payload carries
        # them (repro.obs.validate requires their presence)
        self._recorder.counter("service/rejected", 0)
        self._recorder.counter("parallel/worker_crashes", 0)
        self._started = time.monotonic()

    # -- server-wide observability (the recorder is not thread-safe) ----

    def _count(self, name: str, amount: int = 1) -> None:
        with self._rec_lock:
            self._recorder.counter(name, amount)

    def _gauge(self, name: str, value: Any) -> None:
        with self._rec_lock:
            self._recorder.gauge(name, value)

    def _observe(self, name: str, value: float) -> None:
        with self._rec_lock:
            self._recorder.observe(name, value)

    def _absorb(self, recorder: MetricsRecorder, prefix: str) -> None:
        snapshot = recorder.snapshot()
        with self._rec_lock:
            self._recorder.absorb(snapshot, prefix=prefix)
            # crash-recovery counters also aggregate unprefixed so the
            # overload story reads off one stable name per metric
            for name in (
                "parallel/worker_crashes",
                "parallel/pool_rebuilds",
                "parallel/serial_fallback",
            ):
                count = snapshot.get("counters", {}).get(name)
                if count:
                    self._recorder.counter(name, count)

    def metrics_text(self) -> str:
        """The server-wide recorder as a Prometheus text exposition."""
        with self._rec_lock:
            snapshot = self._recorder.snapshot()
        return render_exposition(snapshot)

    def _log_access(
        self, op: Any, rid: str, code: int, duration_s: float, temp: str
    ) -> None:
        if self._access_log is None:
            return
        entry = {
            "ts": time.time(),
            "op": op if isinstance(op, str) else "",
            "request_id": rid,
            "code": code,
            "duration_s": duration_s,
            "temp": temp,
        }
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._access_lock:
            self._access_log.write(line)
            self._access_log.flush()

    # -- lifecycle ------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self) -> None:
        """Stop accepting work and cancel every in-flight budget.

        Active requests observe the cancellation at their next budget
        poll and respond with their best-so-far partial result; requests
        arriving afterwards are refused (HTTP 503).
        """
        self._draining.set()
        with self._budgets_lock:
            budgets = list(self._active_budgets)
        for budget in budgets:
            budget.cancel("cancelled")

    @property
    def admission_saturated(self) -> bool:
        """Any endpoint class full with a full queue (``/readyz`` → 503)."""
        return self._admission is not None and self._admission.saturated

    # -- overload protection --------------------------------------------

    def _latency_quantile(self, op: str, q: float) -> Optional[float]:
        """Quantile of the op's *cold* latency histogram (None if empty)."""
        with self._rec_lock:
            return self._recorder.quantile(f"service/latency/{op}/cold", q)

    def _retry_after(self, op: str) -> float:
        """The Retry-After hint for a rejected ``op`` request.

        p95 of the op's cold latency histogram — roughly "one slow
        request from now a slot should be free" — clamped to a sane
        range, with a 1s default before any latency has been observed.
        """
        p95 = self._latency_quantile(op, 0.95)
        if p95 is None:
            return _RETRY_AFTER_DEFAULT_S
        return round(
            min(_RETRY_AFTER_MAX_S, max(_RETRY_AFTER_MIN_S, p95)), 3
        )

    def _reject(
        self, op: str, code: int, reason: str, message: str
    ) -> Dict[str, Any]:
        retry_after = self._retry_after(op)
        self._count("service/rejected")
        self._count(f"service/rejected/{reason}")
        self._observe("service/retry_after_s", retry_after)
        return error_envelope(
            op, code, message, rejected=True, retry_after_s=retry_after
        )

    def _admit(self, op: str, obj: Dict[str, Any]):
        """Pass the request through its class's admission gate.

        Returns ``(rejection_envelope, gate)`` — exactly one is not
        ``None``; an admitted request must ``gate.release()`` when done.
        Before queueing, doomed work is rejected outright: if the
        request's own ``timeout_s`` cannot cover the estimated queue
        wait (queue depth × observed p50 cold latency), admitting it
        would only burn a slot on a guaranteed code-3 response.
        """
        gate = self._admission.gate(_ADMISSION_CLASS[op])
        timeout_s = obj.get("timeout_s", self.config.default_timeout_s)
        if timeout_s is not None and gate.active >= gate.max_concurrent:
            p50 = self._latency_quantile(op, 0.50)
            if p50 is not None:
                est_wait = p50 * math.ceil(
                    (gate.waiting + 1) / gate.max_concurrent
                )
                if timeout_s < est_wait:
                    return self._reject(
                        op, CODE_EXHAUSTED, "doomed",
                        f"timeout_s={timeout_s:g} cannot be met: estimated "
                        f"queue wait {est_wait:.3f}s at current depth "
                        f"(observed p50 {p50:.3f}s)",
                    ), None
        decision = gate.try_acquire(wait_timeout_s=timeout_s)
        if decision.admitted:
            if decision.waited_s:
                self._observe("service/admission_wait_s", decision.waited_s)
            return None, gate
        if decision.reason == "queue_full":
            return self._reject(
                op, CODE_REJECTED, "queue_full",
                f"server overloaded: {gate.max_concurrent} running and "
                f"{decision.queue_depth} queued for class "
                f"{_ADMISSION_CLASS[op]!r}",
            ), None
        return self._reject(
            op, CODE_EXHAUSTED, "wait_timeout",
            f"timed out after {decision.waited_s:.3f}s in the admission "
            "queue before a slot freed",
        ), None

    def _breaker_for(self, index_key) -> CircuitBreaker:
        with self._breaker_lock:
            breaker = self._breakers.get(index_key)
            if breaker is None:
                breaker = CircuitBreaker(
                    threshold=self.config.breaker_threshold,
                    cooldown_s=self.config.breaker_cooldown_s,
                )
                self._breakers[index_key] = breaker
            return breaker

    def _note_breaker(self, index_key, breaker: CircuitBreaker) -> None:
        """Mirror a breaker's state into the metrics (gauge per key)."""
        digest = hashlib.sha256(
            json.dumps(index_key, sort_keys=True, default=list).encode()
        ).hexdigest()[:12]
        self._gauge(f"breaker/state/{digest}", breaker.state)

    def _breaker_snapshot(self) -> Dict[str, Any]:
        with self._breaker_lock:
            items = list(self._breakers.items())
        return {
            "/".join(str(part) for part in key[0]) + f"@{key[1]}":
                breaker.snapshot()
            for key, breaker in items
        }

    # -- request plumbing -----------------------------------------------

    def _budget_for(self, obj: Dict[str, Any]):
        timeout_s = obj.get("timeout_s", self.config.default_timeout_s)
        max_iterations = obj.get("max_iterations")
        if timeout_s is None and max_iterations is None:
            return NULL_BUDGET
        return RunBudget(
            wall_seconds=timeout_s, max_iterations=max_iterations
        )

    def _track_budget(self, budget):
        if budget is NULL_BUDGET:
            return
        with self._budgets_lock:
            self._active_budgets.add(budget)

    def _untrack_budget(self, budget) -> None:
        if budget is NULL_BUDGET:
            return
        with self._budgets_lock:
            self._active_budgets.discard(budget)

    def _options_for(self, recorder: MetricsRecorder, budget) -> RunOptions:
        return RunOptions(
            recorder=recorder, budget=budget, parallel=self.config.workers
        )

    def _graph_for(self, obj: Dict[str, Any]) -> Tuple[Tuple[str, str], Any]:
        dataset = obj.get("dataset")
        path = obj.get("path")
        if (dataset is None) == (path is None):
            raise InvalidParameterError(
                "exactly one of 'dataset' or 'path' is required"
            )
        key = ("dataset", dataset) if dataset else ("path", path)
        with self._version_lock:
            pinned = self._updated_graphs.get(key)
        if pinned is not None:
            return key, pinned
        graph = self._graphs.get(key)
        if graph is not None:
            return key, graph

        def load():
            if dataset is not None:
                return load_dataset(dataset)
            return read_edge_list(path)

        graph, leader = self._flight.do(("graph", key), load)
        if leader:
            self._graphs.put(key, graph)
        return key, graph

    @staticmethod
    def _index_key(graph_key, obj: Dict[str, Any]):
        threshold = int(obj.get("threshold", 0))
        build_options = obj.get("build_options") or {}
        if not isinstance(build_options, dict):
            raise InvalidParameterError(
                "build_options must be a JSON object when given"
            )
        fingerprint = json.dumps(build_options, sort_keys=True)
        return (graph_key, threshold, fingerprint)

    def _graph_version(self, graph_key) -> int:
        """The graph's monotonic version (0 until its first update)."""
        with self._version_lock:
            return self._graph_versions.get(graph_key, 0)

    def _note_key_demand(self, index_key) -> None:
        """Count one request against ``index_key``'s demand counter.

        Counted per *request that named the key* — result-cache hits
        included — because that is the signal a router needs for warm-
        replica promotion: what clients are asking for, not what the
        index cache happened to miss.
        """
        canonical = key_string(index_key)
        with self._version_lock:
            self._key_hits[canonical] = self._key_hits.get(canonical, 0) + 1

    def _update_lock(self, index_key) -> threading.Lock:
        with self._version_lock:
            lock = self._update_locks.get(index_key)
            if lock is None:
                lock = threading.Lock()
                self._update_locks[index_key] = lock
            return lock

    def _index_disk_path(self, index_key) -> Optional[str]:
        """Where ``index_key``'s v2 index file lives on disk (or None)."""
        if not self.config.index_dir:
            return None
        digest = hashlib.sha256(
            json.dumps(index_key, sort_keys=True, default=list).encode("utf-8")
        ).hexdigest()
        return os.path.join(self.config.index_dir, f"{digest}.sct2")

    def _index_meta_path(self, disk_path: str) -> str:
        """Sidecar JSON next to a ``.sct2`` recording its graph_version."""
        return disk_path + ".meta.json"

    def _store_index_meta(self, disk_path: str, graph_version: int) -> None:
        """Persist the patched index's graph_version next to the file.

        Best-effort (the index itself is the asset); written via the
        same tmp + rename dance so a crash never leaves a torn sidecar.
        """
        meta_path = self._index_meta_path(disk_path)
        tmp = meta_path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"graph_version": graph_version}, handle)
            os.replace(tmp, meta_path)
        except OSError:
            self._count("service/index_cache/disk_store_error")

    def _check_stale_source(self, index_key, disk_path: str) -> None:
        """Warn when a patched on-disk index meets a freshly loaded source.

        The PR 9 restart caveat at fleet scale: a worker cold-starting
        with ``--index-dir`` mmaps back an index that incremental
        updates patched (persisted ``graph_version`` > 0), while the
        graph itself reloads from the *original* edge-list source — the
        two have diverged, and at fleet scale this happens per worker,
        silently.  Emit a structured warning (op=``startup``) and bump
        ``service/index_cache/stale_source`` so operators can see the
        divergence on every worker's ``/metrics``; warn once per key.
        """
        if index_key in self._stale_warned:
            return
        meta_path = self._index_meta_path(disk_path)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return  # no sidecar: the file was never patched
        persisted = meta.get("graph_version")
        if not isinstance(persisted, int) or persisted <= 0:
            return
        graph_key = index_key[0]
        if self._graph_version(graph_key) > 0:
            return  # this process applied updates itself; no divergence
        self._stale_warned.add(index_key)
        self._count("service/index_cache/stale_source")
        warning = {
            "op": "startup",
            "warning": "stale_source",
            "graph": list(graph_key),
            "threshold": index_key[1],
            "persisted_graph_version": persisted,
            "detail": (
                "patched .sct2 loaded from disk but the edge-list source "
                "is being reloaded from its original file; the index and "
                "the graph have diverged (see docs/service.md, restart "
                "caveat)"
            ),
        }
        if self.config.worker_id:
            warning["worker_id"] = self.config.worker_id
        print(json.dumps(warning, sort_keys=True), file=sys.stderr, flush=True)
        with self._rec_lock:
            self._recorder.event("startup/stale_source", **warning)

    def _quarantine(self, disk_path: str, exc: BaseException) -> None:
        """Move a corrupt ``.sct2`` file into ``index_dir/quarantine/``.

        The next hit rebuilds instead of re-erroring, and the bad bytes
        stay on disk for a post-mortem.  A file that cannot be moved is
        left in place (the load path already tolerates it).
        """
        qdir = os.path.join(self.config.index_dir, "quarantine")
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(
                disk_path, os.path.join(qdir, os.path.basename(disk_path))
            )
        except OSError:
            self._count("service/index_cache/quarantine_error")
            return
        self._count("service/index_cache/quarantined")

    def _get_index(
        self, index_key, graph, recorder: MetricsRecorder, budget
    ) -> Tuple[SCTIndex, bool]:
        """The cached index for ``index_key``, building it on a miss.

        Returns ``(index, was_cached)``.  Concurrent misses for the same
        key coalesce into one build; the first requester's budget governs
        it (followers inherit the shared outcome, including a
        :class:`~repro.errors.BudgetExhausted`).

        With ``index_dir`` configured there is a disk tier between the
        in-memory LRU and a rebuild: a cold start finds the key's v2
        file and memory-maps it (column views, no parsing — load time is
        independent of index size), and every fresh build is persisted
        for the next process.  A corrupt or unreadable file is moved to
        ``index_dir/quarantine/`` and rebuilt — one bad byte must not
        error on every hit, and the evidence stays inspectable; a failed
        store is logged and ignored (the index itself is fine).

        A per-key :class:`~repro.resilience.CircuitBreaker` wraps the
        whole load-or-build: after ``breaker_threshold`` consecutive
        failures the key fast-fails with
        :class:`~repro.errors.CircuitOpenError` (HTTP 503 +
        Retry-After) until a half-open probe succeeds.  Budget
        exhaustion and bad-request errors do not count as failures.
        """
        with self._version_lock:
            self._seen_index_keys.setdefault(index_key[0], set()).add(
                index_key
            )
        index = self._indices.get(index_key)
        if index is not None:
            self._count("service/index_cache/hit")
            return index, True
        self._count("service/index_cache/miss")
        breaker = self._breaker_for(index_key)
        if not breaker.allow():
            self._count("service/breaker/fast_fail")
            raise CircuitOpenError(
                "circuit open for this index key after repeated failures "
                f"(last: {breaker.last_error!r})",
                retry_after_s=round(breaker.retry_after_s, 3),
                last_error=breaker.last_error,
            )
        threshold = index_key[1]
        disk_path = self._index_disk_path(index_key)

        def load_or_build_inner():
            if disk_path is not None and os.path.exists(disk_path):
                try:
                    index = SCTIndex.load(disk_path)
                except (ReproError, OSError) as exc:
                    self._count("service/index_cache/disk_error")
                    self._quarantine(disk_path, exc)
                    index = None  # fall through to a rebuild
                else:
                    self._count("service/index_cache/disk_hit")
                    self._check_stale_source(index_key, disk_path)
                    return index
            self._count("service/index_builds")
            index = SCTIndex.build(
                graph,
                threshold=threshold,
                options=self._options_for(recorder, budget),
            )
            if disk_path is not None:
                try:
                    index.save(disk_path)
                except OSError:
                    self._count("service/index_cache/disk_store_error")
                else:
                    self._count("service/index_cache/disk_store")
            return index

        def load_or_build():
            # breaker bookkeeping runs in the flight leader only, so N
            # coalesced requests record exactly one outcome
            try:
                index = load_or_build_inner()
            except (BudgetExhausted, InvalidParameterError, DatasetError):
                # not the infrastructure's fault: neither a success nor a
                # failure, but a half-open probe slot must be returned
                breaker.release_probe()
                raise
            except Exception as exc:
                breaker.record_failure(exc)
                self._note_breaker(index_key, breaker)
                raise
            breaker.record_success()
            return index

        index, leader = self._flight.do(("index", index_key), load_or_build)
        if leader:
            evicted = self._indices.put(index_key, index)
            if evicted:
                self._count("service/index_cache/evictions", len(evicted))
        else:
            self._count("service/coalesced_builds")
        return index, False

    # -- ops ------------------------------------------------------------

    def _op_query(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        t0 = time.perf_counter()
        if "k" not in obj:
            raise InvalidParameterError("query requires 'k'")
        k = int(obj["k"])
        spec = get_method(obj.get("method", "sctl*"))
        iterations = int(obj.get("iterations", 10))
        sample_size = obj.get("sample_size")
        if sample_size is not None:
            sample_size = int(sample_size)
        seed = int(obj.get("seed", 0))
        include_stats = bool(obj.get("include_stats", False))
        graph_key, graph = self._graph_for(obj)
        index_key = self._index_key(graph_key, obj)
        self._note_key_demand(index_key)
        result_key = (
            "query", index_key, k, spec.name, iterations, sample_size, seed
        )

        cached = self._results.get(result_key)
        if cached is not None:
            result, computed_at = cached
            self._count("service/result_cache/hit")
            obj["_temp"] = "warm"
            return self._query_envelope(
                result, include_stats, cached=True, coalesced=False,
                query_time_s=time.perf_counter() - t0,
                graph_version=computed_at,
            )
        self._count("service/result_cache/miss")
        version = self._graph_version(graph_key)

        budget = self._budget_for(obj)
        self._track_budget(budget)
        try:
            def compute():
                self._count("service/computations")
                recorder = MetricsRecorder(
                    request_id=obj.get("_request_id")
                )
                try:
                    try:
                        index, _ = self._get_index(
                            index_key, graph, recorder, budget
                        )
                    except BudgetExhausted as exc:
                        return PartialResult(
                            vertices=[], clique_count=0, k=k,
                            algorithm=spec.name, valid=False,
                            reason=exc.reason,
                            stage=exc.stage or "index/build",
                        )
                    try:
                        return densest_subgraph(
                            graph, k, method=spec.name,
                            iterations=iterations, index=index,
                            sample_size=sample_size, seed=seed,
                            options=self._options_for(recorder, budget),
                        )
                    except (InvalidParameterError, DatasetError):
                        raise  # caller's fault; breaker unaffected
                    except Exception as exc:
                        # a query-phase failure on a good index counts
                        # toward the same per-key breaker as build failures
                        breaker = self._breaker_for(index_key)
                        breaker.record_failure(exc)
                        self._note_breaker(index_key, breaker)
                        raise
                finally:
                    self._absorb(recorder, prefix="req/query")

            result, leader = self._flight.do(result_key, compute)
        finally:
            self._untrack_budget(budget)
        # cold means this request led a fresh computation; coalesced
        # followers rode a leader's work, so their latency is warm-ish
        obj["_temp"] = "cold" if leader else "warm"
        if not leader:
            self._count("service/coalesced")
        elif not result.is_partial:
            # partials are never cached: a later client with a larger
            # budget deserves a fresh, complete computation.  An update
            # that committed while we computed already swept the result
            # cache, so a result stamped with a superseded version must
            # not slip in behind it.
            if self._graph_version(graph_key) == version:
                self._results.put(result_key, (result, version))
        return self._query_envelope(
            result, include_stats, cached=False, coalesced=not leader,
            query_time_s=time.perf_counter() - t0,
            graph_version=version,
        )

    @staticmethod
    def _query_envelope(
        result, include_stats: bool, cached: bool, coalesced: bool,
        query_time_s: float, graph_version: int = 0,
    ) -> Dict[str, Any]:
        if result.is_partial:
            code = CODE_PARTIAL if result.valid else CODE_EXHAUSTED
        else:
            code = CODE_OK
        return envelope(
            "query", code,
            result=result.to_dict(include_stats=include_stats),
            cached=cached, coalesced=coalesced,
            query_time_s=query_time_s,
            graph_version=graph_version,
        )

    def _op_update(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Apply an edge batch to the graph and its index, incrementally.

        The request names the graph and index like ``query`` does, plus
        ``inserts``/``deletes`` edge lists.  On success the new index is
        byte-identical to a from-scratch rebuild over the updated edge
        set, but only the dirty root subtrees were recomputed; commit
        swaps the caches, patches the disk tier atomically, bumps the
        graph's version, and invalidates exactly the result-cache
        entries whose subgraph intersects the dirty region.  A budget
        that expires mid-update is a *valid partial* (code 4): nothing
        was applied, the previous index keeps serving unchanged.
        """
        t0 = time.perf_counter()
        inserts = obj.get("inserts") or []
        deletes = obj.get("deletes") or []
        if not isinstance(inserts, list) or not isinstance(deletes, list):
            raise InvalidParameterError(
                "'inserts' and 'deletes' must be lists of [u, v] pairs"
            )
        if not inserts and not deletes:
            raise InvalidParameterError(
                "update requires at least one edge in 'inserts' or "
                "'deletes'"
            )
        method = obj.get("method")
        if method is not None:
            spec = get_method(method)
            if not spec.supports_update:
                raise InvalidParameterError(
                    f"method {spec.name!r} does not support incremental "
                    "updates; methods that do: "
                    + ", ".join(methods_supporting("update"))
                )
        graph_key, _ = self._graph_for(obj)
        index_key = self._index_key(graph_key, obj)
        obj["_temp"] = "cold"
        budget = self._budget_for(obj)
        self._track_budget(budget)
        recorder = MetricsRecorder(request_id=obj.get("_request_id"))
        try:
            with self._update_lock(index_key):
                # re-resolve inside the lock: a batch that just committed
                # swapped the pinned graph this one must build on
                _, graph = self._graph_for(obj)
                index, _ = self._get_index(index_key, graph, recorder, budget)
                try:
                    region = compute_update(
                        index, graph, inserts, deletes,
                        options=RunOptions(recorder=recorder, budget=budget),
                    )
                except BudgetExhausted as exc:
                    self._count("service/index_updates/exhausted")
                    return envelope(
                        "update", CODE_PARTIAL,
                        applied=False,
                        reason=exc.reason,
                        graph_version=self._graph_version(graph_key),
                        update_time_s=round(time.perf_counter() - t0, 6),
                    )
                version, invalidated, retained, siblings = (
                    self._commit_update(graph_key, index_key, region)
                )
        finally:
            self._untrack_budget(budget)
            self._absorb(recorder, prefix="req/update")
        self._count("service/index_updates")
        return envelope(
            "update", CODE_OK,
            applied=True,
            update=region.summary(),
            graph_version=version,
            invalidated_results=invalidated,
            retained_results=retained,
            evicted_sibling_indices=siblings,
            update_time_s=round(time.perf_counter() - t0, 6),
        )

    def _commit_update(self, graph_key, index_key, region):
        """Make an applied update visible everywhere; returns the stamps.

        Order matters: the pinned graph and version move together under
        the version lock, the index cache entry is swapped before any
        result is invalidated, and the disk tier is patched last through
        the atomic writer — a crash at any point leaves the previous
        ``.sct2`` file intact and readable.
        """
        with self._version_lock:
            version = self._graph_versions.get(graph_key, 0) + 1
            self._graph_versions[graph_key] = version
            self._updated_graphs[graph_key] = region.graph
            siblings = [
                key for key in self._seen_index_keys.get(graph_key, ())
                if key != index_key
            ]
        self._graphs.put(graph_key, region.graph)
        self._indices.put(index_key, region.index)
        # fine-grained invalidation: only cached results whose subgraph
        # intersects the dirty region can have changed; the rest keep
        # serving, stamped with the version they were computed at
        invalidated = retained = 0
        for key, entry in self._results.items():
            if not (isinstance(key, tuple) and len(key) > 1):
                continue
            if key[1][0] != graph_key:
                continue
            result, _computed_at = entry
            if region.intersects(result.vertices):
                if self._results.pop(key) is not None:
                    invalidated += 1
            else:
                retained += 1
        self._count("service/result_cache/invalidated", invalidated)
        self._count("service/result_cache/retained", retained)
        # sibling indices (same graph, other threshold/build_options)
        # were built against the pre-update edge set: drop them from
        # memory and disk so their next touch rebuilds fresh
        evicted_siblings = 0
        for sibling in siblings:
            if self._indices.pop(sibling) is not None:
                evicted_siblings += 1
            sibling_path = self._index_disk_path(sibling)
            if sibling_path is not None:
                for stale in (
                    sibling_path, self._index_meta_path(sibling_path)
                ):
                    try:
                        os.remove(stale)
                    except OSError:
                        pass
        if evicted_siblings:
            self._count(
                "service/index_cache/sibling_evictions", evicted_siblings
            )
        disk_path = self._index_disk_path(index_key)
        if disk_path is not None:
            try:
                region.index.save(disk_path)
            except OSError:
                self._count("service/index_cache/disk_store_error")
            else:
                self._count("service/index_cache/disk_store")
                # record the patched file's graph_version so a cold
                # restart can detect (and warn about) index-vs-source
                # divergence instead of serving it silently
                self._store_index_meta(disk_path, version)
        return version, invalidated, retained, evicted_siblings

    def _op_build(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        t0 = time.perf_counter()
        graph_key, graph = self._graph_for(obj)
        index_key = self._index_key(graph_key, obj)
        self._note_key_demand(index_key)
        budget = self._budget_for(obj)
        self._track_budget(budget)
        recorder = MetricsRecorder(request_id=obj.get("_request_id"))
        try:
            index, was_cached = self._get_index(
                index_key, graph, recorder, budget
            )
        finally:
            self._untrack_budget(budget)
        obj["_temp"] = "warm" if was_cached else "cold"
        if not was_cached:
            self._absorb(recorder, prefix="req/build")
        return envelope(
            "build", CODE_OK,
            index={
                "n_vertices": index.n_vertices,
                "max_clique_size": index.max_clique_size,
                "tree_nodes": index.n_tree_nodes,
                "threshold": index_key[1],
                "cached": was_cached,
            },
            graph_version=self._graph_version(graph_key),
            build_time_s=time.perf_counter() - t0,
        )

    def _op_profile(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        t0 = time.perf_counter()
        iterations = int(obj.get("iterations", 10))
        graph_key, graph = self._graph_for(obj)
        index_key = self._index_key(graph_key, obj)
        self._note_key_demand(index_key)
        budget = self._budget_for(obj)
        self._track_budget(budget)
        recorder = MetricsRecorder(request_id=obj.get("_request_id"))
        try:
            index, was_cached = self._get_index(
                index_key, graph, recorder, budget
            )
            profile = density_profile(
                index, iterations=iterations,
                options=self._options_for(recorder, budget),
            )
        finally:
            self._untrack_budget(budget)
        obj["_temp"] = "warm" if was_cached else "cold"
        self._absorb(recorder, prefix="req/profile")
        return envelope(
            "profile", CODE_OK,
            profile={
                "schema": PROFILE_SCHEMA,
                "k_max": index.max_clique_size,
                "densest_k": profile.densest_k(),
                "rows": [
                    {
                        "k": k,
                        "size": size,
                        "clique_count": count,
                        "density": density,
                    }
                    for k, size, count, density in profile.as_rows()
                ],
            },
            profile_time_s=time.perf_counter() - t0,
        )

    def _op_stats(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        with self._rec_lock:
            counters = dict(sorted(self._recorder.counters.items()))
            gauges = {
                name: value
                for name, value in sorted(self._recorder.gauges.items())
            }
            histograms = {
                name: hist.summary()
                for name, hist in sorted(self._recorder.histograms.items())
            }
        payload: Dict[str, Any] = {
            "schema": SERVICE_STATS_SCHEMA,
            "uptime_s": time.monotonic() - self._started,
            "draining": self.draining,
            "queue_depth": self._active_requests,
            "in_flight": self._flight.in_flight(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "index_cache": self._indices.stats(),
            "result_cache": self._results.stats(),
            "index_keys": [
                {"graph": list(graph_key), "threshold": threshold}
                for graph_key, threshold, _ in self._indices.keys()
            ],
        }
        with self._version_lock:
            payload["graph_versions"] = {
                "/".join(str(part) for part in graph_key): version
                for graph_key, version in sorted(self._graph_versions.items())
            }
            payload["key_hits"] = dict(sorted(self._key_hits.items()))
        if self.config.worker_id is not None:
            payload["worker_id"] = self.config.worker_id
        if self._admission is not None:
            payload["admission"] = self._admission.snapshot()
        breakers = self._breaker_snapshot()
        if breakers:
            payload["breakers"] = breakers
        if obj.get("dataset") is not None or obj.get("path") is not None:
            _, graph = self._graph_for(obj)
            graph_stats = {"schema": STATS_SCHEMA}
            graph_stats.update(summarize(graph).to_dict())
            payload["graph"] = graph_stats
        return envelope("stats", CODE_OK, stats=payload)

    # -- dispatch -------------------------------------------------------

    _OPS = {
        "query": _op_query,
        "build": _op_build,
        "profile": _op_profile,
        "stats": _op_stats,
        "update": _op_update,
    }

    def handle_request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """One parsed request object in, one response envelope out.

        Never raises: every failure mode maps to an error envelope whose
        ``code`` follows the CLI exit-code convention.  Every response —
        success or error — carries a ``request_id``: the client's own
        (when it sent one) or a fresh id generated here at ingress; the
        same id is stamped on the request's trace events and pool-worker
        snapshots, and on its access-log entry.
        """
        op = obj.get("op")
        rid = obj.get("request_id")
        if not isinstance(rid, str) or not rid:
            rid = uuid.uuid4().hex[:16]
        obj["_request_id"] = rid
        started = time.perf_counter()
        response = self._dispatch(op, obj)
        duration_s = time.perf_counter() - started
        response["request_id"] = rid
        if self.config.worker_id is not None:
            stamp_topology(response, served_by=self.config.worker_id)
        temp = obj.get("_temp", "warm")
        if op in self._OPS and response.get("error") is None:
            self._observe(f"service/latency/{op}/{temp}", duration_s)
        self._log_access(op, rid, response.get("code", 0), duration_s, temp)
        return response

    def _dispatch(self, op, obj: Dict[str, Any]) -> Dict[str, Any]:
        if op not in self._OPS:
            return error_envelope(
                op, CODE_BAD_REQUEST,
                f"unknown op {op!r}; expected one of: "
                + ", ".join(sorted(self._OPS)),
            )
        if self.draining:
            return error_envelope(op, CODE_ERROR, "server is draining")
        self._count(f"service/requests/{op}")
        gate = None
        if self._admission is not None and op in _ADMISSION_CLASS:
            rejection, gate = self._admit(op, obj)
            if rejection is not None:
                obj["_temp"] = "rejected"
                return rejection
        with self._req_lock:
            self._active_requests += 1
            depth = self._active_requests
        self._gauge("service/queue_depth", depth)
        try:
            return self._OPS[op](self, obj)
        except BudgetExhausted as exc:
            return error_envelope(op, CODE_EXHAUSTED, str(exc))
        except CircuitOpenError as exc:
            return error_envelope(
                op, CODE_ERROR, str(exc),
                breaker_open=True, retry_after_s=exc.retry_after_s,
            )
        except (InvalidParameterError, DatasetError) as exc:
            return error_envelope(op, CODE_BAD_REQUEST, str(exc))
        except FileNotFoundError as exc:
            return error_envelope(op, CODE_BAD_REQUEST, str(exc))
        except ReproError as exc:
            return error_envelope(op, CODE_ERROR, str(exc))
        except Exception as exc:  # the daemon must survive anything
            return error_envelope(op, CODE_ERROR, f"internal error: {exc!r}")
        finally:
            if gate is not None:
                gate.release()
            with self._req_lock:
                self._active_requests -= 1
                depth = self._active_requests
            self._gauge("service/queue_depth", depth)

    def handle_line(self, line: str) -> Dict[str, Any]:
        """One raw request line in, one response envelope out."""
        try:
            obj = parse_request(line)
        except InvalidParameterError as exc:
            return error_envelope(None, CODE_BAD_REQUEST, str(exc))
        return self.handle_request(obj)

    def stats_snapshot(self) -> Dict[str, Any]:
        """The ``stats`` payload (convenience for tests and tooling)."""
        return self._op_stats({})["stats"]


# ---------------------------------------------------------------------------
# HTTP transport
# ---------------------------------------------------------------------------

def _status_for(service: ReproService, envelopes) -> Tuple[int, Optional[int]]:
    """HTTP status + optional ``Retry-After`` seconds for a response batch.

    Any rejected envelope wins (429), then any breaker fast-fail (503);
    both carry a ``Retry-After`` header so well-behaved clients back off
    instead of hammering.  Otherwise the worst code decides as before.
    """
    retry_hints = [
        env.get("retry_after_s")
        for env in envelopes
        if isinstance(env.get("retry_after_s"), (int, float))
    ]
    retry_after = (
        max(1, math.ceil(max(retry_hints))) if retry_hints else None
    )
    if any(env.get("rejected") for env in envelopes):
        return 429, retry_after
    if any(env.get("breaker_open") for env in envelopes):
        return 503, retry_after
    code = max((env["code"] for env in envelopes), default=0)
    if code in (CODE_OK, CODE_EXHAUSTED, CODE_PARTIAL):
        return 200, None  # the protocol exchange succeeded; 3/4 are outcomes
    if code == CODE_BAD_REQUEST:
        return 400, None
    if service.draining:
        return 503, None
    return 500, None


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    @property
    def service(self) -> ReproService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # access logging lives in the recorder, not stderr

    def _read_body(self) -> str:
        length = int(self.headers.get("Content-Length", 0))
        return self.rfile.read(length).decode("utf-8") if length else ""

    def _respond(
        self, status: int, body: bytes,
        retry_after: Optional[int] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _respond_envelopes(self, envelopes) -> None:
        body = "".join(
            json.dumps(env) + "\n" for env in envelopes
        ).encode("utf-8")
        status, retry_after = _status_for(self.service, envelopes)
        self._respond(status, body, retry_after=retry_after)

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        body = self._read_body()
        if self.path == "/v1/rpc":
            lines = [line for line in body.splitlines() if line.strip()]
            if not lines:
                env = error_envelope(None, CODE_BAD_REQUEST, "empty request")
                self._respond_envelopes([env])
                return
            self._respond_envelopes(
                [self.service.handle_line(line) for line in lines]
            )
            return
        op = {
            "/v1/query": "query",
            "/v1/build": "build",
            "/v1/profile": "profile",
            "/v1/stats": "stats",
            "/v1/update": "update",
        }.get(self.path)
        if op is None:
            self._respond_envelopes(
                [error_envelope(None, CODE_BAD_REQUEST,
                                f"unknown path {self.path!r}")]
            )
            return
        try:
            obj = json.loads(body or "{}")
        except json.JSONDecodeError as exc:
            self._respond_envelopes(
                [error_envelope(op, CODE_BAD_REQUEST,
                                f"request is not valid JSON: {exc}")]
            )
            return
        if not isinstance(obj, dict):
            self._respond_envelopes(
                [error_envelope(op, CODE_BAD_REQUEST,
                                "request must be a JSON object")]
            )
            return
        obj.setdefault("op", op)  # the path names the op; the body may omit it
        self._respond_envelopes([self.service.handle_request(obj)])

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        if self.path == "/healthz":
            status = 503 if self.service.draining else 200
            payload = {"status": "draining" if self.service.draining else "ok"}
            self._respond(status, (json.dumps(payload) + "\n").encode())
            return
        if self.path == "/readyz":
            # liveness (healthz) answers "is the process up"; readiness
            # answers "should a balancer send traffic here right now" —
            # no while draining, and no while every admission slot and
            # queue position is taken
            draining = self.service.draining
            saturated = self.service.admission_saturated
            ready = not draining and not saturated
            payload = {
                "status": "ok" if ready else (
                    "draining" if draining else "saturated"
                ),
                "draining": draining,
                "admission_saturated": saturated,
            }
            self._respond(
                200 if ready else 503,
                (json.dumps(payload) + "\n").encode(),
            )
            return
        if self.path == "/v1/stats":
            self._respond_envelopes(
                [self.service.handle_request({"op": "stats"})]
            )
            return
        if self.path == "/metrics":
            body = self.service.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._respond_envelopes(
            [error_envelope(None, CODE_BAD_REQUEST,
                            f"unknown path {self.path!r}")]
        )


class _ServiceHTTPServer(ThreadingHTTPServer):
    # join handler threads on server_close so a drain finishes every
    # in-flight response before the process exits
    daemon_threads = False
    block_on_close = True
    # socketserver's default listen backlog is 5; a thundering herd
    # overflows it and the kernel drops the handshake ACK, so the client
    # "connects", sends its request, and eventually sees ECONNRESET
    # without ever reaching us.  Overload decisions belong to the
    # admission gate, which answers with a well-formed 429 envelope —
    # the backlog just has to be deep enough to hand every connection
    # to a handler thread.
    request_queue_size = 128

    def __init__(self, address, service: ReproService):
        self.service = service
        super().__init__(address, _Handler)


def make_server(
    config: ServiceConfig, sink=None, access_log=None
) -> Tuple[_ServiceHTTPServer, ReproService]:
    """Bind a server for ``config`` without entering its accept loop.

    Exposed for tests: bind to port 0, read the real port off
    ``server.server_address``, run ``serve_forever`` in a thread.
    """
    service = ReproService(config, sink=sink, access_log=access_log)
    server = _ServiceHTTPServer((config.host, config.port), service)
    return server, service


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8642,
    cache_size: int = 4,
    result_cache_size: int = 128,
    default_timeout_s: Optional[float] = None,
    workers: Optional[int] = None,
    trace_path: Optional[str] = None,
    index_dir: Optional[str] = None,
    access_log_path: Optional[str] = None,
    max_concurrent: Optional[int] = None,
    max_queue: int = 16,
    worker_id: Optional[str] = None,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the exit code.

    The first signal drains gracefully: in-flight budgets are cancelled
    (their requests respond with best-so-far partials), new requests get
    503, and the accept loop stops once every handler thread finishes.
    """
    config = ServiceConfig(
        host=host, port=port, cache_size=cache_size,
        result_cache_size=result_cache_size,
        default_timeout_s=default_timeout_s, workers=workers,
        trace_path=trace_path, index_dir=index_dir,
        access_log_path=access_log_path,
        max_concurrent=max_concurrent, max_queue=max_queue,
        worker_id=worker_id,
    )
    sink = open(trace_path, "w", encoding="utf-8") if trace_path else None
    access_log = (
        open(access_log_path, "a", encoding="utf-8")
        if access_log_path else None
    )
    try:
        server, service = make_server(config, sink=sink, access_log=access_log)
    except OSError:
        if sink is not None:
            sink.close()
        if access_log is not None:
            access_log.close()
        raise

    def _on_signal(signum, frame):
        print(
            f"signal {signum}: draining, cancelling in-flight budgets",
            file=sys.stderr, flush=True,
        )
        service.drain()
        # shutdown() blocks until the accept loop exits; calling it on
        # this (main) thread would deadlock with serve_forever below
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    actual_port = server.server_address[1]
    print(
        f"repro service listening on http://{config.host}:{actual_port}",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        if sink is not None:
            sink.close()
        if access_log is not None:
            access_log.close()
    print("repro service drained", flush=True)
    return 0
