"""Retrying HTTP client for the query daemon.

The server side of the overload story (admission control, circuit
breakers — see ``docs/robustness.md``) only works if clients cooperate:
a 429 or 503 means *back off and come back*, not *hammer until it
sticks*.  :class:`ServiceClient` encodes that contract once so the CLI
(``repro query --endpoint``), the smoke scripts and the chaos suite all
behave identically:

* retries on 429/503 responses and on connection-level failures
  (connection refused, reset, short read) with **exponential backoff
  plus full jitter**, capped per attempt;
* honours a ``Retry-After`` header when the server sends one — the
  server computes it from its latency histograms, which beats any guess
  the client could make;
* never retries 4xx other than 429 (the request itself is wrong) and
  never retries a response that parsed into a well-formed envelope with
  a non-rejected code — budget exhaustion (code 3/4) is an *outcome*,
  not an availability problem;
* retries **idempotent-safe ops only** across connection failures:
  ``update`` mutates the graph, and a connection that died mid-exchange
  may have died *after* the server applied the batch, so replaying it
  blind would double-apply; a 429/503 *response*, by contrast, proves
  the update was rejected before it started and is always safe to retry;
* raises :class:`~repro.errors.ServiceUnavailable` carrying the final
  status and attempt count once retries are exhausted.

The op helpers return typed **outcomes** — thin ``dict`` subclasses of
the decoded envelope (so raw access, ``json.dumps`` and equality keep
working) with properties for the fields that matter:
:class:`QueryOutcome.result` decodes the embedded payload into a
:class:`~repro.results.DenseSubgraphResult`,
:class:`UpdateOutcome.applied` answers "did the batch commit", and every
outcome exposes ``.ok`` / ``.code`` / ``.error`` / ``.request_id`` /
``.graph_version``.  :meth:`ServiceClient.rpc` is the raw escape hatch
for ops (or fields) this client has no helper for.

Stdlib-only (:mod:`urllib.request`); injectable ``sleep`` and ``rng``
keep the tests instant and deterministic.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ServiceUnavailable
from ..results import DenseSubgraphResult

__all__ = [
    "ServiceClient",
    "ServiceOutcome",
    "QueryOutcome",
    "ProfileOutcome",
    "UpdateOutcome",
]

# statuses worth retrying: the request was fine, the server was not ready
_RETRYABLE_STATUSES = (429, 503)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Decode a ``Retry-After`` header (delta-seconds form only)."""
    if not value:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None  # HTTP-date form: not worth a date parser here
    return seconds if seconds >= 0 else None


class ServiceOutcome(dict):
    """A decoded ``repro/service-v1`` envelope with typed accessors.

    Subclassing ``dict`` keeps every raw-envelope idiom working —
    ``outcome["code"]``, ``outcome.get("error")``, ``json.dumps`` — so
    the typed surface is additive, not a migration.
    """

    @property
    def code(self) -> int:
        return int(self.get("code", 1))

    @property
    def ok(self) -> bool:
        """Code 0 and no error: the op fully succeeded."""
        return self.code == 0 and not self.get("error")

    @property
    def error(self) -> Optional[str]:
        return self.get("error")

    @property
    def request_id(self) -> Optional[str]:
        return self.get("request_id")

    @property
    def graph_version(self) -> Optional[int]:
        """The graph version this response was computed against."""
        return self.get("graph_version")

    @property
    def rejected(self) -> bool:
        """Refused by admission control before any work started."""
        return bool(self.get("rejected"))

    @property
    def retry_after_s(self) -> Optional[float]:
        return self.get("retry_after_s")


class QueryOutcome(ServiceOutcome):
    """Outcome of :meth:`ServiceClient.query`."""

    @property
    def result(self) -> Optional[DenseSubgraphResult]:
        """The embedded ``repro/result-v1`` payload, decoded (or None)."""
        payload = self.get("result")
        if payload is None:
            return None
        return DenseSubgraphResult.from_dict(payload)

    @property
    def cached(self) -> bool:
        return bool(self.get("cached"))

    @property
    def coalesced(self) -> bool:
        return bool(self.get("coalesced"))

    @property
    def query_time_s(self) -> Optional[float]:
        return self.get("query_time_s")


class ProfileOutcome(ServiceOutcome):
    """Outcome of :meth:`ServiceClient.profile`."""

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """One ``{k, size, clique_count, density}`` row per clique size."""
        return list((self.get("profile") or {}).get("rows") or ())

    @property
    def densest_k(self) -> Optional[int]:
        return (self.get("profile") or {}).get("densest_k")


class UpdateOutcome(ServiceOutcome):
    """Outcome of :meth:`ServiceClient.update`."""

    @property
    def applied(self) -> bool:
        """Whether the edge batch committed (False on a code-4 partial)."""
        return bool(self.get("applied"))

    @property
    def update(self) -> Dict[str, Any]:
        """The dirty-region digest (``DirtyRegion.summary()`` fields)."""
        return dict(self.get("update") or {})

    @property
    def invalidated_results(self) -> int:
        return int(self.get("invalidated_results", 0))

    @property
    def retained_results(self) -> int:
        return int(self.get("retained_results", 0))


class ServiceClient:
    """A small, polite client for one daemon endpoint.

    ``endpoint`` is the base URL (``http://127.0.0.1:8642``); the op
    helpers POST to the ``/v1/<op>`` routes and return the decoded
    ``repro/service-v1`` envelope.  Construction is cheap and the client
    is stateless between calls, so sharing one across threads is fine.
    """

    def __init__(
        self,
        endpoint: str,
        timeout_s: float = 30.0,
        max_retries: int = 5,
        backoff_base_s: float = 0.25,
        backoff_max_s: float = 10.0,
        jitter: float = 0.1,
        sleep=time.sleep,
        rng: Optional[random.Random] = None,
    ):
        self.endpoint = endpoint.rstrip("/")
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.jitter = jitter
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    # -- wire level -----------------------------------------------------

    def _once(
        self, path: str, body: Optional[bytes]
    ) -> Tuple[int, Optional[str], bytes]:
        """One HTTP exchange: ``(status, retry_after_header, body)``.

        Raises ``OSError`` (including ``URLError``) on connection-level
        failure; HTTP error statuses are returned, not raised.
        """
        request = urllib.request.Request(
            self.endpoint + path,
            data=body,
            method="POST" if body is not None else "GET",
            headers={"Content-Type": "application/x-ndjson"}
            if body is not None else {},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return (
                    response.status,
                    response.headers.get("Retry-After"),
                    response.read(),
                )
        except urllib.error.HTTPError as exc:
            # an error status with a readable body is still an exchange
            with exc:
                return exc.code, exc.headers.get("Retry-After"), exc.read()

    def _backoff(self, attempt: int, retry_after: Optional[str]) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        hinted = _parse_retry_after(retry_after)
        if hinted is not None:
            base = min(hinted, self.backoff_max_s)
        else:
            base = min(
                self.backoff_max_s,
                self.backoff_base_s * (2 ** (attempt - 1)),
            )
        # full jitter on top, so a herd of rejected clients spreads out
        return base + self._rng.uniform(0, self.jitter * base)

    def _exchange(
        self, path: str, body: Optional[bytes],
        retry_connection_errors: bool = True,
    ) -> Tuple[int, bytes]:
        """POST/GET with retries; returns ``(status, body)`` on success.

        Success means any status outside :data:`_RETRYABLE_STATUSES`
        reached after at most ``max_retries`` retries.  With
        ``retry_connection_errors=False`` a connection-level failure
        raises immediately: the exchange may have reached the server
        before dying, so a non-idempotent op must not be replayed.
        """
        attempts = 0
        last_status: Optional[int] = None
        last_error: Optional[BaseException] = None
        retry_after: Optional[str] = None
        while attempts <= self.max_retries:
            if attempts:
                self._sleep(self._backoff(attempts, retry_after))
            attempts += 1
            try:
                status, retry_after, payload = self._once(path, body)
            except (OSError, urllib.error.URLError) as exc:
                if not retry_connection_errors:
                    raise ServiceUnavailable(
                        f"{self.endpoint}{path} connection failed and this "
                        "op is not safe to replay (the request may have "
                        f"been applied): {exc!r}",
                        last_status=None,
                        attempts=attempts,
                    )
                last_status, last_error = None, exc
                continue
            if status in _RETRYABLE_STATUSES:
                last_status, last_error = status, None
                continue
            return status, payload
        detail = (
            f"HTTP {last_status}" if last_status is not None
            else f"connection failed ({last_error!r})"
        )
        raise ServiceUnavailable(
            f"{self.endpoint}{path} unavailable after {attempts} attempts: "
            f"{detail}",
            last_status=last_status,
            attempts=attempts,
        )

    def _rpc(
        self, op: str, obj: Dict[str, Any],
        retry_connection_errors: bool = True,
    ) -> Dict[str, Any]:
        body = json.dumps(dict(obj, op=op)).encode("utf-8")
        status, payload = self._exchange(
            f"/v1/{op}", body,
            retry_connection_errors=retry_connection_errors,
        )
        lines = [ln for ln in payload.decode("utf-8").splitlines() if ln]
        if not lines:
            raise ServiceUnavailable(
                f"empty response body (HTTP {status}) from /v1/{op}",
                last_status=status, attempts=1,
            )
        return json.loads(lines[0])

    # -- ops ------------------------------------------------------------

    def rpc(
        self,
        op: str,
        obj: Optional[Dict[str, Any]] = None,
        retry_connection_errors: Optional[bool] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Raw escape hatch: POST any op, get the undecoded envelope.

        For ops this client has no typed helper for (or fields the
        helpers do not model).  Connection-error retries follow the
        idempotency rule by default — everything retries except
        ``update`` — and can be forced either way explicitly.
        """
        if retry_connection_errors is None:
            retry_connection_errors = op != "update"
        return self._rpc(
            op, dict(obj or {}, **fields),
            retry_connection_errors=retry_connection_errors,
        )

    def query(self, **fields: Any) -> QueryOutcome:
        """``op=query``; pass ``dataset``/``path``, ``k``, etc. as kwargs."""
        return QueryOutcome(self._rpc("query", fields))

    def build(self, **fields: Any) -> ServiceOutcome:
        return ServiceOutcome(self._rpc("build", fields))

    def profile(self, **fields: Any) -> ProfileOutcome:
        return ProfileOutcome(self._rpc("profile", fields))

    def stats(self, **fields: Any) -> ServiceOutcome:
        return ServiceOutcome(self._rpc("stats", fields))

    def update(
        self,
        inserts: Union[List, Tuple] = (),
        deletes: Union[List, Tuple] = (),
        **fields: Any,
    ) -> UpdateOutcome:
        """``op=update``: apply an edge batch to the graph and its index.

        Retried on 429/503 responses (the server proved it never started
        the update) but **not** across connection failures — the batch
        may already have been applied, and replaying it would fail
        validation at best and double-apply at worst.
        """
        payload = dict(
            fields,
            inserts=[list(edge) for edge in inserts],
            deletes=[list(edge) for edge in deletes],
        )
        return UpdateOutcome(
            self._rpc("update", payload, retry_connection_errors=False)
        )

    # -- probes (no retries beyond the shared loop) ---------------------

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        """Liveness probe — NOT retried: a 503 (draining) *is* the answer."""
        status, _, payload = self._once("/healthz", None)
        return status, json.loads(payload.decode("utf-8"))

    def readyz(self) -> Tuple[int, Dict[str, Any]]:
        """Readiness probe — NOT retried on 503: a not-ready answer is
        the information the caller asked for, not a failure."""
        status, _, payload = self._once("/readyz", None)
        return status, json.loads(payload.decode("utf-8"))

    def metrics(self) -> str:
        status, payload = self._exchange("/metrics", None)
        if status != 200:
            raise ServiceUnavailable(
                f"/metrics returned HTTP {status}",
                last_status=status, attempts=1,
            )
        return payload.decode("utf-8")
