"""Retrying HTTP client for the query daemon.

The server side of the overload story (admission control, circuit
breakers — see ``docs/robustness.md``) only works if clients cooperate:
a 429 or 503 means *back off and come back*, not *hammer until it
sticks*.  :class:`ServiceClient` encodes that contract once so the CLI
(``repro query --endpoint``), the smoke scripts and the chaos suite all
behave identically:

* retries on 429/503 responses and on connection-level failures
  (connection refused, reset, short read) with **exponential backoff
  plus full jitter**, capped per attempt;
* honours a ``Retry-After`` header when the server sends one — the
  server computes it from its latency histograms, which beats any guess
  the client could make;
* never retries 4xx other than 429 (the request itself is wrong) and
  never retries a response that parsed into a well-formed envelope with
  a non-rejected code — budget exhaustion (code 3/4) is an *outcome*,
  not an availability problem;
* raises :class:`~repro.errors.ServiceUnavailable` carrying the final
  status and attempt count once retries are exhausted.

Stdlib-only (:mod:`urllib.request`); injectable ``sleep`` and ``rng``
keep the tests instant and deterministic.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from ..errors import ServiceUnavailable

__all__ = ["ServiceClient"]

# statuses worth retrying: the request was fine, the server was not ready
_RETRYABLE_STATUSES = (429, 503)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Decode a ``Retry-After`` header (delta-seconds form only)."""
    if not value:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None  # HTTP-date form: not worth a date parser here
    return seconds if seconds >= 0 else None


class ServiceClient:
    """A small, polite client for one daemon endpoint.

    ``endpoint`` is the base URL (``http://127.0.0.1:8642``); the op
    helpers POST to the ``/v1/<op>`` routes and return the decoded
    ``repro/service-v1`` envelope.  Construction is cheap and the client
    is stateless between calls, so sharing one across threads is fine.
    """

    def __init__(
        self,
        endpoint: str,
        timeout_s: float = 30.0,
        max_retries: int = 5,
        backoff_base_s: float = 0.25,
        backoff_max_s: float = 10.0,
        jitter: float = 0.1,
        sleep=time.sleep,
        rng: Optional[random.Random] = None,
    ):
        self.endpoint = endpoint.rstrip("/")
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.jitter = jitter
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    # -- wire level -----------------------------------------------------

    def _once(
        self, path: str, body: Optional[bytes]
    ) -> Tuple[int, Optional[str], bytes]:
        """One HTTP exchange: ``(status, retry_after_header, body)``.

        Raises ``OSError`` (including ``URLError``) on connection-level
        failure; HTTP error statuses are returned, not raised.
        """
        request = urllib.request.Request(
            self.endpoint + path,
            data=body,
            method="POST" if body is not None else "GET",
            headers={"Content-Type": "application/x-ndjson"}
            if body is not None else {},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return (
                    response.status,
                    response.headers.get("Retry-After"),
                    response.read(),
                )
        except urllib.error.HTTPError as exc:
            # an error status with a readable body is still an exchange
            with exc:
                return exc.code, exc.headers.get("Retry-After"), exc.read()

    def _backoff(self, attempt: int, retry_after: Optional[str]) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        hinted = _parse_retry_after(retry_after)
        if hinted is not None:
            base = min(hinted, self.backoff_max_s)
        else:
            base = min(
                self.backoff_max_s,
                self.backoff_base_s * (2 ** (attempt - 1)),
            )
        # full jitter on top, so a herd of rejected clients spreads out
        return base + self._rng.uniform(0, self.jitter * base)

    def _exchange(
        self, path: str, body: Optional[bytes]
    ) -> Tuple[int, bytes]:
        """POST/GET with retries; returns ``(status, body)`` on success.

        Success means any status outside :data:`_RETRYABLE_STATUSES`
        reached after at most ``max_retries`` retries.
        """
        attempts = 0
        last_status: Optional[int] = None
        last_error: Optional[BaseException] = None
        retry_after: Optional[str] = None
        while attempts <= self.max_retries:
            if attempts:
                self._sleep(self._backoff(attempts, retry_after))
            attempts += 1
            try:
                status, retry_after, payload = self._once(path, body)
            except (OSError, urllib.error.URLError) as exc:
                last_status, last_error = None, exc
                continue
            if status in _RETRYABLE_STATUSES:
                last_status, last_error = status, None
                continue
            return status, payload
        detail = (
            f"HTTP {last_status}" if last_status is not None
            else f"connection failed ({last_error!r})"
        )
        raise ServiceUnavailable(
            f"{self.endpoint}{path} unavailable after {attempts} attempts: "
            f"{detail}",
            last_status=last_status,
            attempts=attempts,
        )

    def _rpc(self, op: str, obj: Dict[str, Any]) -> Dict[str, Any]:
        body = json.dumps(dict(obj, op=op)).encode("utf-8")
        status, payload = self._exchange(f"/v1/{op}", body)
        lines = [ln for ln in payload.decode("utf-8").splitlines() if ln]
        if not lines:
            raise ServiceUnavailable(
                f"empty response body (HTTP {status}) from /v1/{op}",
                last_status=status, attempts=1,
            )
        return json.loads(lines[0])

    # -- ops ------------------------------------------------------------

    def query(self, **fields: Any) -> Dict[str, Any]:
        """``op=query``; pass ``dataset``/``path``, ``k``, etc. as kwargs."""
        return self._rpc("query", fields)

    def build(self, **fields: Any) -> Dict[str, Any]:
        return self._rpc("build", fields)

    def profile(self, **fields: Any) -> Dict[str, Any]:
        return self._rpc("profile", fields)

    def stats(self, **fields: Any) -> Dict[str, Any]:
        return self._rpc("stats", fields)

    # -- probes (no retries beyond the shared loop) ---------------------

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        """Liveness probe — NOT retried: a 503 (draining) *is* the answer."""
        status, _, payload = self._once("/healthz", None)
        return status, json.loads(payload.decode("utf-8"))

    def readyz(self) -> Tuple[int, Dict[str, Any]]:
        """Readiness probe — NOT retried on 503: a not-ready answer is
        the information the caller asked for, not a failure."""
        status, _, payload = self._once("/readyz", None)
        return status, json.loads(payload.decode("utf-8"))

    def metrics(self) -> str:
        status, payload = self._exchange("/metrics", None)
        if status != 200:
            raise ServiceUnavailable(
                f"/metrics returned HTTP {status}",
                last_status=status, attempts=1,
            )
        return payload.decode("utf-8")
