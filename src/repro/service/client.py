"""Retrying HTTP client for the query daemon.

The server side of the overload story (admission control, circuit
breakers — see ``docs/robustness.md``) only works if clients cooperate:
a 429 or 503 means *back off and come back*, not *hammer until it
sticks*.  :class:`ServiceClient` encodes that contract once so the CLI
(``repro query --endpoint``), the smoke scripts and the chaos suite all
behave identically:

* retries on 429/503 responses and on connection-level failures
  (connection refused, reset, short read) with **exponential backoff
  plus full jitter**, capped per attempt;
* honours a ``Retry-After`` header when the server sends one — the
  server computes it from its latency histograms, which beats any guess
  the client could make;
* never retries 4xx other than 429 (the request itself is wrong) and
  never retries a response that parsed into a well-formed envelope with
  a non-rejected code — budget exhaustion (code 3/4) is an *outcome*,
  not an availability problem;
* retries **idempotent-safe ops only** across connection failures:
  ``update`` mutates the graph, and a connection that died mid-exchange
  may have died *after* the server applied the batch, so replaying it
  blind would double-apply; a 429/503 *response*, by contrast, proves
  the update was rejected before it started and is always safe to retry;
* raises :class:`~repro.errors.ServiceUnavailable` carrying the final
  status and attempt count once retries are exhausted.

The op helpers return typed **outcomes** — thin ``dict`` subclasses of
the decoded envelope (so raw access, ``json.dumps`` and equality keep
working) with properties for the fields that matter:
:class:`QueryOutcome.result` decodes the embedded payload into a
:class:`~repro.results.DenseSubgraphResult`,
:class:`UpdateOutcome.applied` answers "did the batch commit", and every
outcome exposes ``.ok`` / ``.code`` / ``.error`` / ``.request_id`` /
``.graph_version``.  :meth:`ServiceClient.rpc` is the raw escape hatch
for ops (or fields) this client has no helper for.

**Topology awareness** (``topology_aware=True``): against a fleet front
(see ``docs/service.md``, "Fleet deployment") the client fetches
``GET /v1/topology`` once, rebuilds the router's :class:`HashRing`
locally from the member list (placement is a pure function of the member
set, so both sides agree), and sends ``query``/``build``/``profile``
straight to the owning worker — skipping the router hop on the hot path.
Anything that goes wrong with a direct attempt (connection failure, a
5xx, an overloaded worker) falls back through the router, which is
always correct; a ``ring_epoch`` on a router response that differs from
the cached epoch marks the topology stale and re-fetches it before the
next routing decision.  ``update`` and ``stats`` always go through the
router — update must fan out to replicas, and stats aggregation is the
router's job.

Stdlib-only (:mod:`urllib.request`); injectable ``sleep`` and ``rng``
keep the tests instant and deterministic.  The client holds no sockets
between calls, but :meth:`ServiceClient.close` (also via ``with``)
drops the cached topology and fails further calls fast, so a closed
client cannot silently keep routing.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
import warnings
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import InvalidParameterError, ServiceUnavailable
from ..results import DenseSubgraphResult
from .hashring import HashRing, key_string, request_key

__all__ = [
    "ServiceClient",
    "ServiceOutcome",
    "QueryOutcome",
    "ProfileOutcome",
    "UpdateOutcome",
]

# ops a topology-aware client may send straight to the owning worker;
# update is excluded (must fan out via the router) and stats is a
# whole-fleet aggregate
_ROUTABLE_OPS = ("query", "build", "profile")

# statuses worth retrying: the request was fine, the server was not ready
_RETRYABLE_STATUSES = (429, 503)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Decode a ``Retry-After`` header (delta-seconds form only)."""
    if not value:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None  # HTTP-date form: not worth a date parser here
    return seconds if seconds >= 0 else None


class ServiceOutcome(dict):
    """A decoded ``repro/service-v1`` envelope with typed accessors.

    Subclassing ``dict`` keeps every raw-envelope idiom working —
    ``outcome["code"]``, ``outcome.get("error")``, ``json.dumps`` — so
    the typed surface is additive, not a migration.
    """

    @property
    def code(self) -> int:
        return int(self.get("code", 1))

    @property
    def ok(self) -> bool:
        """Code 0 and no error: the op fully succeeded."""
        return self.code == 0 and not self.get("error")

    @property
    def error(self) -> Optional[str]:
        return self.get("error")

    @property
    def request_id(self) -> Optional[str]:
        return self.get("request_id")

    @property
    def graph_version(self) -> Optional[int]:
        """The graph version this response was computed against."""
        return self.get("graph_version")

    @property
    def rejected(self) -> bool:
        """Refused by admission control before any work started."""
        return bool(self.get("rejected"))

    @property
    def retry_after_s(self) -> Optional[float]:
        return self.get("retry_after_s")

    @property
    def served_by(self) -> Optional[str]:
        """Worker id that computed this response (v1.1 fleets only)."""
        return self.get("served_by")

    @property
    def ring_epoch(self) -> Optional[int]:
        """Router ring epoch this response was served under (v1.1)."""
        return self.get("ring_epoch")


class QueryOutcome(ServiceOutcome):
    """Outcome of :meth:`ServiceClient.query`."""

    @property
    def result(self) -> Optional[DenseSubgraphResult]:
        """The embedded ``repro/result-v1`` payload, decoded (or None)."""
        payload = self.get("result")
        if payload is None:
            return None
        return DenseSubgraphResult.from_dict(payload)

    @property
    def cached(self) -> bool:
        return bool(self.get("cached"))

    @property
    def coalesced(self) -> bool:
        return bool(self.get("coalesced"))

    @property
    def query_time_s(self) -> Optional[float]:
        return self.get("query_time_s")


class ProfileOutcome(ServiceOutcome):
    """Outcome of :meth:`ServiceClient.profile`."""

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """One ``{k, size, clique_count, density}`` row per clique size."""
        return list((self.get("profile") or {}).get("rows") or ())

    @property
    def densest_k(self) -> Optional[int]:
        return (self.get("profile") or {}).get("densest_k")


class UpdateOutcome(ServiceOutcome):
    """Outcome of :meth:`ServiceClient.update`."""

    @property
    def applied(self) -> bool:
        """Whether the edge batch committed (False on a code-4 partial)."""
        return bool(self.get("applied"))

    @property
    def update(self) -> Dict[str, Any]:
        """The dirty-region digest (``DirtyRegion.summary()`` fields)."""
        return dict(self.get("update") or {})

    @property
    def invalidated_results(self) -> int:
        return int(self.get("invalidated_results", 0))

    @property
    def retained_results(self) -> int:
        return int(self.get("retained_results", 0))


class ServiceClient:
    """A small, polite client for one daemon endpoint.

    ``endpoint`` is the base URL (``http://127.0.0.1:8642``); the op
    helpers POST to the ``/v1/<op>`` routes and return the decoded
    ``repro/service-v1`` envelope.  Construction is cheap and the client
    is stateless between calls, so sharing one across threads is fine.
    """

    # class-level so the DeprecationWarning on bare rpc() fires once per
    # process, not once per client (mirrors the options= migration)
    _rpc_deprecation_warned = False

    def __init__(
        self,
        endpoint: str,
        timeout_s: float = 30.0,
        max_retries: int = 5,
        backoff_base_s: float = 0.25,
        backoff_max_s: float = 10.0,
        jitter: float = 0.1,
        sleep=time.sleep,
        rng: Optional[random.Random] = None,
        topology_aware: bool = False,
    ):
        self.endpoint = endpoint.rstrip("/")
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.jitter = jitter
        self.topology_aware = topology_aware
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._closed = False
        # cached fleet topology: (ring, {worker_id: base_url}, router epoch)
        self._topo_lock = threading.Lock()
        self._topo: Optional[Tuple[HashRing, Dict[str, str], int]] = None
        self._topo_stale = True

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release the client: drop the cached topology and refuse
        further calls.  Idempotent; also invoked by ``with``-exit."""
        self._closed = True
        with self._topo_lock:
            self._topo = None
            self._topo_stale = True

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- wire level -----------------------------------------------------

    def _once(
        self, path: str, body: Optional[bytes],
        base: Optional[str] = None,
    ) -> Tuple[int, Optional[str], bytes]:
        """One HTTP exchange: ``(status, retry_after_header, body)``.

        Raises ``OSError`` (including ``URLError``) on connection-level
        failure; HTTP error statuses are returned, not raised.  ``base``
        overrides the endpoint (topology-aware direct-to-worker calls).
        """
        if self._closed:
            raise ServiceUnavailable(
                "client is closed", last_status=None, attempts=0
            )
        request = urllib.request.Request(
            (base if base is not None else self.endpoint) + path,
            data=body,
            method="POST" if body is not None else "GET",
            headers={"Content-Type": "application/x-ndjson"}
            if body is not None else {},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return (
                    response.status,
                    response.headers.get("Retry-After"),
                    response.read(),
                )
        except urllib.error.HTTPError as exc:
            # an error status with a readable body is still an exchange
            with exc:
                return exc.code, exc.headers.get("Retry-After"), exc.read()

    def _backoff(self, attempt: int, retry_after: Optional[str]) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        hinted = _parse_retry_after(retry_after)
        if hinted is not None:
            base = min(hinted, self.backoff_max_s)
        else:
            base = min(
                self.backoff_max_s,
                self.backoff_base_s * (2 ** (attempt - 1)),
            )
        # full jitter on top, so a herd of rejected clients spreads out
        return base + self._rng.uniform(0, self.jitter * base)

    def _exchange(
        self, path: str, body: Optional[bytes],
        retry_connection_errors: bool = True,
    ) -> Tuple[int, bytes]:
        """POST/GET with retries; returns ``(status, body)`` on success.

        Success means any status outside :data:`_RETRYABLE_STATUSES`
        reached after at most ``max_retries`` retries.  With
        ``retry_connection_errors=False`` a connection-level failure
        raises immediately: the exchange may have reached the server
        before dying, so a non-idempotent op must not be replayed.
        """
        attempts = 0
        last_status: Optional[int] = None
        last_error: Optional[BaseException] = None
        retry_after: Optional[str] = None
        while attempts <= self.max_retries:
            if attempts:
                self._sleep(self._backoff(attempts, retry_after))
            attempts += 1
            try:
                status, retry_after, payload = self._once(path, body)
            except (OSError, urllib.error.URLError) as exc:
                if not retry_connection_errors:
                    raise ServiceUnavailable(
                        f"{self.endpoint}{path} connection failed and this "
                        "op is not safe to replay (the request may have "
                        f"been applied): {exc!r}",
                        last_status=None,
                        attempts=attempts,
                    )
                last_status, last_error = None, exc
                continue
            if status in _RETRYABLE_STATUSES:
                last_status, last_error = status, None
                continue
            return status, payload
        detail = (
            f"HTTP {last_status}" if last_status is not None
            else f"connection failed ({last_error!r})"
        )
        raise ServiceUnavailable(
            f"{self.endpoint}{path} unavailable after {attempts} attempts: "
            f"{detail}",
            last_status=last_status,
            attempts=attempts,
        )

    @staticmethod
    def _decode(status: int, payload: bytes, path: str) -> Dict[str, Any]:
        lines = [ln for ln in payload.decode("utf-8").splitlines() if ln]
        if not lines:
            raise ServiceUnavailable(
                f"empty response body (HTTP {status}) from {path}",
                last_status=status, attempts=1,
            )
        return json.loads(lines[0])

    def _rpc(
        self, op: str, obj: Dict[str, Any],
        retry_connection_errors: bool = True,
    ) -> Dict[str, Any]:
        body = json.dumps(dict(obj, op=op)).encode("utf-8")
        path = f"/v1/{op}"
        if self.topology_aware and op in _ROUTABLE_OPS:
            env = self._try_direct(path, body, obj)
            if env is not None:
                return env
        status, payload = self._exchange(
            path, body,
            retry_connection_errors=retry_connection_errors,
        )
        env = self._decode(status, payload, path)
        self._note_epoch(env)
        return env

    # -- topology awareness ---------------------------------------------

    def topology(self) -> "ServiceOutcome":
        """``GET /v1/topology`` from the router: ring epoch, worker
        table and replica map (raises against a single-process daemon,
        which has no topology surface)."""
        status, _, payload = self._once("/v1/topology", None)
        if status != 200:
            raise ServiceUnavailable(
                f"/v1/topology returned HTTP {status}",
                last_status=status, attempts=1,
            )
        return ServiceOutcome(self._decode(status, payload, "/v1/topology"))

    def _note_epoch(self, env: Dict[str, Any]) -> None:
        """Mark the cached topology stale when a router response proves
        the ring moved under us."""
        epoch = env.get("ring_epoch")
        if not isinstance(epoch, int):
            return
        with self._topo_lock:
            if self._topo is not None and self._topo[2] != epoch:
                self._topo_stale = True

    def _topology_snapshot(
        self,
    ) -> Optional[Tuple[HashRing, Dict[str, str], int]]:
        """The cached ``(ring, worker table, epoch)``, re-fetched when
        stale; None when the endpoint has no topology surface."""
        with self._topo_lock:
            if self._topo is not None and not self._topo_stale:
                return self._topo
        try:
            topo = self.topology().get("topology") or {}
        except (ServiceUnavailable, OSError, urllib.error.URLError,
                json.JSONDecodeError):
            with self._topo_lock:
                self._topo = None
                self._topo_stale = True
            return None
        workers = {
            worker["id"]: worker["url"].rstrip("/")
            for worker in topo.get("workers", ())
            if isinstance(worker, dict) and worker.get("url")
        }
        if not workers:
            return None
        # placement is a pure function of (member set, vnodes): rebuild
        # the router's ring locally instead of shipping vnode positions
        ring = HashRing(
            sorted(workers), vnodes=int(topo.get("vnodes", 0) or 64)
        )
        snapshot = (ring, workers, int(topo.get("epoch", 0)))
        with self._topo_lock:
            self._topo = snapshot
            self._topo_stale = False
        return snapshot

    def _try_direct(
        self, path: str, body: bytes, obj: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """One direct-to-owner attempt; None means *fall back through
        the router* (no topology, unroutable request, worker trouble)."""
        topo = self._topology_snapshot()
        if topo is None:
            return None
        ring, workers, _ = topo
        try:
            key = key_string(request_key(obj))
        except (InvalidParameterError, TypeError, ValueError):
            return None  # malformed request: let the server say why
        owner = ring.owner(key)
        base = workers.get(owner) if owner else None
        if base is None:
            return None
        try:
            status, _, payload = self._once(path, body, base=base)
        except (OSError, urllib.error.URLError):
            # the worker may be gone; the router knows the live ring
            with self._topo_lock:
                self._topo_stale = True
            return None
        if status in _RETRYABLE_STATUSES or status >= 500:
            if status >= 500:
                with self._topo_lock:
                    self._topo_stale = True
            return None
        return self._decode(status, payload, path)

    # -- ops ------------------------------------------------------------

    def rpc(
        self,
        op: str,
        obj: Optional[Dict[str, Any]] = None,
        retry_connection_errors: Optional[bool] = None,
        **fields: Any,
    ) -> "ServiceOutcome":
        """Raw escape hatch: POST any op, get the decoded envelope.

        For ops this client has no typed helper for (or fields the
        helpers do not model).  Connection-error retries follow the
        idempotency rule by default — everything retries except
        ``update`` — and can be forced either way explicitly.

        .. deprecated:: the bare-``dict`` return is deprecated; ``rpc``
           now returns a :class:`ServiceOutcome` (a ``dict`` subclass,
           so every existing access pattern keeps working) and warns
           once per process.  Prefer the typed helpers.
        """
        if not ServiceClient._rpc_deprecation_warned:
            ServiceClient._rpc_deprecation_warned = True
            warnings.warn(
                "ServiceClient.rpc() now returns a ServiceOutcome (a dict "
                "subclass); the bare-dict contract is deprecated — use the "
                "typed helpers (query/build/profile/stats/update) or the "
                "outcome properties",
                DeprecationWarning,
                stacklevel=2,
            )
        if retry_connection_errors is None:
            retry_connection_errors = op != "update"
        return ServiceOutcome(self._rpc(
            op, dict(obj or {}, **fields),
            retry_connection_errors=retry_connection_errors,
        ))

    def query(self, **fields: Any) -> QueryOutcome:
        """``op=query``; pass ``dataset``/``path``, ``k``, etc. as kwargs."""
        return QueryOutcome(self._rpc("query", fields))

    def build(self, **fields: Any) -> ServiceOutcome:
        return ServiceOutcome(self._rpc("build", fields))

    def profile(self, **fields: Any) -> ProfileOutcome:
        return ProfileOutcome(self._rpc("profile", fields))

    def stats(self, **fields: Any) -> ServiceOutcome:
        return ServiceOutcome(self._rpc("stats", fields))

    def update(
        self,
        inserts: Union[List, Tuple] = (),
        deletes: Union[List, Tuple] = (),
        **fields: Any,
    ) -> UpdateOutcome:
        """``op=update``: apply an edge batch to the graph and its index.

        Retried on 429/503 responses (the server proved it never started
        the update) but **not** across connection failures — the batch
        may already have been applied, and replaying it would fail
        validation at best and double-apply at worst.
        """
        payload = dict(
            fields,
            inserts=[list(edge) for edge in inserts],
            deletes=[list(edge) for edge in deletes],
        )
        return UpdateOutcome(
            self._rpc("update", payload, retry_connection_errors=False)
        )

    # -- probes (no retries beyond the shared loop) ---------------------

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        """Liveness probe — NOT retried: a 503 (draining) *is* the answer."""
        status, _, payload = self._once("/healthz", None)
        return status, json.loads(payload.decode("utf-8"))

    def readyz(self) -> Tuple[int, Dict[str, Any]]:
        """Readiness probe — NOT retried on 503: a not-ready answer is
        the information the caller asked for, not a failure."""
        status, _, payload = self._once("/readyz", None)
        return status, json.loads(payload.decode("utf-8"))

    def metrics(self) -> str:
        status, payload = self._exchange("/metrics", None)
        if status != 200:
            raise ServiceUnavailable(
                f"/metrics returned HTTP {status}",
                last_status=status, attempts=1,
            )
        return payload.decode("utf-8")
