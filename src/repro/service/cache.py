"""Thread-safe size-bounded LRU cache for the query daemon.

One :class:`LRUCache` holds built :class:`~repro.core.SCTIndex` objects
(the expensive asset the service amortises), a second one holds finished
query results.  Both are bounded by entry *count*, not bytes: an index's
memory footprint is dominated by the input graph, so "how many graphs'
indices fit on this box" is the number an operator can actually reason
about (``repro serve --cache-size``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, List, Optional, Tuple

__all__ = ["LRUCache"]


class LRUCache:
    """A lock-protected LRU mapping with hit/miss/eviction counters.

    Every operation is O(1); the lock is held only for the dictionary
    bookkeeping, never while a value is being computed — pair with
    :class:`~repro.service.singleflight.SingleFlight` to keep N threads
    from computing the same missing value.

    ``on_evict``, when given, is called as ``on_evict(key, value)`` for
    every evicted pair, *outside* the lock (a slot backed by an mmap or
    shared-memory block may want to log or schedule a release; it must
    not be released eagerly — an evicted index can still be serving
    in-flight readers, so reclamation belongs to the garbage collector).
    """

    def __init__(
        self,
        capacity: int,
        on_evict: Optional[Callable[[Hashable, Any], None]] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._on_evict = on_evict
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value (refreshed to most-recent), or ``None``."""
        with self._lock:
            if key not in self._entries:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: Hashable, value: Any) -> List[Tuple[Hashable, Any]]:
        """Insert (or refresh) ``key`` and return the evicted pairs."""
        evicted: List[Tuple[Hashable, Any]] = []
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                evicted.append(self._entries.popitem(last=False))
                self.evictions += 1
        if self._on_evict is not None:
            for evicted_key, evicted_value in evicted:
                self._on_evict(evicted_key, evicted_value)
        return evicted

    def pop(self, key: Hashable) -> Optional[Any]:
        """Remove ``key`` and return its value (``None`` if absent).

        A pop is an *invalidation*, not an eviction: it is counted
        separately, and ``on_evict`` is not called — the caller decided
        the entry is stale, so it also owns whatever cleanup applies.
        """
        with self._lock:
            value = self._entries.pop(key, None)
            if value is not None:
                self.invalidations += 1
            return value

    def items(self) -> List[Tuple[Hashable, Any]]:
        """Current ``(key, value)`` pairs, least- to most-recently used.

        A snapshot taken under the lock; iterating it races with nothing.
        """
        with self._lock:
            return list(self._entries.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> List[Hashable]:
        """Current keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries.keys())

    def values(self) -> List[Any]:
        """Current values, least- to most-recently used."""
        with self._lock:
            return list(self._entries.values())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Counter snapshot for the ``stats`` endpoint."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
