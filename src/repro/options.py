"""``RunOptions``: the one bundle for every cross-cutting execution knob.

Every entry point of the pipeline historically accreted the same four
keywords — ``recorder=`` (:mod:`repro.obs`), ``budget=`` and
``checkpoint=``/``resume=`` (:mod:`repro.resilience`) — and the parallel
engine adds a fifth (``parallel=``).  :class:`RunOptions` packages the
five into a single frozen value that travels through the pipeline intact,
while :meth:`RunOptions.resolve` keeps every legacy keyword working as a
back-compat alias:

* pass nothing — every knob at its free default;
* pass legacy keywords — exactly the old behaviour;
* pass ``options=RunOptions(...)`` — the new style;
* pass both — fine as long as they do not disagree; a *conflicting*
  assignment of the same knob through both spellings raises
  :class:`~repro.errors.InvalidParameterError` rather than silently
  picking one.

Algorithms that do not support some knob (the pre-SCT baselines support
none) accept ``options=`` anyway and report what they ignore through one
documented :func:`warn_unsupported` warning.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Optional, Tuple

from .errors import InvalidParameterError
from .obs import NULL_RECORDER, Recorder
from .parallel.config import ParallelConfig

if False:  # typing-only; repro.resilience imports core, which imports us
    from .resilience.budget import Budget

__all__ = ["RunOptions", "warn_unsupported"]


def _null_budget():
    # deferred: importing repro.resilience at module scope would close an
    # import cycle through repro.core back into this module
    from .resilience.budget import NULL_BUDGET

    return NULL_BUDGET

_FIELDS: Tuple[str, ...] = (
    "recorder",
    "budget",
    "checkpoint",
    "resume",
    "parallel",
)


@dataclass(frozen=True)
class RunOptions:
    """Cross-cutting execution options for one pipeline run.

    Attributes
    ----------
    recorder:
        Observability hook (:mod:`repro.obs`); the free
        :data:`~repro.obs.NULL_RECORDER` by default.  ``None`` is
        normalised to the null recorder.
    budget:
        Cooperative :class:`~repro.resilience.RunBudget` (or the free
        :data:`~repro.resilience.NULL_BUDGET`); ``None`` is normalised
        to the null budget.
    checkpoint:
        A :class:`~repro.resilience.Checkpointer` or a directory path
        for atomic progress snapshots (``None`` disables them).
    resume:
        Restart from the snapshots under ``checkpoint``.
    parallel:
        ``None`` (serial), a bare int worker count, or a
        :class:`~repro.parallel.ParallelConfig`; ints are normalised to
        a config.  ``workers=1`` is byte-identical to serial.
    """

    recorder: Recorder = NULL_RECORDER
    budget: Optional["Budget"] = None
    checkpoint: Optional[object] = None
    resume: bool = False
    parallel: Optional[ParallelConfig] = None

    def __post_init__(self) -> None:
        if self.recorder is None:
            object.__setattr__(self, "recorder", NULL_RECORDER)
        if self.budget is None:
            object.__setattr__(self, "budget", _null_budget())
        if not isinstance(self.resume, bool):
            raise InvalidParameterError(
                f"resume must be a bool, got {self.resume!r}"
            )
        object.__setattr__(
            self, "parallel", ParallelConfig.normalize(self.parallel)
        )

    # -- introspection --------------------------------------------------

    def is_default(self, name: str) -> bool:
        """Whether the named knob still carries its free default."""
        value = getattr(self, name)
        if name == "recorder":
            return value is NULL_RECORDER
        if name == "budget":
            return value is _null_budget()
        if name == "resume":
            return value is False
        return value is None  # checkpoint, parallel

    @property
    def workers(self) -> int:
        """Worker count the ``parallel`` knob asks for (1 = serial)."""
        return self.parallel.workers if self.parallel is not None else 1

    def replace(self, **changes) -> "RunOptions":
        """A copy with the given knobs replaced (frozen-safe)."""
        return dataclasses.replace(self, **changes)

    # -- normalisation --------------------------------------------------

    @classmethod
    def resolve(cls, options: Optional["RunOptions"] = None, **legacy) -> "RunOptions":
        """Merge an ``options=`` value with legacy per-knob keywords.

        Every entry point funnels its keywords through here.  The rules:

        * a legacy keyword left at its default never participates;
        * a legacy keyword carrying a non-default value emits a
          :class:`DeprecationWarning` naming the ``options=`` spelling
          that replaces it (the run proceeds unchanged);
        * with ``options=None`` the legacy keywords (normalised) win;
        * with both given, any knob set to *different* values through
          both spellings raises
          :class:`~repro.errors.InvalidParameterError`; agreeing
          assignments and disjoint knobs merge fine.

        Unknown keyword names are rejected — they are typos, not knobs.
        """
        unknown = set(legacy) - set(_FIELDS)
        if unknown:
            raise InvalidParameterError(
                f"unknown RunOptions field(s): {', '.join(sorted(unknown))}; "
                f"expected one of: {', '.join(_FIELDS)}"
            )
        legacy_probe = cls(**legacy) if legacy else cls()
        set_knobs = [
            name
            for name in _FIELDS
            if name in legacy and not legacy_probe.is_default(name)
        ]
        if set_knobs:
            spelled = ", ".join(f"{name}=..." for name in set_knobs)
            warnings.warn(
                f"the legacy keyword(s) {', '.join(set_knobs)} are "
                f"deprecated; pass options=RunOptions({spelled}) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        if options is None:
            return legacy_probe
        if not isinstance(options, RunOptions):
            raise InvalidParameterError(
                f"options must be a RunOptions, got {type(options).__name__}"
            )
        merged = {}
        conflicts = []
        for name in _FIELDS:
            option_value = getattr(options, name)
            if name not in legacy:
                merged[name] = option_value
                continue
            legacy_value = legacy[name]
            if name == "parallel":
                legacy_value = ParallelConfig.normalize(legacy_value)
            probe = cls(**{name: legacy_value})
            legacy_value = getattr(probe, name)  # None-normalised
            legacy_set = not probe.is_default(name)
            option_set = not options.is_default(name)
            if (
                legacy_set
                and option_set
                and legacy_value is not option_value
                and legacy_value != option_value
            ):
                conflicts.append(name)
            merged[name] = legacy_value if legacy_set else option_value
        if conflicts:
            raise InvalidParameterError(
                "conflicting values passed both through options= and the "
                f"legacy keyword(s): {', '.join(conflicts)}"
            )
        return cls(**merged)


def warn_unsupported(
    options: Optional[RunOptions],
    algorithm: str,
    supported: Tuple[str, ...] = (),
) -> None:
    """One documented warning for knobs an algorithm ignores.

    The pre-SCT baselines (KCL, CoreApp, ...) accept ``options=`` so the
    facade forwards uniformly, but they predate the observability /
    resilience / parallel layers.  When the given options carry any
    non-default knob outside ``supported``, a single
    :class:`UserWarning` names the ignored knobs — the run proceeds,
    exactly as it did before the knob existed.
    """
    if options is None:
        return
    ignored = [
        name
        for name in _FIELDS
        if name not in supported and not options.is_default(name)
    ]
    if ignored:
        warnings.warn(
            f"{algorithm} does not support the RunOptions knob(s) "
            f"{', '.join(ignored)}; they are ignored",
            UserWarning,
            stacklevel=3,
        )
