"""``repro.results`` — the stable, versioned result contract.

Every densest-subgraph entry point in the library — the
:func:`repro.densest_subgraph` facade, the SCTL family, the sampling and
exact solvers, and every baseline — returns a
:class:`DenseSubgraphResult`: a frozen dataclass whose JSON encoding is
versioned under the ``"repro/result-v1"`` schema tag.  The same payload
travels unchanged over the :mod:`repro.service` wire protocol, out of
``repro query --json``, and through
``python -m repro.obs.validate --result``.

Contract rules:

* the dataclass is frozen — a result is a value, not a builder; only the
  free-form ``stats`` and ``timings`` dictionaries may be filled in
  after construction (the facade stamps wall-clock timings there);
* :meth:`DenseSubgraphResult.to_dict` always emits the ``schema`` field
  first and :meth:`DenseSubgraphResult.from_dict` refuses any payload
  whose schema it does not speak, so a version bump can never be
  silently misread;
* consumers may add keys next to the contract fields (the CLI adds
  ``query_time_s``); validators accept unknown keys, so v1 payloads are
  forward-extensible without a version bump;
* tuple unpacking (``vertices, density = result``) keeps working for one
  deprecation cycle via :meth:`DenseSubgraphResult.__iter__`, which
  warns; the mapping is documented in ``docs/api.md``.

The class was historically named ``DensestSubgraphResult`` (still
importable everywhere it used to be); :class:`PartialResult` is the
budget-degradation subclass and shares the exact same wire encoding with
``"partial": true``.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, Iterator, List, Mapping, Optional

from .errors import InvalidParameterError

__all__ = [
    "RESULT_SCHEMA",
    "PROFILE_SCHEMA",
    "STATS_SCHEMA",
    "DenseSubgraphResult",
    "PartialResult",
]

RESULT_SCHEMA = "repro/result-v1"

# sibling payload tags: every machine-readable output the CLI or the
# service emits carries exactly one of these under its "schema" key
PROFILE_SCHEMA = "repro/profile-v1"
STATS_SCHEMA = "repro/stats-v1"


def _normalized_method(name: str) -> str:
    # mirrors repro.registry.normalize_method_name; duplicated because the
    # registry imports the algorithm modules, which import this module
    return "".join(name.split()).lower().replace("_", "-")


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of a free-form value to JSON-native types."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    try:  # Fraction and friends
        return float(value)
    except (TypeError, ValueError):
        return str(value)


@dataclass(frozen=True)
class DenseSubgraphResult:
    """Outcome of a k-clique densest subgraph computation.

    Densities are kept exact: ``clique_count`` and ``len(vertices)`` are
    integers, so :attr:`density_fraction` has no floating-point error.

    Attributes
    ----------
    vertices:
        Sorted vertex ids of the reported subgraph (empty when the graph
        has no k-clique).
    clique_count:
        Number of k-cliques inside the reported subgraph, measured on the
        *original* graph.
    k:
        The clique size queried.
    algorithm:
        Human-readable algorithm name (``"SCTL*"``, ``"KCL"``, ...); the
        :attr:`method` property derives the registry-style name.
    iterations:
        Weight-refinement iterations actually performed.
    upper_bound:
        A certified upper bound on the optimal density, when the algorithm
        produces one (see Remark 1 of the paper); ``None`` otherwise.
    exact:
        ``True`` when the result is verified optimal.
    stats:
        Free-form instrumentation (per-iteration scope sizes, update
        counts...), used by the benchmark harness.  Excluded from the
        wire encoding unless asked for — it can dwarf the result itself —
        and, like ``timings``, excluded from equality: two results that
        report the same subgraph are the same result regardless of how
        much instrumentation each run collected.
    valid:
        ``True`` when ``vertices``/``clique_count`` describe a genuine
        subgraph of the input with its true k-clique count.  Only
        :class:`PartialResult` ever sets this ``False``.
    reason / stage:
        Degradation detail; empty on a complete result (see
        :class:`PartialResult`).
    timings:
        Wall-clock phase timings in seconds (``"total_s"``,
        ``"index_build_s"``...), stamped by the facade, the CLI and the
        service.  Mutable by design: it is the one post-construction
        annotation channel the frozen contract allows.
    """

    vertices: List[int]
    clique_count: int
    k: int
    algorithm: str
    iterations: int = 0
    upper_bound: Optional[float] = None
    exact: bool = False
    stats: Dict[str, Any] = field(default_factory=dict, compare=False)
    valid: bool = True
    reason: str = ""
    stage: str = ""
    timings: Dict[str, float] = field(default_factory=dict, compare=False)

    # -- derived views --------------------------------------------------

    @property
    def size(self) -> int:
        """Number of vertices in the reported subgraph."""
        return len(self.vertices)

    @property
    def density_fraction(self) -> Fraction:
        """Exact k-clique density ``clique_count / size`` (0 when empty)."""
        if not self.vertices:
            return Fraction(0)
        return Fraction(self.clique_count, len(self.vertices))

    @property
    def density(self) -> float:
        """k-clique density as a float."""
        return float(self.density_fraction)

    @property
    def method(self) -> str:
        """Registry-style method name (``"SCTL*-Exact"`` -> ``"sctl*-exact"``)."""
        return _normalized_method(self.algorithm)

    def approximation_ratio(self, optimal_density: Fraction) -> float:
        """``density / optimal_density`` against a known optimum."""
        if optimal_density <= 0:
            return 1.0 if self.density_fraction == 0 else float("inf")
        return float(self.density_fraction / optimal_density)

    @property
    def is_partial(self) -> bool:
        """Whether this is a degraded best-so-far result (see
        :class:`PartialResult`)."""
        return False

    def summary(self) -> str:
        """One-line human-readable summary."""
        flag = "exact" if self.exact else "approx"
        return (
            f"{self.algorithm} (k={self.k}, {flag}): |S|={self.size}, "
            f"cliques={self.clique_count}, density={self.density:.4f}"
        )

    # -- legacy tuple protocol (one deprecation cycle) ------------------

    def __iter__(self) -> Iterator[Any]:
        """Deprecated tuple view: yields ``vertices`` then ``density``.

        ``vertices, density = result`` keeps working for one deprecation
        cycle; switch to ``result.vertices`` / ``result.density`` (the
        mapping is documented in ``docs/api.md``).
        """
        warnings.warn(
            "tuple unpacking of DenseSubgraphResult is deprecated; use "
            "result.vertices and result.density instead (see docs/api.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        yield self.vertices
        yield self.density

    # -- versioned wire encoding ----------------------------------------

    def to_dict(self, include_stats: bool = False) -> Dict[str, Any]:
        """The ``repro/result-v1`` payload (JSON-native values only).

        ``stats`` is excluded by default — it is free-form, can hold a
        full per-vertex weight vector, and is not part of the stable
        contract; pass ``include_stats=True`` to embed a JSON-sanitised
        copy under the ``"stats"`` key.
        """
        payload: Dict[str, Any] = {
            "schema": RESULT_SCHEMA,
            "k": self.k,
            "method": self.method,
            "algorithm": self.algorithm,
            "vertices": list(self.vertices),
            "size": self.size,
            "clique_count": self.clique_count,
            "density": self.density,
            "iterations": self.iterations,
            "upper_bound": (
                None if self.upper_bound is None else float(self.upper_bound)
            ),
            "exact": bool(self.exact),
            "partial": self.is_partial,
            "valid": bool(self.valid),
            "reason": self.reason,
            "stage": self.stage,
            "timings": {str(k): float(v) for k, v in self.timings.items()},
        }
        if include_stats:
            payload["stats"] = _json_safe(self.stats)
        return payload

    def to_json(self, include_stats: bool = False, **dumps_kwargs: Any) -> str:
        """:meth:`to_dict` as a JSON string."""
        return json.dumps(self.to_dict(include_stats=include_stats),
                          **dumps_kwargs)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DenseSubgraphResult":
        """Decode a ``repro/result-v1`` payload back into a result.

        Unknown sibling keys are ignored (consumers may extend payloads);
        an unknown or missing ``schema`` raises
        :class:`~repro.errors.InvalidParameterError` so a future version
        bump can never be silently misread.  Partial payloads come back
        as :class:`PartialResult`.
        """
        if not isinstance(payload, Mapping):
            raise InvalidParameterError(
                f"result payload must be a mapping, got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema != RESULT_SCHEMA:
            raise InvalidParameterError(
                f"unsupported result schema {schema!r}; this reader speaks "
                f"{RESULT_SCHEMA!r}"
            )
        try:
            kwargs: Dict[str, Any] = dict(
                vertices=list(payload["vertices"]),
                clique_count=payload["clique_count"],
                k=payload["k"],
                algorithm=payload.get("algorithm") or payload.get("method", ""),
            )
        except KeyError as exc:
            raise InvalidParameterError(
                f"result payload is missing required field {exc.args[0]!r}"
            ) from None
        kwargs.update(
            iterations=payload.get("iterations", 0),
            upper_bound=payload.get("upper_bound"),
            exact=bool(payload.get("exact", False)),
            stats=dict(payload.get("stats", {})),
            valid=bool(payload.get("valid", True)),
            reason=payload.get("reason", ""),
            stage=payload.get("stage", ""),
            timings=dict(payload.get("timings", {})),
        )
        if payload.get("partial"):
            return PartialResult(**kwargs)
        return DenseSubgraphResult(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "DenseSubgraphResult":
        """:meth:`from_dict` over a JSON string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(
                f"result payload is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(payload)


@dataclass(frozen=True)
class PartialResult(DenseSubgraphResult):
    """Best-so-far outcome of a budget-exhausted or cancelled run.

    Every result-returning stage of the pipeline degrades to this instead
    of crashing when its :class:`~repro.resilience.RunBudget` runs out:
    the inherited fields carry the best *achieved* subgraph at the last
    completed boundary (weights included in ``stats`` where the full run
    would include them), and three fields describe the degradation:

    Attributes
    ----------
    valid:
        ``True`` when ``vertices``/``clique_count`` describe a genuine
        subgraph of the input with its true k-clique count — usable as an
        approximation.  ``False`` when the run stopped before producing
        anything usable (e.g. during the index build); the result is then
        empty and only ``reason``/``stage`` are meaningful.
    reason:
        Why the run stopped: ``"deadline"``, ``"max_iterations"`` or
        ``"cancelled"`` (mirroring
        :attr:`~repro.errors.BudgetExhausted.reason`).
    stage:
        The pipeline stage (obs span name) that observed the exhaustion.
    """

    valid: bool = True
    reason: str = ""
    stage: str = ""

    @property
    def is_partial(self) -> bool:
        return True

    def summary(self) -> str:
        base = super().summary()
        tag = "partial" if self.valid else "partial, no usable result"
        where = f" at {self.stage}" if self.stage else ""
        return f"{base} [{tag}: {self.reason}{where}]"
