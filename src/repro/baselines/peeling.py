"""Greedy peeling for k-clique density (Charikar-style).

The related-work section of the paper (§8) recalls that for the edge
densest subgraph (k=2) the greedy peel — repeatedly remove the
minimum-degree vertex and keep the best prefix seen — is a linear-time
1/2-approximation (Charikar 2000, Asahiro et al. 2000).  Its k-clique
generalisation peels by minimum *clique engagement* and achieves a 1/k
approximation (Tsourakakis 2015); it is the third approximation family
alongside the (k',Psi)-core and the convex-programming algorithms, and a
useful cheap baseline.

Unlike CoreApp — which returns the innermost core — peeling remembers the
*best* suffix of the peel order, so it can only do better.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import List, Optional, Tuple

from ..cliques.kclist import iter_k_cliques, per_vertex_counts
from ..cliques.ordered_view import OrderedGraphView, build_ordered_view
from ..errors import InvalidParameterError
from ..graph.graph import Graph
from ..options import RunOptions, warn_unsupported
from ..core.density import DensestSubgraphResult
from ..core.sctl import empty_result

__all__ = ["greedy_peeling"]


def greedy_peeling(
    graph: Graph,
    k: int,
    view: Optional[OrderedGraphView] = None,
    options: Optional[RunOptions] = None,
) -> DensestSubgraphResult:
    """Peel by minimum k-clique engagement; return the best suffix.

    Runs one peel of the whole graph.  At every step the remaining
    subgraph's clique count is maintained incrementally (removing ``v``
    destroys exactly the cliques through ``v``, i.e. the (k-1)-cliques of
    its remaining neighbourhood), so the density of every suffix is known
    exactly and the best one is returned.

    Guarantees ``density >= optimal / k``.  ``options`` is accepted for
    facade uniformity and ignored (one :class:`UserWarning` names any
    non-default knobs).
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    warn_unsupported(RunOptions.resolve(options), "Peel")
    n = graph.n
    if view is None:
        view = build_ordered_view(graph)
    engagement = per_vertex_counts(graph, k, view=view)
    remaining_cliques = sum(engagement) // k
    if remaining_cliques == 0:
        return empty_result(k, "Peel")

    alive = [True] * n
    heap: List[Tuple[int, int]] = [(engagement[v], v) for v in range(n)]
    heapq.heapify(heap)
    peel_order: List[int] = []
    best_density = Fraction(remaining_cliques, n)
    best_suffix_start = 0
    best_count = remaining_cliques
    counts_at_step: List[int] = []

    removed = 0
    while removed < n:
        count, v = heapq.heappop(heap)
        if not alive[v] or count != engagement[v]:
            continue
        counts_at_step.append(remaining_cliques)
        peel_order.append(v)
        alive[v] = False
        removed += 1
        if count:
            remaining_cliques -= count
            _discount(graph, k, v, alive, engagement, heap)
        survivors = n - removed
        if survivors and remaining_cliques:
            density = Fraction(remaining_cliques, survivors)
            if density > best_density:
                best_density = density
                best_suffix_start = removed
                best_count = remaining_cliques

    chosen = sorted(set(range(n)) - set(peel_order[:best_suffix_start]))
    return DensestSubgraphResult(
        vertices=chosen,
        clique_count=best_count,
        k=k,
        algorithm="Peel",
        stats={"peel_order": peel_order},
    )


def _discount(
    graph: Graph,
    k: int,
    v: int,
    alive: List[bool],
    engagement: List[int],
    heap: List[Tuple[int, int]],
) -> None:
    """Subtract the cliques through ``v`` from its alive co-members."""
    neighbourhood = sorted(u for u in graph.neighbors(v) if alive[u])
    if len(neighbourhood) < k - 1:
        return
    sub, originals = graph.induced_subgraph(neighbourhood)
    for clique in iter_k_cliques(sub, k - 1):
        for local in clique:
            u = originals[local]
            engagement[u] -= 1
            heapq.heappush(heap, (engagement[u], u))
