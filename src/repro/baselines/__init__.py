"""State-of-the-art baselines the paper compares against."""

from .coreapp import core_app, core_exact, psi_core_decomposition
from .kcl import kcl, kcl_sample
from .kcl_exact import kcl_exact
from .peeling import greedy_peeling

__all__ = [
    "kcl",
    "kcl_sample",
    "kcl_exact",
    "core_app",
    "core_exact",
    "psi_core_decomposition",
    "greedy_peeling",
]
