"""CoreApp and CoreExact: the (k',Psi)-core baselines (Fang et al., §3.1).

The (k',Psi)-core is the maximal subgraph in which every vertex lies in at
least ``k'`` k-cliques.  :func:`psi_core_decomposition` peels vertices in
order of minimum clique engagement (the hypergraph analogue of the k-core
peel), recounting locally: removing ``v`` only disturbs the cliques through
``v``, i.e. the (k-1)-cliques of its alive neighbourhood.

* :func:`core_app` returns the (k'_max, Psi)-core — the paper's 1/k
  approximation, whose practical accuracy Table 3 shows to be well below
  the convex-programming algorithms.
* :func:`core_exact` reduces the graph to the (ceil(l), Psi)-core for the
  CoreApp lower bound ``l``, then solves each connected component exactly
  with the min-cut oracle, skipping components whose Lemma 3 bound is
  already dominated.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import List, Optional, Tuple

from ..cliques.kclist import count_k_cliques, iter_k_cliques, per_vertex_counts
from ..cliques.ordered_view import OrderedGraphView, build_ordered_view
from ..errors import InvalidParameterError
from ..flow.densest import count_cliques_inside, exact_densest_from_cliques
from ..graph.components import connected_components
from ..graph.graph import Graph
from ..options import RunOptions, warn_unsupported
from ..core.density import DensestSubgraphResult
from ..core.reductions import engagement_threshold
from ..core.sctl import empty_result

__all__ = ["psi_core_decomposition", "core_app", "core_exact"]


def psi_core_decomposition(
    graph: Graph, k: int, view: Optional[OrderedGraphView] = None
) -> List[int]:
    """Per-vertex (k',Psi)-core numbers by minimum-engagement peeling.

    ``core[v] >= k'`` iff ``v`` belongs to the (k',Psi)-core.  Vertices in
    no k-clique get core number 0.
    """
    if k < 2:
        raise InvalidParameterError(f"k must be >= 2, got {k}")
    n = graph.n
    engagement = per_vertex_counts(graph, k, view=view)
    core = [0] * n
    alive = [True] * n
    heap: List[Tuple[int, int]] = [(engagement[v], v) for v in range(n)]
    heapq.heapify(heap)
    current = 0
    removed = 0
    while removed < n:
        count, v = heapq.heappop(heap)
        if not alive[v] or count != engagement[v]:
            continue  # stale heap entry
        current = max(current, count)
        core[v] = current
        alive[v] = False
        removed += 1
        if count:
            _discount_neighbours(graph, k, v, alive, engagement, heap)
    return core


def _discount_neighbours(
    graph: Graph,
    k: int,
    v: int,
    alive: List[bool],
    engagement: List[int],
    heap: List[Tuple[int, int]],
) -> None:
    """Subtract the cliques through ``v`` from its alive co-members.

    Cliques through ``v`` correspond to (k-1)-cliques of the subgraph
    induced by the alive neighbourhood of ``v``.
    """
    neighbourhood = sorted(u for u in graph.neighbors(v) if alive[u])
    if len(neighbourhood) < k - 1:
        return
    sub, originals = graph.induced_subgraph(neighbourhood)
    for clique in iter_k_cliques(sub, k - 1):
        for local in clique:
            u = originals[local]
            engagement[u] -= 1
            heapq.heappush(heap, (engagement[u], u))


def core_app(
    graph: Graph,
    k: int,
    view: Optional[OrderedGraphView] = None,
    options: Optional[RunOptions] = None,
) -> DensestSubgraphResult:
    """CoreApp: return the (k'_max, Psi)-core as the approximate answer.

    ``options`` is accepted for facade uniformity and ignored (one
    :class:`UserWarning` names any non-default knobs).
    """
    warn_unsupported(RunOptions.resolve(options), "CoreApp")
    if view is None:
        view = build_ordered_view(graph)
    core = psi_core_decomposition(graph, k, view=view)
    k_prime_max = max(core, default=0)
    if k_prime_max == 0:
        return empty_result(k, "CoreApp")
    chosen = sorted(v for v in graph.vertices() if core[v] >= k_prime_max)
    subgraph, _ = graph.induced_subgraph(chosen)
    clique_count = count_k_cliques(subgraph, k)
    return DensestSubgraphResult(
        vertices=chosen,
        clique_count=clique_count,
        k=k,
        algorithm="CoreApp",
        stats={"k_prime_max": k_prime_max, "core_numbers": core},
    )


def core_exact(
    graph: Graph,
    k: int,
    view: Optional[OrderedGraphView] = None,
    options: Optional[RunOptions] = None,
) -> DensestSubgraphResult:
    """CoreExact: core-reduced, per-component exact search.

    Lemma 1 places the optimum inside the (ceil(rho_opt), Psi)-core, which
    by core nesting lies inside the (ceil(l), Psi)-core for any achieved
    density ``l``; every connected component of that core is then solved
    exactly with the min-cut oracle unless its Lemma 3 bound is dominated.
    ``options`` is accepted for facade uniformity and ignored (one
    :class:`UserWarning` names any non-default knobs).
    """
    warn_unsupported(RunOptions.resolve(options), "CoreExact")
    if view is None:
        view = build_ordered_view(graph)
    app = core_app(graph, k, view=view)
    if not app.vertices:
        return empty_result(k, "CoreExact", exact=True)
    core = app.stats["core_numbers"]
    best_vertices = app.vertices
    best_count = app.clique_count
    best_density = app.density_fraction
    threshold = engagement_threshold(best_density)
    scope = sorted(v for v in graph.vertices() if core[v] >= threshold)
    reduced, originals = graph.induced_subgraph(scope)
    components_checked = 0
    for component in connected_components(reduced):
        cliques = _component_cliques(reduced, component, originals, k)
        if not cliques:
            continue
        engagement: dict = {}
        for clique in cliques:
            for u in clique:
                engagement[u] = engagement.get(u, 0) + 1
        bound = Fraction(max(engagement.values()), k)
        if bound <= best_density:
            continue  # Lemma 3: this component cannot win
        components_checked += 1
        universe = sorted({u for clique in cliques for u in clique})
        warm = [v for v in best_vertices if v in set(universe)] or None
        solution, density = exact_densest_from_cliques(
            cliques, universe, warm_start=warm
        )
        if density > best_density:
            best_vertices = solution
            best_count = count_cliques_inside(cliques, solution)
            best_density = density
    return DensestSubgraphResult(
        vertices=sorted(best_vertices),
        clique_count=best_count,
        k=k,
        algorithm="CoreExact",
        upper_bound=float(best_density),
        exact=True,
        stats={
            "core_scope": len(scope),
            "components_checked": components_checked,
            "k_prime_max": app.stats["k_prime_max"],
        },
    )


def _component_cliques(
    reduced: Graph, component: List[int], originals: List[int], k: int
) -> List[Tuple[int, ...]]:
    """k-cliques of one component, mapped back to original vertex ids."""
    sub, locals_ = reduced.induced_subgraph(component)
    return [
        tuple(originals[locals_[u]] for u in clique)
        for clique in iter_k_cliques(sub, k)
    ]
