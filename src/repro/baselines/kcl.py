"""The KCL baseline (Sun et al., KClist++ / Algorithm 1 of the paper).

KCL runs the same Frank–Wolfe-flavoured update rule as SCTL — every
k-clique grants +1 to its minimum-weight vertex, ``T`` rounds, best prefix
wins — but it has no index: each round re-enumerates every k-clique from
scratch with KCList, and so does the final extraction pass.  That repeated
enumeration is precisely the inefficiency the SCT*-Index removes, so this
implementation deliberately keeps it (one fresh KCList sweep per round).

``kcl_sample`` adds the sampling strategy evaluated in the paper's Table 5:
reservoir-sample ``sigma`` cliques from one enumeration pass, refine on
the sample, then recover the reported density by enumerating the cliques
of the chosen induced subgraph.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..cliques.kclist import count_k_cliques, iter_k_cliques
from ..cliques.ordered_view import OrderedGraphView, build_ordered_view
from ..errors import InvalidParameterError
from ..graph.graph import Graph
from ..options import RunOptions, warn_unsupported
from ..core.density import DensestSubgraphResult
from ..core.extraction import best_prefix_from_cliques
from ..core.sctl import empty_result

__all__ = ["kcl", "kcl_sample"]


def kcl(
    graph: Graph,
    k: int,
    iterations: int = 10,
    view: Optional[OrderedGraphView] = None,
    options: Optional[RunOptions] = None,
) -> DensestSubgraphResult:
    """Run KCL (Algorithm 1): ``T`` enumeration rounds plus extraction.

    Parameters
    ----------
    graph:
        The input graph.
    k:
        Clique size.
    iterations:
        Number of rounds ``T``; each round re-runs KCList.
    view:
        Optional pre-built ordered view (the orientation is the one piece
        of preprocessing KCL legitimately shares across rounds).
    options:
        Accepted for facade uniformity; KCL predates the SCT pipeline,
        so every :class:`~repro.options.RunOptions` knob is ignored (one
        :class:`UserWarning` names any non-default knobs).
    """
    if iterations < 1:
        raise InvalidParameterError(f"iterations must be >= 1, got {iterations}")
    warn_unsupported(RunOptions.resolve(options), "KCL")
    if view is None:
        view = build_ordered_view(graph)
    weights = [0] * graph.n
    any_clique = False
    for _ in range(iterations):
        any_clique = False
        for clique in iter_k_cliques(graph, k, view=view):
            any_clique = True
            u = min(clique, key=weights.__getitem__)
            weights[u] += 1
    if not any_clique:
        return empty_result(k, "KCL")
    # final extraction pass: one more enumeration (Lines 6-10)
    prefix = best_prefix_from_cliques(iter_k_cliques(graph, k, view=view), weights)
    upper = max(max(weights) / iterations, prefix.density)
    return DensestSubgraphResult(
        vertices=sorted(prefix.vertices),
        clique_count=prefix.clique_count,
        k=k,
        algorithm="KCL",
        iterations=iterations,
        upper_bound=upper,
        stats={"weights": weights},
    )


def kcl_sample(
    graph: Graph,
    k: int,
    sample_size: int,
    iterations: int = 10,
    seed: int = 0,
    view: Optional[OrderedGraphView] = None,
    options: Optional[RunOptions] = None,
) -> DensestSubgraphResult:
    """KCL on a uniform reservoir sample of ``sample_size`` k-cliques.

    One full enumeration pass fills the reservoir; refinement then touches
    only sampled cliques.  Density recovery enumerates the cliques of the
    chosen induced subgraph (the step SCTL*-Sample replaces with an index
    lookup).  ``options`` is accepted for facade uniformity and ignored
    (one :class:`UserWarning` names any non-default knobs).
    """
    if sample_size < 1:
        raise InvalidParameterError(f"sample_size must be >= 1, got {sample_size}")
    if iterations < 1:
        raise InvalidParameterError(f"iterations must be >= 1, got {iterations}")
    warn_unsupported(RunOptions.resolve(options), "KCL-Sample")
    if view is None:
        view = build_ordered_view(graph)
    rng = random.Random(seed)
    reservoir: List[Tuple[int, ...]] = []
    seen = 0
    for clique in iter_k_cliques(graph, k, view=view):
        seen += 1
        if len(reservoir) < sample_size:
            reservoir.append(clique)
        else:
            j = rng.randrange(seen)
            if j < sample_size:
                reservoir[j] = clique
    if not reservoir:
        return empty_result(k, "KCL-Sample")
    weights = [0] * graph.n
    for _ in range(iterations):
        for clique in reservoir:
            u = min(clique, key=weights.__getitem__)
            weights[u] += 1
    sampled_vertices = sorted({v for c in reservoir for v in c})
    prefix = best_prefix_from_cliques(
        reservoir, weights, restrict_to=sampled_vertices
    )
    chosen = sorted(prefix.vertices)
    if not chosen:
        return empty_result(k, "KCL-Sample")
    # recovery by enumeration on the induced subgraph
    subgraph, _ = graph.induced_subgraph(chosen)
    true_count = count_k_cliques(subgraph, k)
    return DensestSubgraphResult(
        vertices=chosen,
        clique_count=true_count,
        k=k,
        algorithm="KCL-Sample",
        iterations=iterations,
        stats={
            "sampled_cliques": len(reservoir),
            "total_cliques_seen": seen,
            "weights": weights,
        },
    )
