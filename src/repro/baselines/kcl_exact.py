"""KCL-Exact: the Frank–Wolfe exact baseline (Sun et al., §3.2).

The large-memory variant of KCL stores, for every k-clique, how its unit
weight is split across its ``k`` members (``alpha``) and refines the split
with Frank–Wolfe steps.  Candidates are only submitted to the (expensive)
max-flow optimality test when they form a *stable set*:

1. every vertex inside the candidate outweighs every vertex outside, and
2. every clique straddling the boundary keeps all its weight inside.

If the test fails, the iteration budget doubles and refinement continues.
The per-clique storage is exactly the memory bottleneck the paper reports
(``out of memory`` on LiveJournal in Table 6); we keep the design faithful
and simply let it be expensive.  A bounded number of doublings is followed
by a guaranteed-exact fallback (iterated min-cut), so the function always
returns a certified optimum; ``stats["fallback"]`` records whether the
stable-set route succeeded on its own.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from ..cliques.kclist import iter_k_cliques
from ..cliques.ordered_view import OrderedGraphView, build_ordered_view
from ..errors import InvalidParameterError
from ..flow.densest import (
    count_cliques_inside,
    exact_densest_from_cliques,
    find_denser_subgraph,
)
from ..graph.graph import Graph
from ..options import RunOptions, warn_unsupported
from ..core.density import DensestSubgraphResult
from ..core.extraction import best_prefix_from_cliques
from ..core.frank_wolfe import frank_wolfe
from ..core.sctl import empty_result

__all__ = ["kcl_exact"]

_STABILITY_EPS = 1e-9


def kcl_exact(
    graph: Graph,
    k: int,
    initial_iterations: int = 10,
    max_total_iterations: int = 640,
    view: Optional[OrderedGraphView] = None,
    options: Optional[RunOptions] = None,
) -> DensestSubgraphResult:
    """Exact k-clique densest subgraph via the Frank–Wolfe baseline.

    Parameters
    ----------
    graph:
        The input graph.
    k:
        Clique size.
    initial_iterations:
        First refinement budget; doubled after every failed verification.
    max_total_iterations:
        Cap on total Frank–Wolfe rounds before the exact fallback engages.
    view:
        Optional pre-built ordered view.
    options:
        Accepted for facade uniformity; every
        :class:`~repro.options.RunOptions` knob is ignored (one
        :class:`UserWarning` names any non-default knobs).
    """
    if initial_iterations < 1:
        raise InvalidParameterError(
            f"initial_iterations must be >= 1, got {initial_iterations}"
        )
    warn_unsupported(RunOptions.resolve(options), "KCL-Exact")
    if view is None:
        view = build_ordered_view(graph)
    cliques: List[Tuple[int, ...]] = list(iter_k_cliques(graph, k, view=view))
    if not cliques:
        return empty_result(k, "KCL-Exact", exact=True)
    vertices = list(graph.vertices())

    # the per-clique weight split (the memory hog) lives in the shared
    # Frank-Wolfe state; each round continues the same step-size schedule
    state = frank_wolfe(cliques, graph.n, iterations=0)
    budget = initial_iterations
    flow_checks = 0
    while state.rounds < max_total_iterations:
        frank_wolfe(cliques, graph.n, iterations=budget, state=state)
        weights = state.weights
        prefix = best_prefix_from_cliques(cliques, weights)
        candidate = sorted(prefix.vertices)
        if candidate and _is_stable(candidate, weights, cliques, state.alpha):
            flow_checks += 1
            density = Fraction(prefix.clique_count, len(candidate))
            if find_denser_subgraph(cliques, vertices, density) is None:
                return DensestSubgraphResult(
                    vertices=candidate,
                    clique_count=prefix.clique_count,
                    k=k,
                    algorithm="KCL-Exact",
                    iterations=state.rounds,
                    upper_bound=float(density),
                    exact=True,
                    stats={
                        "cliques_stored": len(cliques),
                        "flow_checks": flow_checks,
                        "fallback": False,
                    },
                )
        budget *= 2

    # guaranteed-exact fallback: iterated min-cut from the best candidate
    prefix = best_prefix_from_cliques(cliques, state.weights)
    warm = sorted(prefix.vertices) or None
    solution, density = exact_densest_from_cliques(cliques, vertices, warm_start=warm)
    return DensestSubgraphResult(
        vertices=solution,
        clique_count=count_cliques_inside(cliques, solution),
        k=k,
        algorithm="KCL-Exact",
        iterations=state.rounds,
        upper_bound=float(density),
        exact=True,
        stats={
            "cliques_stored": len(cliques),
            "flow_checks": flow_checks + 1,
            "fallback": True,
        },
    )


def _is_stable(
    candidate: List[int],
    weights: List[float],
    cliques: List[Tuple[int, ...]],
    alpha: List[List[float]],
) -> bool:
    """The stable-set test of Sun et al. (§3.2)."""
    inside = set(candidate)
    min_inside = min(weights[v] for v in inside)
    max_outside = max(
        (weights[v] for v in range(len(weights)) if v not in inside),
        default=float("-inf"),
    )
    if min_inside <= max_outside + _STABILITY_EPS:
        return False
    for ci, clique in enumerate(cliques):
        members_inside = sum(1 for v in clique if v in inside)
        if members_inside == 0 or members_inside == len(clique):
            continue
        split = alpha[ci]
        outside_mass = sum(
            split[pos] for pos, v in enumerate(clique) if v not in inside
        )
        if outside_mass > _STABILITY_EPS:
            return False
    return True
