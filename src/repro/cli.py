"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro.cli datasets
    python -m repro.cli build-index dataset:email -o email.sct
    python -m repro.cli query dataset:email -k 7 --method sctl*
    python -m repro.cli query graph.txt -k 4 --index graph.sct --method sctl*-exact
    python -m repro.cli query dataset:email -k 7 --metrics run.json --trace run.jsonl
    python -m repro.cli profile dataset:pokec --iterations 10
    python -m repro.cli stats dataset:email --json
    python -m repro.cli serve --port 8642

Machine-readable outputs (``query --json``, ``profile --json``,
``stats --json``) carry a versioned ``"schema"`` field
(``repro/result-v1``, ``repro/profile-v1``, ``repro/stats-v1``) that
``python -m repro.obs.validate --result`` checks.  ``serve`` runs the
:mod:`repro.service` daemon (see ``docs/service.md``).

Graph arguments accept either a path to an edge-list file or
``dataset:<name>`` for one of the bundled synthetic datasets.

The index/query/profile subcommands expose the ``repro.obs`` layer:
``--metrics`` prints a stage-breakdown table (or writes a JSON snapshot
when given a path) and ``--trace PATH`` writes the JSON-lines event log
that ``python -m repro.obs.validate`` checks.

The build-index/query subcommands expose the ``repro.resilience`` layer:
``--time-budget SECONDS`` arms a wall-clock budget (SIGINT/SIGTERM cancel
it cooperatively), ``--checkpoint DIR`` snapshots progress atomically and
``--resume`` restarts from those snapshots.  Exit codes: 0 success,
1 error, 2 usage or index/graph mismatch, 3 budget exhausted with nothing
usable, 4 budget exhausted but a valid best-so-far result was printed.

The build-index/query/profile subcommands also take ``--workers N`` to
shard the index build and the per-iteration path sweeps over a process
pool (``repro.parallel``); results stay byte-identical to serial runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import contextmanager, nullcontext
from typing import ContextManager, Iterator, Optional, Tuple

from . import densest_subgraph
from .analysis import extract_near_clique
from .bench import format_table
from .core import SCTIndex, top_dense_subgraphs
from .core.profile import density_profile
from .datasets import dataset_names, get_spec, load_dataset
from .errors import BudgetExhausted, ReproError
from .graph import Graph, read_edge_list
from .graph.stats import summarize
from .obs import NULL_RECORDER, MetricsRecorder, Recorder
from .options import RunOptions
from .registry import available_methods
from .resilience import NULL_BUDGET, Budget, RunBudget
from .results import PROFILE_SCHEMA, STATS_SCHEMA

__all__ = ["main", "build_parser"]

# Exit codes: 0 success, 1 error, 2 usage / input mismatch,
# EXIT_EXHAUSTED when a run budget expired with nothing usable,
# EXIT_PARTIAL when it expired but a valid best-so-far result was printed.
EXIT_EXHAUSTED = 3
EXIT_PARTIAL = 4


def _load_graph(spec: str) -> Graph:
    """Resolve a graph argument: ``dataset:<name>`` or an edge-list path."""
    if spec.startswith("dataset:"):
        return load_dataset(spec.split(":", 1)[1])
    return read_edge_list(spec)


def _add_obs_flags(subparser: argparse.ArgumentParser) -> None:
    """Attach the shared observability flags to a subcommand."""
    subparser.add_argument(
        "--metrics", nargs="?", const="-", metavar="PATH",
        help="collect stage metrics; print a summary table, or write a "
             "JSON snapshot when PATH is given",
    )
    subparser.add_argument(
        "--trace", metavar="PATH",
        help="write a JSON-lines event trace of the run to PATH",
    )


def _add_parallel_flag(subparser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--workers`` flag to a subcommand."""
    subparser.add_argument(
        "--workers", type=int, metavar="N", default=None,
        help="shard the index build and path sweeps over N worker "
             "processes (results stay byte-identical to serial)",
    )


def _parallel_from(args: argparse.Namespace):
    """The ``parallel=`` value a subcommand's flags ask for."""
    return getattr(args, "workers", None)


def _add_resilience_flags(subparser: argparse.ArgumentParser) -> None:
    """Attach the shared run-budget / checkpoint flags to a subcommand."""
    subparser.add_argument(
        "--time-budget", type=float, metavar="SECONDS", default=None,
        help="wall-clock budget; on expiry the run degrades to its best "
             "result so far instead of running to completion",
    )
    subparser.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="directory for periodic atomic state snapshots",
    )
    subparser.add_argument(
        "--resume", action="store_true",
        help="resume from the snapshots in --checkpoint DIR",
    )


def _budget_from(args: argparse.Namespace) -> Tuple[Budget, ContextManager]:
    """The budget a subcommand's flags ask for, plus its signal scope.

    With ``--time-budget`` a :class:`RunBudget` is armed and SIGINT/SIGTERM
    cancel it cooperatively (first signal degrades gracefully); without it
    the free :data:`NULL_BUDGET` is returned with a no-op scope.
    """
    seconds = getattr(args, "time_budget", None)
    if seconds is None:
        return NULL_BUDGET, nullcontext()
    budget = RunBudget(wall_seconds=seconds)
    return budget, budget.on_signal()


def _metrics_report(recorder: MetricsRecorder) -> str:
    """Human-readable table of everything an enabled recorder collected."""
    rows = []
    for name, value in sorted(recorder.counters.items()):
        rows.append(["counter", name, value])
    for name, value in sorted(recorder.gauges.items()):
        rows.append(["gauge", name, value])
    for path, (count, seconds) in sorted(recorder.span_totals().items()):
        rendered = f"{seconds:.3f}"
        if rendered == "0.000":  # sub-ms: don't misread as "never ran"
            rendered = "<0.001"
        rows.append(
            ["span", path, f"{rendered}s" + (f" x{count}" if count > 1 else "")]
        )
    return format_table(["kind", "name", "value"], rows, title="metrics")


@contextmanager
def _observability(args: argparse.Namespace) -> Iterator[Recorder]:
    """Build the recorder the subcommand's flags ask for.

    Yields :data:`NULL_RECORDER` when neither ``--metrics`` nor ``--trace``
    was given; otherwise yields a :class:`MetricsRecorder` and, on exit,
    closes the trace sink and prints or writes the metrics snapshot.
    """
    metrics = getattr(args, "metrics", None)
    trace = getattr(args, "trace", None)
    if metrics is None and trace is None:
        yield NULL_RECORDER
        return
    sink = open(trace, "w", encoding="utf-8") if trace else None
    recorder = MetricsRecorder(sink=sink)
    try:
        yield recorder
    finally:
        if sink is not None:
            sink.close()
        if metrics == "-":
            print(_metrics_report(recorder))
        elif metrics is not None:
            recorder.write_json(metrics)


def _cmd_datasets(_args: argparse.Namespace) -> int:
    rows = []
    for name in dataset_names():
        spec = get_spec(name)
        graph = load_dataset(name)
        rows.append([name, spec.paper_counterpart, graph.n, graph.m, spec.role])
    print(format_table(
        ["name", "paper counterpart", "|V|", "|E|", "role"], rows,
        title="bundled datasets",
    ))
    return 0


def _cmd_build_index(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    budget, signal_scope = _budget_from(args)
    with _observability(args) as recorder, signal_scope:
        start = time.perf_counter()
        try:
            index = SCTIndex.build(
                graph, threshold=args.threshold,
                options=RunOptions(
                    recorder=recorder, budget=budget,
                    checkpoint=args.checkpoint, resume=args.resume,
                    parallel=_parallel_from(args),
                ),
            )
        except BudgetExhausted as exc:
            print(f"budget exhausted: {exc}", file=sys.stderr)
            if args.checkpoint:
                print(
                    f"partial build state saved under {args.checkpoint}; "
                    "rerun with --resume to continue",
                    file=sys.stderr,
                )
            return EXIT_EXHAUSTED
        elapsed = time.perf_counter() - start
        index.save(args.output, format=args.format)
    print(f"built {index!r} in {elapsed:.3f}s -> {args.output}")
    return 0


def _graph_request_fields(spec: str) -> dict:
    """The ``dataset``/``path`` request fields for a graph argument."""
    if spec.startswith("dataset:"):
        return {"dataset": spec.split(":", 1)[1]}
    return {"path": spec}


def _cmd_query_remote(args: argparse.Namespace) -> int:
    """``query --endpoint``: ask a running daemon instead of computing.

    Retries/backoff (including 429 + Retry-After from admission control)
    live in :class:`~repro.service.ServiceClient`; envelope codes map
    onto the same exit codes the local path uses.
    """
    from .errors import ServiceUnavailable
    from .service import ServiceClient

    client = ServiceClient(
        args.endpoint,
        timeout_s=(args.time_budget or 30.0) + 30.0,
    )
    fields = dict(
        _graph_request_fields(args.graph),
        k=args.k, method=args.method, iterations=args.iterations,
        seed=args.seed,
    )
    if args.sample_size is not None:
        fields["sample_size"] = args.sample_size
    if args.time_budget is not None:
        fields["timeout_s"] = args.time_budget
    try:
        env = client.query(**fields)
    except ServiceUnavailable as exc:
        print(f"service unavailable: {exc}", file=sys.stderr)
        return EXIT_EXHAUSTED
    code = env.get("code", 1)
    if env.get("error"):
        print(f"error: {env['error']}", file=sys.stderr)
        return code if code in (2, EXIT_EXHAUSTED, EXIT_PARTIAL) else 1
    if args.json:
        print(json.dumps(env, indent=2))
    else:
        result = env.get("result", {})
        print(
            f"k={result.get('k')} density={result.get('density')} "
            f"size={len(result.get('vertices', []))} "
            f"(cached={env.get('cached')}, coalesced={env.get('coalesced')}, "
            f"{env.get('query_time_s', 0):.3f}s)"
        )
        if args.show_vertices:
            print(f"vertices: {result.get('vertices')}")
    return code


def _cmd_query(args: argparse.Namespace) -> int:
    if getattr(args, "endpoint", None):
        return _cmd_query_remote(args)
    graph = _load_graph(args.graph)
    index: Optional[SCTIndex] = None
    if args.index:
        index = SCTIndex.load(args.index)
        if index.n_vertices != graph.n:
            print(
                f"error: index covers {index.n_vertices} vertices but the "
                f"graph has {graph.n}",
                file=sys.stderr,
            )
            return 2
    budget, signal_scope = _budget_from(args)
    with _observability(args) as recorder, signal_scope:
        start = time.perf_counter()
        result = densest_subgraph(
            graph,
            args.k,
            method=args.method,
            iterations=args.iterations,
            index=index,
            sample_size=args.sample_size,
            seed=args.seed,
            options=RunOptions(
                recorder=recorder, budget=budget,
                checkpoint=args.checkpoint, resume=args.resume,
                parallel=_parallel_from(args),
            ),
        )
        elapsed = time.perf_counter() - start
        if args.json:
            payload = result.to_dict()
            payload["query_time_s"] = elapsed
            print(json.dumps(payload, indent=2))
        else:
            print(result.summary())
            if result.upper_bound is not None:
                print(
                    f"upper bound on optimal density: {result.upper_bound:.6f}"
                )
            print(f"query time: {elapsed:.3f}s")
            if args.show_vertices:
                print(f"vertices: {result.vertices}")
        if result.is_partial:
            if not result.valid:
                print(
                    f"budget exhausted at {result.stage or 'startup'} "
                    "before any usable result",
                    file=sys.stderr,
                )
                return EXIT_EXHAUSTED
            print(
                "budget exhausted: reported the best result achieved "
                f"within the budget ({result.reason})",
                file=sys.stderr,
            )
            return EXIT_PARTIAL
    return 0


def _parse_edge_flags(values, flag: str):
    """``--insert U,V`` occurrences as ``[u, v]`` pairs (or raise)."""
    from .errors import InvalidParameterError

    edges = []
    for value in values:
        parts = value.replace(",", " ").split()
        try:
            u, v = (int(part) for part in parts)
        except ValueError:
            raise InvalidParameterError(
                f"{flag} expects an edge as 'U,V', got {value!r}"
            ) from None
        edges.append([u, v])
    return edges


def _cmd_update(args: argparse.Namespace) -> int:
    """``update``: apply edge inserts/deletes through a running daemon.

    Updates mutate server state, so they are never retried on connection
    errors (the request may have been applied); admission rejections
    (429/503) are safe to retry and are.
    """
    from .errors import InvalidParameterError, ServiceUnavailable
    from .service import ServiceClient

    try:
        inserts = _parse_edge_flags(args.insert, "--insert")
        deletes = _parse_edge_flags(args.delete, "--delete")
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = ServiceClient(
        args.endpoint,
        timeout_s=(args.time_budget or 30.0) + 30.0,
    )
    fields = dict(_graph_request_fields(args.graph))
    if args.method is not None:
        fields["method"] = args.method
    if args.time_budget is not None:
        fields["timeout_s"] = args.time_budget
    try:
        env = client.update(inserts=inserts, deletes=deletes, **fields)
    except ServiceUnavailable as exc:
        print(f"service unavailable: {exc}", file=sys.stderr)
        return EXIT_EXHAUSTED
    code = env.code
    if env.error:
        print(f"error: {env.error}", file=sys.stderr)
        return code if code in (2, EXIT_EXHAUSTED, EXIT_PARTIAL) else 1
    if args.json:
        print(json.dumps(env, indent=2))
        return code
    if not env.applied:
        print(
            "update not applied: the old index is still serving "
            f"({env.get('reason')})",
            file=sys.stderr,
        )
        return code
    summary = env.update
    print(
        f"applied +{summary.get('inserts', 0)}/-{summary.get('deletes', 0)} "
        f"edges, graph_version={env.graph_version} "
        f"(dirty {summary.get('dirty_roots', 0)}/{summary.get('n_roots', 0)} "
        f"roots, {env.invalidated_results} results invalidated, "
        f"{env.retained_results} retained, "
        f"{env.get('update_time_s', 0):.3f}s)"
    )
    return code


def _cmd_profile(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    with _observability(args) as recorder:
        opts = RunOptions(recorder=recorder, parallel=_parallel_from(args))
        index = (
            SCTIndex.load(args.index) if args.index
            else SCTIndex.build(graph, options=opts)
        )
        profile = density_profile(
            index, iterations=args.iterations, options=opts
        )
        if args.json:
            payload = {
                "schema": PROFILE_SCHEMA,
                "k_max": index.max_clique_size,
                "densest_k": profile.densest_k(),
                "rows": [
                    {
                        "k": k,
                        "size": size,
                        "clique_count": count,
                        "density": density,
                    }
                    for k, size, count, density in profile.as_rows()
                ],
            }
            print(json.dumps(payload, indent=2))
            return 0
        rows = [
            [k, size, count, f"{density:.4f}"]
            for k, size, count, density in profile.as_rows()
        ]
        print(format_table(
            ["k", "|S|", "k-cliques", "density"], rows,
            title=f"density profile (k_max={index.max_clique_size})",
        ))
        print(f"best k by density: {profile.densest_k()}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    summary = summarize(graph)
    if args.json:
        payload = {"schema": STATS_SCHEMA}
        payload.update(summary.to_dict())
        if args.kmax:
            index = SCTIndex.build(graph)
            payload["k_max"] = index.max_clique_size
            payload["sct_tree_nodes"] = index.n_tree_nodes
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        ["vertices", summary.n],
        ["edges", summary.m],
        ["min / max degree", f"{summary.min_degree} / {summary.max_degree}"],
        ["mean degree", f"{summary.mean_degree:.2f}"],
        ["triangles", summary.triangles],
        ["average clustering", f"{summary.average_clustering:.4f}"],
        ["transitivity", f"{summary.transitivity:.4f}"],
        ["edge density", f"{summary.edge_density:.6f}"],
    ]
    if args.kmax:
        index = SCTIndex.build(graph)
        rows.append(["k_max (max clique size)", index.max_clique_size])
        rows.append(["SCT*-Index tree nodes", index.n_tree_nodes])
    print(format_table(["statistic", "value"], rows, title="graph statistics"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # lazy: the daemon pulls in threading/http machinery no other
    # subcommand needs
    if args.role == "router" or args.fleet is not None:
        from .service import serve_fleet

        # every non-routing serve flag is handed down to the spawned
        # workers verbatim, so a fleet worker is configured exactly
        # like a standalone daemon
        worker_args = []
        if args.cache_size != 4:
            worker_args += ["--cache-size", str(args.cache_size)]
        if args.result_cache_size != 128:
            worker_args += [
                "--result-cache-size", str(args.result_cache_size)
            ]
        if args.default_timeout is not None:
            worker_args += ["--default-timeout", str(args.default_timeout)]
        if args.max_concurrent is not None:
            worker_args += ["--max-concurrent", str(args.max_concurrent)]
        if args.max_queue != 16:
            worker_args += ["--max-queue", str(args.max_queue)]
        return serve_fleet(
            host=args.host,
            port=args.port,
            fleet=args.fleet if args.fleet is not None else 2,
            index_dir=args.index_dir,
            worker_args=worker_args,
        )

    from .service import serve_forever

    return serve_forever(
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        result_cache_size=args.result_cache_size,
        default_timeout_s=args.default_timeout,
        workers=_parallel_from(args),
        trace_path=args.trace,
        index_dir=args.index_dir,
        access_log_path=args.access_log,
        max_concurrent=args.max_concurrent,
        max_queue=args.max_queue,
        worker_id=args.worker_id,
    )


def _cmd_near_clique(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    region = extract_near_clique(
        graph, args.k, exact=not args.approximate,
        iterations=args.iterations, seed=args.seed,
    )
    print(f"near-clique on {len(region.members)} vertices "
          f"(k={args.k}, density {region.density:.4f}, "
          f"completeness {region.completeness:.2%})")
    print(f"members: {region.members}")
    if region.missing_edges:
        shown = region.missing_edges[: args.max_predictions]
        print(f"top predicted edges ({len(shown)} of {len(region.missing_edges)}):")
        for u, v in shown:
            print(f"  {graph.label_of(u)} -- {graph.label_of(v)}")
    else:
        print("the region is a perfect clique — nothing to predict")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    regions = top_dense_subgraphs(
        graph, args.k, count=args.count, exact=not args.approximate,
        iterations=args.iterations, min_density=args.min_density,
        seed=args.seed,
    )
    if not regions:
        print("no dense regions found")
        return 0
    rows = [
        [i, r.size, r.clique_count, f"{r.density:.4f}"]
        for i, r in enumerate(regions, start=1)
    ]
    print(format_table(
        ["rank", "|S|", "k-cliques", "density"], rows,
        title=f"top dense regions (k={args.k})",
    ))
    if args.show_vertices:
        for i, region in enumerate(regions, start=1):
            print(f"#{i}: {region.vertices}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="k-clique densest subgraph detection (SCT*-Index)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the bundled synthetic datasets")

    build = sub.add_parser("build-index", help="build and save an SCT*-Index")
    build.add_argument("graph", help="edge-list path or dataset:<name>")
    build.add_argument("-o", "--output", required=True, help="output file")
    build.add_argument(
        "--threshold", type=int, default=0,
        help="partial SCT*-k'-Index threshold (0 = complete index)",
    )
    build.add_argument(
        "--format", type=int, choices=(1, 2), default=2,
        help="on-disk format: 2 = binary columns, mmap-loadable "
             "(default); 1 = legacy JSON-lines text",
    )
    _add_obs_flags(build)
    _add_resilience_flags(build)
    _add_parallel_flag(build)

    query = sub.add_parser("query", help="find a k-clique densest subgraph")
    query.add_argument("graph", help="edge-list path or dataset:<name>")
    query.add_argument("-k", type=int, required=True, help="clique size")
    query.add_argument(
        "--method", default="sctl*",
        help="algorithm from the method registry: "
             + ", ".join(available_methods())
             + " (aliases like sctl-star work too; extend with "
             "repro.register_method)",
    )
    query.add_argument("--index", help="pre-built index file to reuse")
    query.add_argument("--iterations", type=int, default=10)
    query.add_argument("--sample-size", type=int, default=None)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--show-vertices", action="store_true",
        help="print the vertex ids of the reported subgraph",
    )
    query.add_argument(
        "--json", action="store_true",
        help="emit the result as a versioned repro/result-v1 JSON payload",
    )
    query.add_argument(
        "--endpoint", metavar="URL",
        help="send the query to a running daemon (e.g. "
             "http://127.0.0.1:8642) instead of computing locally; "
             "retries with backoff on 429/503",
    )
    _add_obs_flags(query)
    _add_resilience_flags(query)
    _add_parallel_flag(query)

    update = sub.add_parser(
        "update",
        help="apply edge inserts/deletes on a daemon (POST /v1/update)",
    )
    update.add_argument(
        "graph",
        help="edge-list path or dataset:<name>, as the daemon resolves it",
    )
    update.add_argument(
        "--endpoint", metavar="URL", required=True,
        help="daemon base URL, e.g. http://127.0.0.1:8642",
    )
    update.add_argument(
        "--insert", action="append", default=[], metavar="U,V",
        help="edge to insert (repeatable)",
    )
    update.add_argument(
        "--delete", action="append", default=[], metavar="U,V",
        help="edge to delete (repeatable)",
    )
    update.add_argument(
        "--method", default=None,
        help="reject up front unless this method supports incremental "
             "updates (see repro.methods_supporting('update'))",
    )
    update.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; on exhaustion the daemon keeps the old "
             "index and answers code 4",
    )
    update.add_argument(
        "--json", action="store_true",
        help="emit the raw repro/service-v1 update envelope",
    )

    profile = sub.add_parser(
        "profile", help="densest subgraph for every k from one index"
    )
    profile.add_argument("graph", help="edge-list path or dataset:<name>")
    profile.add_argument("--index", help="pre-built index file to reuse")
    profile.add_argument("--iterations", type=int, default=10)
    profile.add_argument(
        "--json", action="store_true",
        help="emit the profile as a versioned repro/profile-v1 JSON payload",
    )
    _add_obs_flags(profile)
    _add_parallel_flag(profile)

    stats = sub.add_parser("stats", help="descriptive statistics of a graph")
    stats.add_argument("graph", help="edge-list path or dataset:<name>")
    stats.add_argument(
        "--kmax", action="store_true",
        help="also build the SCT*-Index and report k_max",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="emit the statistics as machine-readable JSON",
    )

    near = sub.add_parser(
        "near-clique",
        help="detect a near-clique and rank its missing edges",
    )
    near.add_argument("graph", help="edge-list path or dataset:<name>")
    near.add_argument("-k", type=int, required=True)
    near.add_argument("--approximate", action="store_true")
    near.add_argument("--iterations", type=int, default=10)
    near.add_argument("--seed", type=int, default=0)
    near.add_argument("--max-predictions", type=int, default=10)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived query daemon (repro.service)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8642,
        help="TCP port; 0 picks a free one and announces it (default 8642)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=4,
        help="max SCTIndex objects held in the LRU cache (default 4)",
    )
    serve.add_argument(
        "--result-cache-size", type=int, default=128,
        help="max finished query results kept for reuse (default 128)",
    )
    serve.add_argument(
        "--default-timeout", type=float, default=None,
        help="per-request wall-clock budget in seconds when the client "
             "sends none (default: unlimited)",
    )
    serve.add_argument(
        "--trace", metavar="PATH",
        help="write the server-wide JSON-lines trace to PATH",
    )
    serve.add_argument(
        "--index-dir", metavar="DIR",
        help="persist built indices as format-2 files under DIR; cold "
             "starts mmap them back instead of rebuilding",
    )
    serve.add_argument(
        "--access-log", metavar="PATH",
        help="append one structured JSON line per request to PATH "
             "(op, code, request_id, duration, cold/warm)",
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=None, metavar="N",
        help="admission control: at most N requests per endpoint class "
             "(query vs cold build) run at once; beyond N + queue the "
             "server answers 429 + Retry-After (default: unlimited)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=16, metavar="N",
        help="bounded admission wait queue per endpoint class "
             "(default 16; only meaningful with --max-concurrent)",
    )
    serve.add_argument(
        "--role", choices=("router", "worker"), default="worker",
        help="fleet role: 'router' runs the consistent-hash front and "
             "spawns --fleet workers; 'worker' (default) runs one "
             "standalone daemon, optionally tagged with --worker-id",
    )
    serve.add_argument(
        "--fleet", type=int, default=None, metavar="N",
        help="run a fleet: spawn N loopback workers behind a router "
             "on --port (implies --role router; SIGTERM drains all)",
    )
    serve.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="tag this worker's envelopes with served_by=ID "
             "(set automatically for --fleet-spawned workers)",
    )
    _add_parallel_flag(serve)

    top = sub.add_parser(
        "top", help="extract the top-s disjoint dense regions"
    )
    top.add_argument("graph", help="edge-list path or dataset:<name>")
    top.add_argument("-k", type=int, required=True)
    top.add_argument("--count", type=int, default=3)
    top.add_argument("--approximate", action="store_true")
    top.add_argument("--iterations", type=int, default=10)
    top.add_argument("--min-density", type=float, default=0.0)
    top.add_argument("--seed", type=int, default=0)
    top.add_argument("--show-vertices", action="store_true")

    return parser


_COMMANDS = {
    "datasets": _cmd_datasets,
    "build-index": _cmd_build_index,
    "query": _cmd_query,
    "update": _cmd_update,
    "profile": _cmd_profile,
    "stats": _cmd_stats,
    "serve": _cmd_serve,
    "near-clique": _cmd_near_clique,
    "top": _cmd_top,
}


def main(argv: Optional[list] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BudgetExhausted as exc:
        print(f"budget exhausted: {exc}", file=sys.stderr)
        return EXIT_EXHAUSTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
