"""Log-bucketed latency histograms for the observability layer.

Counters answer "how many" and span totals answer "how long in total",
but an operable service needs *distributions*: what is the warm-query
p99, how skewed are the per-chunk sweep times, did one slow flow round
hide behind an acceptable mean?  :class:`Histogram` is the primitive
behind every ``MetricsRecorder.observe`` call.

Design constraints, in order:

* **Fixed bucket boundaries.**  Every histogram built from
  :func:`default_bounds` shares the exact same float boundaries, so a
  worker process's snapshot merges into the parent *bucket-wise* with no
  re-binning and no loss — ``absorb`` is plain integer addition per
  bucket.  The boundaries follow a 1/2.5/5 log ladder from one
  microsecond to 5e8, wide enough for sub-millisecond path sweeps and
  for count-valued distributions (paths per round) alike.
* **Quantiles are a pure function of the buckets.**  ``quantile(q)``
  reads only ``(bounds, counts)`` — never raw samples — and returns the
  upper boundary of the bucket containing the q-th sample.  Anything
  that can see the buckets (the ``/v1/stats`` payload, a scraped
  ``/metrics`` exposition, a merged worker snapshot) therefore computes
  *identical* quantiles; there is no second, privileged estimator.
* **Prometheus-compatible semantics.**  Buckets are upper-inclusive
  (``value <= bound``, the exposition format's ``le``) and cumulative
  rendering plus ``_sum``/``_count`` fall straight out of
  :meth:`Histogram.snapshot` (see :mod:`repro.obs.exposition`).
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Histogram", "DEFAULT_BOUNDS", "default_bounds"]


def default_bounds() -> Tuple[float, ...]:
    """The shared log-bucket ladder: 1 / 2.5 / 5 per decade, 1e-6..5e8.

    Boundaries are constructed from decimal literals (``float("2.5e-4")``)
    rather than arithmetic, so every process — parent, pool worker, a
    test re-deriving them — lands on bit-identical floats and snapshots
    merge exactly.
    """
    return tuple(
        float(f"{mantissa}e{exponent}")
        for exponent in range(-6, 9)
        for mantissa in ("1", "2.5", "5")
    )


DEFAULT_BOUNDS: Tuple[float, ...] = default_bounds()


class Histogram:
    """A fixed-boundary log-bucketed histogram of non-negative samples.

    ``counts`` has one entry per boundary plus a final overflow bucket
    (Prometheus's ``+Inf``).  Bucket ``i`` holds samples with
    ``value <= bounds[i]`` (and ``value > bounds[i-1]`` for ``i > 0``).
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Optional[Sequence[float]] = None):
        if bounds is None:
            self.bounds: Tuple[float, ...] = DEFAULT_BOUNDS
        else:
            self.bounds = tuple(float(b) for b in bounds)
            if not self.bounds:
                raise ValueError("a histogram needs at least one boundary")
            if any(
                b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])
            ):
                raise ValueError("bucket boundaries must strictly increase")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0

    # -- recording ------------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one sample (upper-inclusive bucket, like Prometheus)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    # -- reading back ---------------------------------------------------

    def quantile(self, q: float) -> Optional[float]:
        """The upper bound of the bucket holding the q-th sample.

        Computed from ``(bounds, counts)`` alone, so re-deriving it from
        a scraped ``/metrics`` exposition gives the same number.  Returns
        ``None`` on an empty histogram; samples in the overflow bucket
        report the largest finite boundary (a known understatement,
        flagged by ``counts[-1] > 0``).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = min(self.count, max(1, ceil(q * self.count)))
        cumulative = 0
        for i, bucket in enumerate(self.counts):
            cumulative += bucket
            if cumulative >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]  # unreachable: cumulative ends at count

    def mean(self) -> Optional[float]:
        """Arithmetic mean of the observed samples (None when empty)."""
        return self.total / self.count if self.count else None

    def summary(self) -> Dict[str, Any]:
        """The quantile digest the service's stats payload embeds."""
        return {
            "count": self.count,
            "sum": self.total,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # -- merging / serialisation ---------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable state: bounds, per-bucket counts, sum, count."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }

    def absorb(self, snapshot: Dict[str, Any]) -> None:
        """Merge another histogram's :meth:`snapshot` bucket-wise.

        Boundaries must match exactly — fixed shared bounds are the
        contract that makes worker merges lossless; a mismatch means two
        incompatible histograms share a name, which is a bug worth a loud
        error rather than a silently re-binned distribution.
        """
        bounds = tuple(float(b) for b in snapshot.get("bounds", ()))
        if bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket boundaries "
                f"({len(bounds)} vs {len(self.bounds)} bounds)"
            )
        counts = snapshot.get("counts", ())
        if len(counts) != len(self.counts):
            raise ValueError(
                f"snapshot has {len(counts)} buckets, expected "
                f"{len(self.counts)}"
            )
        for i, c in enumerate(counts):
            self.counts[i] += c
        self.total += float(snapshot.get("sum", 0.0))
        self.count += int(snapshot.get("count", 0))

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from its :meth:`snapshot` payload."""
        hist = cls(bounds=snapshot["bounds"])
        hist.absorb(snapshot)
        return hist

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, sum={self.total:.6g}, "
            f"buckets={len(self.counts)})"
        )
