"""Prometheus text exposition for recorder snapshots.

Renders a :meth:`~repro.obs.MetricsRecorder.snapshot` as the Prometheus
text format (version 0.0.4) so the service's ``GET /metrics`` endpoint
can be scraped by standard tooling:

* counters become ``<ns>_<name>_total`` with ``# TYPE ... counter``;
* numeric gauges become ``<ns>_<name>`` with ``# TYPE ... gauge``
  (string-valued gauges — e.g. ``budget/reason`` — have no Prometheus
  representation and are skipped; they remain visible in ``/v1/stats``);
* histograms become the canonical triplet: cumulative
  ``<ns>_<name>_bucket{le="..."}`` lines ending in ``le="+Inf"``, plus
  ``<ns>_<name>_sum`` and ``<ns>_<name>_count``.

Metric names are sanitised by mapping every character outside
``[a-zA-Z0-9_]`` to ``_`` (so ``service/latency/query/cold`` scrapes as
``repro_service_latency_query_cold``).  Bucket boundaries are rendered
with ``repr(float)``, which round-trips exactly — a scraper can rebuild
the histogram and re-derive the very same quantiles the ``/v1/stats``
payload reports (see :meth:`~repro.obs.Histogram.quantile`).

:func:`parse_exposition` is the inverse for the subset this module
emits; the telemetry smoke test and the ``/metrics`` test suite use it
to cross-check the endpoint against ``/v1/stats``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Tuple

__all__ = [
    "render_exposition",
    "parse_exposition",
    "histogram_from_buckets",
    "sanitize_metric_name",
]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str, namespace: str = "repro") -> str:
    """``service/latency/query`` -> ``repro_service_latency_query``."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"{namespace}_{cleaned}" if namespace else cleaned


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_exposition(
    snapshot: Dict[str, Any], namespace: str = "repro"
) -> str:
    """One Prometheus text-format document from a recorder snapshot."""
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = sanitize_metric_name(name, namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue  # strings et al. have no exposition representation
        metric = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        metric = sanitize_metric_name(name, namespace)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        bounds = hist["bounds"]
        counts = hist["counts"]
        for bound, count in zip(bounds, counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{repr(float(bound))}"}} {cumulative}'
            )
        cumulative += counts[len(bounds)]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n"


_BUCKET_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)_bucket\{le="(?P<le>[^"]+)"\} '
    r"(?P<value>\S+)$"
)
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<value>\S+)$"
)


def parse_exposition(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse the subset of the exposition format this module emits.

    Returns ``{metric_name: entry}`` where an entry is
    ``{"type": ..., "value": ...}`` for counters/gauges (counter names
    keep their ``_total`` suffix) and
    ``{"type": "histogram", "buckets": [(le, cumulative), ...],
    "sum": ..., "count": ...}`` for histograms, with ``le`` parsed back
    to float (``+Inf`` -> ``float("inf")``) and buckets in emission
    order.
    """
    metrics: Dict[str, Dict[str, Any]] = {}
    declared: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                declared[parts[2]] = parts[3]
            continue
        match = _BUCKET_LINE.match(line)
        if match:
            name = match.group("name")
            entry = metrics.setdefault(
                name, {"type": "histogram", "buckets": [],
                       "sum": None, "count": None}
            )
            le = match.group("le")
            bound = float("inf") if le == "+Inf" else float(le)
            entry["buckets"].append((bound, int(match.group("value"))))
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        name = match.group("name")
        value_text = match.group("value")
        value = float(value_text) if "." in value_text or "e" in value_text \
            or "E" in value_text or "inf" in value_text else int(value_text)
        base_hist = None
        for suffix in ("_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and declared.get(base) == "histogram":
                base_hist = (base, suffix[1:])
                break
        if base_hist is not None:
            base, field = base_hist
            entry = metrics.setdefault(
                base, {"type": "histogram", "buckets": [],
                       "sum": None, "count": None}
            )
            entry[field] = value
            continue
        metrics[name] = {"type": declared.get(name, "untyped"),
                         "value": value}
    return metrics


def histogram_from_buckets(
    buckets: List[Tuple[float, int]]
) -> Tuple[Tuple[float, ...], List[int]]:
    """De-cumulate parsed ``(le, cumulative)`` buckets.

    Returns ``(finite_bounds, per_bucket_counts)`` with the overflow
    bucket last — the exact ``(bounds, counts)`` pair
    :meth:`repro.obs.Histogram.from_snapshot` accepts, letting scrapers
    re-derive quantiles identical to the server's.
    """
    bounds = tuple(le for le, _ in buckets if le != float("inf"))
    counts: List[int] = []
    previous = 0
    for _, cumulative in buckets:
        counts.append(cumulative - previous)
        previous = cumulative
    return bounds, counts
