"""Structured metrics and tracing for the SCTL* pipeline.

The paper's evaluation (§7) is entirely about *where* time and cliques go
— index build vs. refinement vs. flow verification, paths pruned by
max-depth, vertices dropped by the Lemma 3/4 reductions.  This module
gives every stage of the pipeline a first-class way to report those
numbers:

* :class:`Recorder` — the protocol every instrumented function accepts
  through an explicit ``recorder=`` keyword;
* :class:`NullRecorder` — the default.  Every method is a no-op and
  ``enabled`` is ``False``, so instrumented code guards any measurement
  work behind ``if recorder.enabled:`` and library behaviour stays
  byte-identical (and effectively free) when nobody is listening;
* :class:`MetricsRecorder` — collects named **counters** (monotonic
  integer totals), **gauges** (last-written values) and **spans**
  (monotonic-clock phase timers that nest, e.g. ``exact/flow_round/2``),
  and can mirror everything as JSON-lines events to a writable sink for
  machine-readable traces.

Instrumentation style: hot loops accumulate plain local integers and
report aggregates once per phase or iteration — recorder calls happen at
phase granularity, never per clique.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, IO, Iterator, List, Optional, Tuple

try:  # Protocol is typing-only; runtime never dispatches on it
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py<3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


__all__ = [
    "Recorder",
    "NullRecorder",
    "MetricsRecorder",
    "SpanRecord",
    "NULL_RECORDER",
]


@runtime_checkable
class Recorder(Protocol):
    """What instrumented code may call on a ``recorder=`` argument.

    ``enabled`` gates any non-trivial measurement work (norm computations,
    O(n) scans, per-item tallies): instrumented code must skip it entirely
    when ``enabled`` is ``False``.
    """

    enabled: bool

    def counter(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named monotonic counter."""

    def gauge(self, name: str, value: Any) -> None:
        """Set the named gauge to ``value`` (last write wins)."""

    def event(self, name: str, **fields: Any) -> None:
        """Emit a free-form trace event."""

    def span(self, name: str) -> "Any":
        """Context manager timing a named (nestable) phase."""


class _NullSpan:
    """Context manager that does nothing; shared singleton."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-overhead default recorder: every operation is a no-op.

    A single shared instance, :data:`NULL_RECORDER`, is the default for
    every ``recorder=`` keyword in the library; passing it explicitly is
    equivalent to not passing a recorder at all.
    """

    __slots__ = ()

    enabled = False

    def counter(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: Any) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN


NULL_RECORDER = NullRecorder()


class SpanRecord:
    """One completed span: its full nested path and elapsed seconds."""

    __slots__ = ("path", "seconds")

    def __init__(self, path: str, seconds: float):
        self.path = path
        self.seconds = seconds

    def __repr__(self) -> str:
        return f"SpanRecord({self.path!r}, {self.seconds:.6f}s)"


class _Span:
    """Active span context manager handed out by :meth:`MetricsRecorder.span`."""

    __slots__ = ("_recorder", "_name", "_path", "_start")

    def __init__(self, recorder: "MetricsRecorder", name: str):
        self._recorder = recorder
        self._name = name
        self._path = ""
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._path = self._recorder._enter_span(self._name)
        self._start = self._recorder._clock()
        return self

    def __exit__(self, *exc: Any) -> bool:
        elapsed = self._recorder._clock() - self._start
        self._recorder._exit_span(self._path, elapsed)
        return False


class MetricsRecorder:
    """Collecting recorder: counters, gauges, nested spans, JSONL events.

    Parameters
    ----------
    sink:
        Optional writable text stream.  When given, every counter
        increment, gauge write, span boundary and free-form event is
        mirrored as one JSON object per line (the trace format validated
        by :mod:`repro.obs.validate`).  Aggregates are collected either
        way; the sink only adds the event log.
    clock:
        Monotonic time source (injectable for tests); defaults to
        :func:`time.perf_counter`.

    Span names nest: entering ``span("flow_round/2")`` while inside
    ``span("exact")`` records the path ``exact/flow_round/2``.  Counter
    and gauge names are global (not span-scoped) so the same counter can
    be accumulated across phases.
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, Any] = {}
        self.spans: List[SpanRecord] = []
        self._sink = sink
        self._clock = clock
        self._t0 = clock()
        self._stack: List[str] = []

    # -- recording ------------------------------------------------------

    def counter(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named monotonic counter."""
        total = self.counters.get(name, 0) + amount
        self.counters[name] = total
        if self._sink is not None:
            self._emit({"event": "counter", "name": name,
                        "delta": amount, "value": total})

    def gauge(self, name: str, value: Any) -> None:
        """Set the named gauge (last write wins)."""
        self.gauges[name] = value
        if self._sink is not None:
            self._emit({"event": "gauge", "name": name, "value": value})

    def event(self, name: str, **fields: Any) -> None:
        """Emit a free-form event (trace-only; not aggregated)."""
        if self._sink is not None:
            payload = {"event": "point", "name": name}
            if fields:
                payload["fields"] = fields
            self._emit(payload)

    def span(self, name: str) -> _Span:
        """Context manager timing the named phase (nests with ``/``)."""
        return _Span(self, name)

    # -- span plumbing --------------------------------------------------

    def _enter_span(self, name: str) -> str:
        path = f"{self._stack[-1]}/{name}" if self._stack else name
        self._stack.append(path)
        if self._sink is not None:
            self._emit({"event": "span_start", "span": path})
        return path

    def _exit_span(self, path: str, seconds: float) -> None:
        if self._stack and self._stack[-1] == path:
            self._stack.pop()
        self.spans.append(SpanRecord(path, seconds))
        if self._sink is not None:
            self._emit({"event": "span_end", "span": path,
                        "seconds": round(seconds, 9)})

    @property
    def current_span(self) -> str:
        """The active span path (empty string at the top level)."""
        return self._stack[-1] if self._stack else ""

    def _emit(self, payload: Dict[str, Any]) -> None:
        payload["t"] = round(self._clock() - self._t0, 9)
        self._sink.write(json.dumps(payload, default=_jsonable) + "\n")

    # -- merging --------------------------------------------------------

    def absorb(self, snapshot: Dict[str, Any], prefix: str = "") -> None:
        """Fold another recorder's :meth:`snapshot` into this one.

        Used by the parallel engine to merge worker-side measurements
        into the parent trace: counters are summed, gauges take the
        incoming value (last write wins, like a local ``gauge`` call)
        and each span aggregate lands as one completed span nested under
        the *current* span path (plus an optional ``prefix`` segment).
        The sink, when present, sees the merged spans as immediately
        closed ``span_start``/``span_end`` pairs, which keeps the trace
        well-bracketed for :mod:`repro.obs.validate`.
        """
        for name, total in snapshot.get("counters", {}).items():
            self.counter(name, total)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        base = self.current_span
        for entry in snapshot.get("spans", ()):
            path = "/".join(p for p in (base, prefix, entry["span"]) if p)
            if self._sink is not None:
                self._emit({"event": "span_start", "span": path})
            self.spans.append(SpanRecord(path, entry["seconds"]))
            if self._sink is not None:
                self._emit({"event": "span_end", "span": path,
                            "seconds": round(entry["seconds"], 9)})

    # -- reading back ---------------------------------------------------

    def span_totals(self) -> Dict[str, Tuple[int, float]]:
        """Mapping span path -> ``(occurrences, total seconds)``."""
        totals: Dict[str, Tuple[int, float]] = {}
        for record in self.spans:
            count, seconds = totals.get(record.path, (0, 0.0))
            totals[record.path] = (count + 1, seconds + record.seconds)
        return totals

    def span_seconds(self, prefix: str) -> float:
        """Total seconds of spans whose path equals ``prefix`` or starts
        with ``prefix + "/"`` — e.g. ``span_seconds("exact/flow_round")``
        sums every flow round."""
        total = 0.0
        lead = prefix + "/"
        for record in self.spans:
            if record.path == prefix or record.path.startswith(lead):
                total += record.seconds
        return total

    def iter_span_paths(self) -> Iterator[str]:
        """Completed span paths in completion order."""
        for record in self.spans:
            yield record.path

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable aggregate view of everything recorded."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": {k: _jsonable_value(v)
                       for k, v in sorted(self.gauges.items())},
            "spans": [
                {"span": path, "count": count, "seconds": round(seconds, 9)}
                for path, (count, seconds) in sorted(self.span_totals().items())
            ],
        }

    def write_json(self, path) -> None:
        """Write :meth:`snapshot` to ``path`` as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, default=_jsonable)
            handle.write("\n")

    def __repr__(self) -> str:
        return (
            f"MetricsRecorder(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, spans={len(self.spans)})"
        )


def _jsonable(value: Any) -> Any:
    """json.dumps ``default`` hook for non-JSON-native gauge values."""
    return _jsonable_value(value)


def _jsonable_value(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    try:  # Fraction and friends
        return float(value)
    except (TypeError, ValueError):
        return str(value)
