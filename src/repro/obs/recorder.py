"""Structured metrics and tracing for the SCTL* pipeline.

The paper's evaluation (§7) is entirely about *where* time and cliques go
— index build vs. refinement vs. flow verification, paths pruned by
max-depth, vertices dropped by the Lemma 3/4 reductions.  This module
gives every stage of the pipeline a first-class way to report those
numbers:

* :class:`Recorder` — the protocol every instrumented function accepts
  through an explicit ``recorder=`` keyword;
* :class:`NullRecorder` — the default.  Every method is a no-op and
  ``enabled`` is ``False``, so instrumented code guards any measurement
  work behind ``if recorder.enabled:`` and library behaviour stays
  byte-identical (and effectively free) when nobody is listening;
* :class:`MetricsRecorder` — collects named **counters** (monotonic
  integer totals), **gauges** (last-written values), **histograms**
  (log-bucketed latency/size distributions, see
  :class:`~repro.obs.Histogram`) and **spans** (monotonic-clock phase
  timers that nest, e.g. ``exact/flow_round/2``), and can mirror
  everything as JSON-lines events to a writable sink for
  machine-readable traces.

:class:`MetricsRecorder` is **thread-safe**: one re-entrant lock guards
every mutation (and the sink, so trace lines never interleave), which is
what lets the :mod:`repro.service` daemon share a single server-wide
recorder across its handler threads.  Span *nesting* state remains one
shared stack — concurrent nested spans from different threads belong on
per-thread recorders (the service gives each request its own and
``absorb``\\ s the snapshot).

A recorder may carry a ``request_id``: the service stamps one per
request at ingress, every trace event the recorder emits then carries a
``"rid"`` field, and the id rides along in :meth:`snapshot` so worker
processes and the server-wide ``absorb`` keep the correlation.

Instrumentation style: hot loops accumulate plain local integers and
report aggregates once per phase or iteration — recorder calls happen at
phase granularity, never per clique.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, IO, Iterator, List, Optional, Tuple

from .histogram import Histogram

try:  # Protocol is typing-only; runtime never dispatches on it
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py<3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


__all__ = [
    "Recorder",
    "NullRecorder",
    "MetricsRecorder",
    "SpanRecord",
    "NULL_RECORDER",
]


@runtime_checkable
class Recorder(Protocol):
    """What instrumented code may call on a ``recorder=`` argument.

    ``enabled`` gates any non-trivial measurement work (norm computations,
    O(n) scans, per-item tallies): instrumented code must skip it entirely
    when ``enabled`` is ``False``.
    """

    enabled: bool

    def counter(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named monotonic counter."""

    def gauge(self, name: str, value: Any) -> None:
        """Set the named gauge to ``value`` (last write wins)."""

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""

    def event(self, name: str, **fields: Any) -> None:
        """Emit a free-form trace event."""

    def span(self, name: str, observe: Optional[str] = None) -> "Any":
        """Context manager timing a named (nestable) phase."""


class _NullSpan:
    """Context manager that does nothing; shared singleton."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-overhead default recorder: every operation is a no-op.

    A single shared instance, :data:`NULL_RECORDER`, is the default for
    every ``recorder=`` keyword in the library; passing it explicitly is
    equivalent to not passing a recorder at all.
    """

    __slots__ = ()

    enabled = False

    def counter(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: Any) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def span(self, name: str, observe: Optional[str] = None) -> _NullSpan:
        return _NULL_SPAN


NULL_RECORDER = NullRecorder()


class SpanRecord:
    """One completed span: its full nested path and elapsed seconds."""

    __slots__ = ("path", "seconds")

    def __init__(self, path: str, seconds: float):
        self.path = path
        self.seconds = seconds

    def __repr__(self) -> str:
        return f"SpanRecord({self.path!r}, {self.seconds:.6f}s)"


class _Span:
    """Active span context manager handed out by :meth:`MetricsRecorder.span`."""

    __slots__ = ("_recorder", "_name", "_observe", "_path", "_start")

    def __init__(
        self, recorder: "MetricsRecorder", name: str, observe: Optional[str]
    ):
        self._recorder = recorder
        self._name = name
        self._observe = observe
        self._path = ""
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._path = self._recorder._enter_span(self._name)
        self._start = self._recorder._clock()
        return self

    def __exit__(self, *exc: Any) -> bool:
        elapsed = self._recorder._clock() - self._start
        self._recorder._exit_span(self._path, elapsed, self._observe)
        return False


class MetricsRecorder:
    """Collecting recorder: counters, gauges, histograms, spans, JSONL.

    Parameters
    ----------
    sink:
        Optional writable text stream.  When given, every counter
        increment, gauge write, histogram observation, span boundary and
        free-form event is mirrored as one JSON object per line (the
        trace format validated by :mod:`repro.obs.validate`).
        Aggregates are collected either way; the sink only adds the
        event log.
    clock:
        Monotonic time source (injectable for tests); defaults to
        :func:`time.perf_counter`.
    request_id:
        Optional correlation id.  When set, every emitted trace line
        carries it as ``"rid"`` and :meth:`snapshot` includes it, so the
        id survives the worker-pool snapshot plumbing and the service's
        server-wide ``absorb``.

    Span names nest: entering ``span("flow_round/2")`` while inside
    ``span("exact")`` records the path ``exact/flow_round/2``.  Counter,
    gauge and histogram names are global (not span-scoped) so the same
    series can be accumulated across phases.  ``span(name,
    observe="stage/x")`` additionally records the span's elapsed seconds
    into the named histogram — the pipeline's per-stage latency
    distributions are collected exactly this way.

    All mutation happens under one re-entrant lock: a single recorder
    may be hammered from many threads and every counter increment still
    lands (see the threaded service, which shares one).
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.perf_counter,
        request_id: Optional[str] = None,
    ):
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, Any] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.spans: List[SpanRecord] = []
        self.request_id = request_id
        self._sink = sink
        self._clock = clock
        self._t0 = clock()
        self._stack: List[str] = []
        self._lock = threading.RLock()

    # -- recording ------------------------------------------------------

    def counter(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named monotonic counter."""
        with self._lock:
            total = self.counters.get(name, 0) + amount
            self.counters[name] = total
            if self._sink is not None:
                self._emit({"event": "counter", "name": name,
                            "delta": amount, "value": total})

    def gauge(self, name: str, value: Any) -> None:
        """Set the named gauge (last write wins)."""
        with self._lock:
            self.gauges[name] = value
            if self._sink is not None:
                self._emit({"event": "gauge", "name": name, "value": value})

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram.

        Histograms are created on first use with the shared fixed bucket
        boundaries (:data:`~repro.obs.DEFAULT_BOUNDS`), which is what
        makes worker snapshots merge bucket-exactly.
        """
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)
            if self._sink is not None:
                self._emit({"event": "observe", "name": name,
                            "value": _jsonable_value(value)})

    def event(self, name: str, **fields: Any) -> None:
        """Emit a free-form event.

        The event body is trace-only, but aggregate visibility survives a
        sink-less recorder too: every call bumps the ``events/<name>``
        counter, so :meth:`snapshot` reflects event activity even when no
        trace is attached.  (The counter bump is aggregate-only — it does
        not add a ``counter`` line to the trace, keeping event streams
        exactly one line per :meth:`event` call.)
        """
        with self._lock:
            bump = "events/" + name
            self.counters[bump] = self.counters.get(bump, 0) + 1
            if self._sink is not None:
                payload = {"event": "point", "name": name}
                if fields:
                    payload["fields"] = fields
                self._emit(payload)

    def span(self, name: str, observe: Optional[str] = None) -> _Span:
        """Context manager timing the named phase (nests with ``/``).

        With ``observe=`` the elapsed seconds are additionally recorded
        into that histogram on exit — one call site, two views: the
        exact per-occurrence span record and the mergeable distribution.
        """
        return _Span(self, name, observe)

    # -- span plumbing --------------------------------------------------

    def _enter_span(self, name: str) -> str:
        with self._lock:
            path = f"{self._stack[-1]}/{name}" if self._stack else name
            self._stack.append(path)
            if self._sink is not None:
                self._emit({"event": "span_start", "span": path})
            return path

    def _exit_span(
        self, path: str, seconds: float, observe: Optional[str] = None
    ) -> None:
        with self._lock:
            if self._stack and self._stack[-1] == path:
                self._stack.pop()
            self.spans.append(SpanRecord(path, seconds))
            if self._sink is not None:
                self._emit({"event": "span_end", "span": path,
                            "seconds": round(seconds, 9)})
            if observe is not None:
                self.observe(observe, seconds)

    @property
    def current_span(self) -> str:
        """The active span path (empty string at the top level)."""
        with self._lock:
            return self._stack[-1] if self._stack else ""

    def _emit(
        self, payload: Dict[str, Any], rid: Optional[str] = None
    ) -> None:
        payload["t"] = round(self._clock() - self._t0, 9)
        rid = rid if rid is not None else self.request_id
        if rid is not None:
            payload["rid"] = rid
        self._sink.write(json.dumps(payload, default=_jsonable) + "\n")

    # -- merging --------------------------------------------------------

    def absorb(self, snapshot: Dict[str, Any], prefix: str = "") -> None:
        """Fold another recorder's :meth:`snapshot` into this one.

        Used by the parallel engine and the service to merge worker- and
        request-side measurements into a long-lived trace: counters are
        summed, gauges take the incoming value (last write wins, like a
        local ``gauge`` call), histograms merge **bucket-wise** (shared
        fixed boundaries make this exact — see
        :class:`~repro.obs.Histogram`) and each span aggregate lands as
        one completed span nested under the *current* span path (plus an
        optional ``prefix`` segment).  The sink, when present, sees the
        merged spans as immediately closed ``span_start``/``span_end``
        pairs, which keeps the trace well-bracketed for
        :mod:`repro.obs.validate`; when the incoming snapshot carries a
        ``request_id``, those emitted lines are stamped with it so the
        originating request stays findable in the merged trace.
        """
        with self._lock:
            rid = snapshot.get("request_id")
            for name, total in snapshot.get("counters", {}).items():
                self.counter(name, total)
            for name, value in snapshot.get("gauges", {}).items():
                self.gauge(name, value)
            for name, hist_snap in snapshot.get("histograms", {}).items():
                hist = self.histograms.get(name)
                if hist is None:
                    hist = self.histograms[name] = Histogram(
                        bounds=hist_snap["bounds"]
                    )
                hist.absorb(hist_snap)
            base = self.current_span
            for entry in snapshot.get("spans", ()):
                path = "/".join(p for p in (base, prefix, entry["span"]) if p)
                if self._sink is not None:
                    self._emit({"event": "span_start", "span": path}, rid=rid)
                self.spans.append(SpanRecord(path, entry["seconds"]))
                if self._sink is not None:
                    self._emit({"event": "span_end", "span": path,
                                "seconds": round(entry["seconds"], 9)},
                               rid=rid)

    # -- reading back ---------------------------------------------------

    def span_totals(self) -> Dict[str, Tuple[int, float]]:
        """Mapping span path -> ``(occurrences, total seconds)``."""
        with self._lock:
            records = list(self.spans)
        totals: Dict[str, Tuple[int, float]] = {}
        for record in records:
            count, seconds = totals.get(record.path, (0, 0.0))
            totals[record.path] = (count + 1, seconds + record.seconds)
        return totals

    def span_seconds(self, prefix: str) -> float:
        """Total seconds of spans whose path equals ``prefix`` or starts
        with ``prefix + "/"`` — e.g. ``span_seconds("exact/flow_round")``
        sums every flow round."""
        with self._lock:
            records = list(self.spans)
        total = 0.0
        lead = prefix + "/"
        for record in records:
            if record.path == prefix or record.path.startswith(lead):
                total += record.seconds
        return total

    def iter_span_paths(self) -> Iterator[str]:
        """Completed span paths in completion order."""
        with self._lock:
            records = list(self.spans)
        for record in records:
            yield record.path

    def quantile(self, name: str, q: float) -> Optional[float]:
        """Quantile ``q`` of the named histogram (None if absent/empty)."""
        with self._lock:
            hist = self.histograms.get(name)
            return hist.quantile(q) if hist is not None else None

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serialisable aggregate view of everything recorded."""
        with self._lock:
            payload: Dict[str, Any] = {
                "counters": dict(sorted(self.counters.items())),
                "gauges": {k: _jsonable_value(v)
                           for k, v in sorted(self.gauges.items())},
                "spans": [
                    {"span": path, "count": count,
                     "seconds": round(seconds, 9)}
                    for path, (count, seconds)
                    in sorted(self.span_totals().items())
                ],
            }
            if self.histograms:
                payload["histograms"] = {
                    name: hist.snapshot()
                    for name, hist in sorted(self.histograms.items())
                }
            if self.request_id is not None:
                payload["request_id"] = self.request_id
            return payload

    def write_json(self, path) -> None:
        """Write :meth:`snapshot` to ``path`` as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, default=_jsonable)
            handle.write("\n")

    def __repr__(self) -> str:
        return (
            f"MetricsRecorder(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, "
            f"histograms={len(self.histograms)}, spans={len(self.spans)})"
        )


def _jsonable(value: Any) -> Any:
    """json.dumps ``default`` hook for non-JSON-native gauge values."""
    return _jsonable_value(value)


def _jsonable_value(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    try:  # Fraction and friends
        return float(value)
    except (TypeError, ValueError):
        return str(value)
