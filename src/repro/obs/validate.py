"""Schema validation for ``repro.obs`` trace and metrics files.

A **trace** is JSON-lines: one event object per line, as emitted by a
:class:`~repro.obs.MetricsRecorder` with a sink attached.  The schema:

* every line is a JSON object with an ``event`` field in
  ``{"counter", "gauge", "observe", "span_start", "span_end", "point"}``
  and a numeric ``t`` (seconds since the recorder started,
  non-decreasing);
* ``counter`` events carry ``name`` (str), ``delta`` (int) and the
  running ``value`` (int);
* ``gauge`` events carry ``name`` and ``value``;
* ``observe`` events (histogram samples) carry ``name`` and a numeric
  ``value``;
* ``span_start`` / ``span_end`` carry the nested ``span`` path, and
  ``span_end`` adds non-negative ``seconds``; starts and ends must
  balance like a well-formed bracket sequence (spans strictly nest);
* ``point`` events carry ``name`` and optional ``fields``;
* any event may carry ``rid`` — the request-correlation id the service
  stamps at ingress; when present it must be a non-empty string.

A **metrics** file is one JSON object — a
:meth:`~repro.obs.MetricsRecorder.snapshot`: ``counters`` (str -> int),
``gauges`` (str -> JSON value), ``spans`` (list of
``{"span", "count", "seconds"}``) and optionally ``histograms``
(str -> ``{"bounds", "counts", "sum", "count"}`` with strictly
increasing bounds, one overflow bucket, and ``count`` equal to the
bucket total) plus ``request_id``.

A **trajectory** file (``BENCH_trajectory.json``) is a JSON array of
``repro/bench-trajectory-v1`` records — one appended per
``scripts/bench_trajectory.py`` run — each carrying the fixed core
bench numbers (index build, path throughput, warm/cold service query
quantiles).

Beyond traces and metrics, the validator checks every versioned
**payload** the CLI and the :mod:`repro.service` daemon emit, dispatching
on the ``"schema"`` field: ``repro/result-v1`` (round-tripped through
:class:`~repro.results.DenseSubgraphResult` plus consistency checks),
``repro/profile-v1``, ``repro/stats-v1``, the ``repro/service-v1``
response envelope (nested payloads validated recursively), its
``repro/service-v1.1`` fleet extension (optional ``served_by`` /
``ring_epoch``; unknown optional fields are ignored by v1 consumers),
``repro/service-stats-v1``, ``repro/router-stats-v1`` and
``repro/topology-v1``.

Used by the CI observability and service-smoke jobs and usable
standalone::

    python -m repro.obs.validate trace.jsonl --metrics metrics.json
    python -m repro.obs.validate --result response.json
    python -m repro.obs.validate --trajectory BENCH_trajectory.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Iterable, List, Optional

__all__ = [
    "validate_trace_lines",
    "validate_metrics",
    "validate_result",
    "validate_trajectory",
    "main",
]

_EVENT_TYPES = {
    "counter", "gauge", "observe", "span_start", "span_end", "point",
}


def validate_trace_lines(lines: Iterable[str]) -> List[str]:
    """Validate a JSON-lines trace; return a list of error strings.

    An empty list means the trace conforms to the schema.  Blank lines
    are rejected (a truncated write is a real failure mode for traces).
    """
    errors: List[str] = []
    open_spans: List[str] = []
    last_t = 0.0
    n_lines = 0
    for lineno, line in enumerate(lines, start=1):
        n_lines += 1
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(payload, dict):
            errors.append(f"line {lineno}: expected a JSON object")
            continue
        kind = payload.get("event")
        if kind not in _EVENT_TYPES:
            errors.append(f"line {lineno}: unknown event type {kind!r}")
            continue
        t = payload.get("t")
        if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
            errors.append(f"line {lineno}: missing or negative timestamp 't'")
        else:
            if t < last_t:
                errors.append(
                    f"line {lineno}: timestamp {t} precedes previous {last_t}"
                )
            last_t = float(t)
        if "rid" in payload and (
            not isinstance(payload["rid"], str) or not payload["rid"]
        ):
            errors.append(
                f"line {lineno}: 'rid' must be a non-empty string when given"
            )
        if kind in ("counter", "gauge", "observe", "point"):
            if not isinstance(payload.get("name"), str) or not payload["name"]:
                errors.append(f"line {lineno}: {kind} event without a 'name'")
        if kind == "observe":
            v = payload.get("value")
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                errors.append(
                    f"line {lineno}: observe event needs a numeric 'value'"
                )
        if kind == "counter":
            for field in ("delta", "value"):
                v = payload.get(field)
                if not isinstance(v, int) or isinstance(v, bool):
                    errors.append(
                        f"line {lineno}: counter field {field!r} must be an int"
                    )
        if kind == "gauge" and "value" not in payload:
            errors.append(f"line {lineno}: gauge event without a 'value'")
        if kind in ("span_start", "span_end"):
            span = payload.get("span")
            if not isinstance(span, str) or not span:
                errors.append(f"line {lineno}: {kind} without a 'span' path")
                continue
            if kind == "span_start":
                open_spans.append(span)
            else:
                seconds = payload.get("seconds")
                if (
                    not isinstance(seconds, (int, float))
                    or isinstance(seconds, bool)
                    or seconds < 0
                ):
                    errors.append(
                        f"line {lineno}: span_end without non-negative 'seconds'"
                    )
                if not open_spans:
                    errors.append(
                        f"line {lineno}: span_end {span!r} with no open span"
                    )
                elif open_spans[-1] != span:
                    errors.append(
                        f"line {lineno}: span_end {span!r} does not match "
                        f"innermost open span {open_spans[-1]!r}"
                    )
                    open_spans.pop()
                else:
                    open_spans.pop()
    for span in open_spans:
        errors.append(f"span {span!r} was started but never ended")
    if n_lines == 0:
        errors.append("trace is empty")
    return errors


def validate_metrics(payload: Any) -> List[str]:
    """Validate a metrics snapshot object; return a list of error strings."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["metrics snapshot must be a JSON object"]
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        errors.append("'counters' must be an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(f"counter {name!r} must be an int, got {value!r}")
    if not isinstance(payload.get("gauges"), dict):
        errors.append("'gauges' must be an object")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        errors.append("'spans' must be a list")
    else:
        for i, entry in enumerate(spans):
            if not isinstance(entry, dict):
                errors.append(f"spans[{i}] must be an object")
                continue
            if not isinstance(entry.get("span"), str) or not entry["span"]:
                errors.append(f"spans[{i}] needs a non-empty 'span' path")
            count = entry.get("count")
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                errors.append(f"spans[{i}] needs a positive integer 'count'")
            seconds = entry.get("seconds")
            if (
                not isinstance(seconds, (int, float))
                or isinstance(seconds, bool)
                or seconds < 0
            ):
                errors.append(f"spans[{i}] needs non-negative 'seconds'")
    histograms = payload.get("histograms")
    if histograms is not None:
        if not isinstance(histograms, dict):
            errors.append("'histograms' must be an object when given")
        else:
            for name, hist in histograms.items():
                errors.extend(
                    f"histogram {name!r}: {err}"
                    for err in _validate_histogram_snapshot(hist)
                )
    request_id = payload.get("request_id")
    if request_id is not None and (
        not isinstance(request_id, str) or not request_id
    ):
        errors.append("'request_id' must be a non-empty string when given")
    return errors


def _validate_histogram_snapshot(hist: Any) -> List[str]:
    """Structural checks for one ``Histogram.snapshot()`` payload."""
    if not isinstance(hist, dict):
        return ["must be an object"]
    errors: List[str] = []
    bounds = hist.get("bounds")
    if (
        not isinstance(bounds, list)
        or not bounds
        or any(
            not isinstance(b, (int, float)) or isinstance(b, bool)
            for b in bounds
        )
    ):
        errors.append("'bounds' must be a non-empty list of numbers")
        bounds = None
    elif any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        errors.append("'bounds' must strictly increase")
    counts = hist.get("counts")
    if not isinstance(counts, list) or any(
        not isinstance(c, int) or isinstance(c, bool) or c < 0
        for c in counts
    ):
        errors.append("'counts' must be a list of non-negative ints")
        counts = None
    elif bounds is not None and len(counts) != len(bounds) + 1:
        errors.append(
            f"{len(counts)} counts for {len(bounds)} bounds "
            "(expected one overflow bucket)"
        )
    total = hist.get("sum")
    if not isinstance(total, (int, float)) or isinstance(total, bool):
        errors.append("'sum' must be a number")
    count = hist.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        errors.append("'count' must be a non-negative int")
    elif counts is not None and count != sum(counts):
        errors.append(
            f"'count' {count} != sum of bucket counts {sum(counts)}"
        )
    return errors


def _validate_result_v1(payload: dict) -> List[str]:
    from ..errors import InvalidParameterError
    from ..results import DenseSubgraphResult

    errors: List[str] = []
    try:
        result = DenseSubgraphResult.from_dict(payload)
    except InvalidParameterError as exc:
        return [str(exc)]
    vertices = payload.get("vertices")
    if not isinstance(vertices, list) or any(
        not isinstance(v, int) or isinstance(v, bool) for v in vertices
    ):
        errors.append("'vertices' must be a list of ints")
    if payload.get("size") != len(result.vertices):
        errors.append(
            f"'size' {payload.get('size')!r} != len(vertices) "
            f"{len(result.vertices)}"
        )
    density = payload.get("density")
    if not isinstance(density, (int, float)) or isinstance(density, bool):
        errors.append("'density' must be a number")
    elif abs(density - result.density) > 1e-9:
        errors.append(
            f"'density' {density} != clique_count/size {result.density}"
        )
    if result.k < 1:
        errors.append(f"'k' must be >= 1, got {result.k}")
    if result.clique_count < 0:
        errors.append(f"'clique_count' must be >= 0, got {result.clique_count}")
    if bool(payload.get("partial")) != result.is_partial:
        errors.append("'partial' flag does not round-trip")
    if result.is_partial and result.valid is False and result.vertices:
        errors.append("an invalid partial must not carry vertices")
    if not result.is_partial and not result.valid:
        errors.append("a complete result must have valid=true")
    timings = payload.get("timings", {})
    if not isinstance(timings, dict) or any(
        not isinstance(v, (int, float)) or isinstance(v, bool)
        for v in timings.values()
    ):
        errors.append("'timings' must map names to numbers")
    return errors


def _validate_profile_v1(payload: dict) -> List[str]:
    errors: List[str] = []
    rows = payload.get("rows")
    if not isinstance(rows, list) or not rows:
        return ["'rows' must be a non-empty list"]
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"rows[{i}] must be an object")
            continue
        for field in ("k", "size", "clique_count"):
            v = row.get(field)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(
                    f"rows[{i}].{field} must be a non-negative int"
                )
        density = row.get("density")
        if (
            not isinstance(density, (int, float))
            or isinstance(density, bool)
            or density < 0
        ):
            errors.append(f"rows[{i}].density must be a non-negative number")
    densest = payload.get("densest_k")
    if densest is not None and densest not in {
        row.get("k") for row in rows if isinstance(row, dict)
    }:
        errors.append(f"'densest_k' {densest!r} is not a row's k")
    return errors


def _validate_stats_v1(payload: dict) -> List[str]:
    errors: List[str] = []
    for field in ("vertices", "edges"):
        v = payload.get(field)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            errors.append(f"{field!r} must be a non-negative int")
    return errors


def _validate_service_envelope(payload: dict) -> List[str]:
    errors: List[str] = []
    op = payload.get("op")
    if not isinstance(op, str):
        errors.append("'op' must be a string")
    code = payload.get("code")
    if code not in (0, 1, 2, 3, 4, 5):
        errors.append(f"'code' must be one of 0-5, got {code!r}")
    error = payload.get("error")
    if error is not None and not isinstance(error, str):
        errors.append("'error' must be null or a string")
    if code in (1, 2) and not error:
        errors.append(f"an error response (code {code}) needs an 'error'")
    if code == 5:
        # admission rejection: never started, must say so and say when
        # to come back
        if not error:
            errors.append("a rejection (code 5) needs an 'error'")
        if payload.get("rejected") is not True:
            errors.append("a rejection (code 5) must carry 'rejected': true")
    retry_after = payload.get("retry_after_s")
    if retry_after is not None and (
        not isinstance(retry_after, (int, float))
        or isinstance(retry_after, bool)
        or retry_after < 0
    ):
        errors.append(
            "'retry_after_s' must be a non-negative number when given"
        )
    if payload.get("rejected") is True and retry_after is None:
        errors.append("a rejected envelope must carry 'retry_after_s'")
    for nested_key in ("result", "profile", "stats", "graph", "topology"):
        nested = payload.get(nested_key)
        if nested is not None:
            errors.extend(
                f"{nested_key}: {err}" for err in validate_result(nested)
            )
    return errors


def _validate_service_envelope_v11(payload: dict) -> List[str]:
    """``repro/service-v1.1``: v1 plus optional topology fields.

    The compatibility rule (docs/service.md): a v1 consumer must ignore
    unknown optional fields, so every valid v1.1 envelope minus the tag
    is a valid v1 envelope.  This validator checks the additive fields
    and requires at least one of them — an envelope carrying neither
    should have stayed plain v1.
    """
    errors = _validate_service_envelope(payload)
    served_by = payload.get("served_by")
    if served_by is not None and (
        not isinstance(served_by, str) or not served_by
    ):
        errors.append("'served_by' must be a non-empty string when given")
    ring_epoch = payload.get("ring_epoch")
    if ring_epoch is not None and (
        not isinstance(ring_epoch, int)
        or isinstance(ring_epoch, bool)
        or ring_epoch < 0
    ):
        errors.append("'ring_epoch' must be a non-negative int when given")
    if served_by is None and ring_epoch is None:
        errors.append(
            "a v1.1 envelope must carry 'served_by' and/or 'ring_epoch' "
            "(an envelope with neither is plain repro/service-v1)"
        )
    return errors


def _validate_topology_v1(payload: dict) -> List[str]:
    errors: List[str] = []
    epoch = payload.get("epoch")
    if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 0:
        errors.append("'epoch' must be a non-negative int")
    vnodes = payload.get("vnodes")
    if not isinstance(vnodes, int) or isinstance(vnodes, bool) or vnodes < 1:
        errors.append("'vnodes' must be a positive int")
    workers = payload.get("workers")
    if not isinstance(workers, list) or not workers:
        errors.append("'workers' must be a non-empty list")
    else:
        seen = set()
        for i, worker in enumerate(workers):
            if not isinstance(worker, dict):
                errors.append(f"workers[{i}] must be an object")
                continue
            worker_id = worker.get("id")
            if not isinstance(worker_id, str) or not worker_id:
                errors.append(f"workers[{i}].id must be a non-empty string")
            elif worker_id in seen:
                errors.append(f"workers[{i}].id {worker_id!r} is duplicated")
            else:
                seen.add(worker_id)
            if not isinstance(worker.get("url"), str) or not worker["url"]:
                errors.append(f"workers[{i}].url must be a non-empty string")
        replicas = payload.get("replicas")
        if replicas is not None:
            if not isinstance(replicas, dict):
                errors.append("'replicas' must be an object when given")
            else:
                for key, ids in replicas.items():
                    if not isinstance(ids, list) or any(
                        not isinstance(w, str) or not w for w in ids
                    ):
                        errors.append(
                            f"replicas[{key!r}] must be a list of "
                            "non-empty worker ids"
                        )
                    elif any(w not in seen for w in ids):
                        errors.append(
                            f"replicas[{key!r}] names a worker not in "
                            "the worker table"
                        )
    return errors


def _validate_router_stats_v1(payload: dict) -> List[str]:
    errors: List[str] = []
    if not isinstance(payload.get("draining"), bool):
        errors.append("'draining' must be a bool")
    ring = payload.get("ring")
    if not isinstance(ring, dict):
        errors.append("'ring' must be an object")
    else:
        epoch = ring.get("epoch")
        if not isinstance(epoch, int) or isinstance(epoch, bool) or epoch < 0:
            errors.append("ring.epoch must be a non-negative int")
        if not isinstance(ring.get("nodes"), list):
            errors.append("ring.nodes must be a list")
    workers = payload.get("workers")
    if not isinstance(workers, dict):
        errors.append("'workers' must be an object")
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        errors.append("'counters' must be an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(
                    f"counters.{name} must be an int, got {value!r}"
                )
    histograms = payload.get("histograms")
    if histograms is not None and not isinstance(histograms, dict):
        errors.append("'histograms' must be an object when given")
    return errors


# counters every service stats payload must carry (pre-seeded at server
# start), so dashboards and the chaos suite can rely on their presence
_REQUIRED_SERVICE_COUNTERS = ("service/rejected", "parallel/worker_crashes")


def _validate_service_stats_v1(payload: dict) -> List[str]:
    errors: List[str] = []
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        errors.append("'counters' must be an object")
    else:
        for name in _REQUIRED_SERVICE_COUNTERS:
            v = counters.get(name)
            if v is None:
                errors.append(f"counters must include {name!r}")
            elif not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(
                    f"counters.{name} must be a non-negative int, got {v!r}"
                )
    histograms = payload.get("histograms")
    if histograms is not None:
        if not isinstance(histograms, dict):
            errors.append("'histograms' must be an object when given")
        else:
            for name, digest in histograms.items():
                if not isinstance(digest, dict):
                    errors.append(f"histograms.{name} must be an object")
                    continue
                count = digest.get("count")
                if (
                    not isinstance(count, int)
                    or isinstance(count, bool)
                    or count < 0
                ):
                    errors.append(
                        f"histograms.{name}.count must be a non-negative int"
                    )
                for field in ("p50", "p95", "p99"):
                    v = digest.get(field)
                    if v is not None and (
                        not isinstance(v, (int, float)) or isinstance(v, bool)
                    ):
                        errors.append(
                            f"histograms.{name}.{field} must be null "
                            "or a number"
                        )
    for cache in ("index_cache", "result_cache"):
        entry = payload.get(cache)
        if not isinstance(entry, dict):
            errors.append(f"{cache!r} must be an object")
            continue
        for field in ("size", "capacity", "hits", "misses", "evictions"):
            v = entry.get(field)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(f"{cache}.{field} must be a non-negative int")
    if not isinstance(payload.get("draining"), bool):
        errors.append("'draining' must be a bool")
    return errors


TRAJECTORY_SCHEMA = "repro/bench-trajectory-v1"

_TRAJECTORY_BENCHES = {
    # bench name -> required non-negative numeric fields
    "index_build": ("seconds",),
    "path_throughput": ("paths", "seconds", "paths_per_s"),
}
_TRAJECTORY_QUANTILES = ("p50_s", "p99_s")

# optional bench (records predating incremental updates stay valid):
# steady-state single-edge toggles through repro.core.update
_TRAJECTORY_UPDATE_FIELDS = (
    "p50_s", "p99_s", "dirty_fraction", "full_rebuild_s",
    "speedup_vs_rebuild",
)


def _validate_update_bench(entry: Any) -> List[str]:
    if not isinstance(entry, dict):
        return ["benches.index_update must be an object"]
    errors: List[str] = []
    count = entry.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        errors.append("benches.index_update.count must be a positive int")
    for field in _TRAJECTORY_UPDATE_FIELDS:
        v = entry.get(field)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            errors.append(
                f"benches.index_update.{field} must be a non-negative number"
            )
    fraction = entry.get("dirty_fraction")
    if (
        isinstance(fraction, (int, float))
        and not isinstance(fraction, bool)
        and fraction > 1
    ):
        errors.append("benches.index_update.dirty_fraction must be <= 1")
    return errors


# optional bench (records predating the fleet stay valid): mixed
# cold/warm load through the router at 1 vs N workers
# (scripts/bench_fleet.py)
def _validate_fleet_bench(entry: Any) -> List[str]:
    if not isinstance(entry, dict):
        return ["benches.fleet must be an object"]
    errors: List[str] = []
    for arm in ("single", "scaled"):
        digest = entry.get(arm)
        if not isinstance(digest, dict):
            errors.append(f"benches.fleet.{arm} must be an object")
            continue
        workers = digest.get("workers")
        if not isinstance(workers, int) or isinstance(workers, bool) \
                or workers < 1:
            errors.append(
                f"benches.fleet.{arm}.workers must be a positive int"
            )
        for temperature in ("cold", "warm"):
            quantiles = digest.get(temperature)
            if not isinstance(quantiles, dict):
                errors.append(
                    f"benches.fleet.{arm}.{temperature} must be an object"
                )
                continue
            count = quantiles.get("count")
            if not isinstance(count, int) or isinstance(count, bool) \
                    or count < 1:
                errors.append(
                    f"benches.fleet.{arm}.{temperature}.count must be "
                    "a positive int"
                )
            for quantile_field in _TRAJECTORY_QUANTILES:
                v = quantiles.get(quantile_field)
                if (
                    not isinstance(v, (int, float))
                    or isinstance(v, bool)
                    or v < 0
                ):
                    errors.append(
                        f"benches.fleet.{arm}.{temperature}."
                        f"{quantile_field} must be a non-negative number"
                    )
        rps = digest.get("cold_throughput_rps")
        if not isinstance(rps, (int, float)) or isinstance(rps, bool) \
                or rps < 0:
            errors.append(
                f"benches.fleet.{arm}.cold_throughput_rps must be a "
                "non-negative number"
            )
    for ratio_field in ("cold_speedup", "warm_p99_ratio"):
        v = entry.get(ratio_field)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            errors.append(
                f"benches.fleet.{ratio_field} must be a non-negative number"
            )
    return errors


def _validate_trajectory_record(payload: dict) -> List[str]:
    """One perf-trajectory record (see ``scripts/bench_trajectory.py``)."""
    errors: List[str] = []
    for field in ("recorded_at", "python", "dataset"):
        v = payload.get(field)
        if not isinstance(v, str) or not v:
            errors.append(f"{field!r} must be a non-empty string")
    k = payload.get("k")
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        errors.append(f"'k' must be a positive int, got {k!r}")
    benches = payload.get("benches")
    if not isinstance(benches, dict):
        return errors + ["'benches' must be an object"]
    for bench, fields in _TRAJECTORY_BENCHES.items():
        entry = benches.get(bench)
        if not isinstance(entry, dict):
            errors.append(f"benches.{bench} must be an object")
            continue
        for field in fields:
            v = entry.get(field)
            if (
                not isinstance(v, (int, float))
                or isinstance(v, bool)
                or v < 0
            ):
                errors.append(
                    f"benches.{bench}.{field} must be a non-negative number"
                )
    service = benches.get("service_query")
    if not isinstance(service, dict):
        errors.append("benches.service_query must be an object")
    else:
        for temperature in ("cold", "warm"):
            digest = service.get(temperature)
            if not isinstance(digest, dict):
                errors.append(
                    f"benches.service_query.{temperature} must be an object"
                )
                continue
            count = digest.get("count")
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                errors.append(
                    f"benches.service_query.{temperature}.count must be "
                    "a positive int"
                )
            for field in _TRAJECTORY_QUANTILES:
                v = digest.get(field)
                if (
                    not isinstance(v, (int, float))
                    or isinstance(v, bool)
                    or v < 0
                ):
                    errors.append(
                        f"benches.service_query.{temperature}.{field} "
                        "must be a non-negative number"
                    )
    if "index_update" in benches:
        errors.extend(_validate_update_bench(benches["index_update"]))
    if "fleet" in benches:
        errors.extend(_validate_fleet_bench(benches["fleet"]))
    return errors


def validate_trajectory(payload: Any) -> List[str]:
    """Validate a ``BENCH_trajectory.json`` document (a list of records).

    The trajectory is append-only: every record must carry the
    ``repro/bench-trajectory-v1`` schema tag and the fixed core bench
    numbers, and ``recorded_at`` must be non-decreasing so the file
    reads as a time series.
    """
    if not isinstance(payload, list):
        return ["trajectory must be a JSON array of records"]
    if not payload:
        return ["trajectory must contain at least one record"]
    errors: List[str] = []
    previous_at = ""
    for i, record in enumerate(payload):
        if not isinstance(record, dict):
            errors.append(f"record {i}: must be an object")
            continue
        schema = record.get("schema")
        if schema != TRAJECTORY_SCHEMA:
            errors.append(
                f"record {i}: schema {schema!r} != {TRAJECTORY_SCHEMA!r}"
            )
            continue
        errors.extend(
            f"record {i}: {err}"
            for err in _validate_trajectory_record(record)
        )
        recorded_at = record.get("recorded_at")
        if isinstance(recorded_at, str):
            if recorded_at < previous_at:
                errors.append(
                    f"record {i}: recorded_at {recorded_at!r} precedes "
                    f"previous record's {previous_at!r}"
                )
            previous_at = recorded_at
    return errors


def validate_result(payload: Any) -> List[str]:
    """Validate one versioned payload; return a list of error strings.

    Dispatches on the ``"schema"`` field; unknown schemas are an error
    (a version this validator does not speak must never pass silently).
    Unknown *sibling* keys are allowed — v1 payloads are
    forward-extensible.
    """
    if not isinstance(payload, dict):
        return ["payload must be a JSON object"]
    schema = payload.get("schema")
    validators = {
        "repro/result-v1": _validate_result_v1,
        "repro/profile-v1": _validate_profile_v1,
        "repro/stats-v1": _validate_stats_v1,
        "repro/service-v1": _validate_service_envelope,
        "repro/service-v1.1": _validate_service_envelope_v11,
        "repro/service-stats-v1": _validate_service_stats_v1,
        "repro/router-stats-v1": _validate_router_stats_v1,
        "repro/topology-v1": _validate_topology_v1,
        TRAJECTORY_SCHEMA: _validate_trajectory_record,
    }
    checker = validators.get(schema)
    if checker is None:
        return [
            f"unknown payload schema {schema!r}; expected one of: "
            + ", ".join(sorted(validators))
        ]
    return checker(payload)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: exit 0 when every given file validates."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.validate",
        description="validate repro.obs trace (JSON-lines) and metrics files",
    )
    parser.add_argument("trace", nargs="?", help="JSON-lines trace file")
    parser.add_argument("--metrics", help="metrics snapshot JSON file")
    parser.add_argument(
        "--result", action="append", metavar="PATH", default=[],
        help="versioned payload file: a single JSON object (query --json "
             "output) or ND-JSON lines (service responses); repeatable",
    )
    parser.add_argument(
        "--trajectory", action="append", metavar="PATH", default=[],
        help="BENCH_trajectory.json perf-trajectory file (an array of "
             "repro/bench-trajectory-v1 records); repeatable",
    )
    args = parser.parse_args(argv)
    if (
        not args.trace and not args.metrics and not args.result
        and not args.trajectory
    ):
        parser.error(
            "give a trace file, --metrics, --result and/or --trajectory"
        )
    failed = False
    if args.trace:
        with open(args.trace, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        errors = validate_trace_lines(lines)
        if errors:
            failed = True
            for err in errors:
                print(f"{args.trace}: {err}", file=sys.stderr)
        else:
            n_spans = sum(1 for l in lines if '"span_end"' in l)
            print(f"{args.trace}: OK ({len(lines)} events, {n_spans} spans)")
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                payload = None
                errors = [f"not valid JSON ({exc})"]
            else:
                errors = validate_metrics(payload)
        if errors:
            failed = True
            for err in errors:
                print(f"{args.metrics}: {err}", file=sys.stderr)
        else:
            print(
                f"{args.metrics}: OK ({len(payload['counters'])} counters, "
                f"{len(payload['spans'])} span paths)"
            )
    for result_path in args.result:
        with open(result_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:  # a single (possibly pretty-printed) JSON object...
            payloads = [json.loads(text)]
        except json.JSONDecodeError:
            payloads = []  # ...else ND-JSON, one payload per line
            errors = []
            for lineno, line in enumerate(text.splitlines(), start=1):
                if not line.strip():
                    continue
                try:
                    payloads.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    errors.append(f"line {lineno}: not valid JSON ({exc})")
            if errors:
                failed = True
                for err in errors:
                    print(f"{result_path}: {err}", file=sys.stderr)
                continue
        if not payloads:
            failed = True
            print(f"{result_path}: no payloads found", file=sys.stderr)
            continue
        file_errors: List[str] = []
        for i, payload in enumerate(payloads):
            for err in validate_result(payload):
                where = f"payload {i + 1}: " if len(payloads) > 1 else ""
                file_errors.append(f"{where}{err}")
        if file_errors:
            failed = True
            for err in file_errors:
                print(f"{result_path}: {err}", file=sys.stderr)
        else:
            schemas = {p.get("schema") for p in payloads}
            print(
                f"{result_path}: OK ({len(payloads)} payload(s), "
                f"schema(s): {', '.join(sorted(schemas))})"
            )
    for trajectory_path in args.trajectory:
        with open(trajectory_path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                payload = None
                errors = [f"not valid JSON ({exc})"]
            else:
                errors = validate_trajectory(payload)
        if errors:
            failed = True
            for err in errors:
                print(f"{trajectory_path}: {err}", file=sys.stderr)
        else:
            print(
                f"{trajectory_path}: OK ({len(payload)} trajectory "
                f"record(s), latest {payload[-1]['recorded_at']})"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
