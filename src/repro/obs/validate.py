"""Schema validation for ``repro.obs`` trace and metrics files.

A **trace** is JSON-lines: one event object per line, as emitted by a
:class:`~repro.obs.MetricsRecorder` with a sink attached.  The schema:

* every line is a JSON object with an ``event`` field in
  ``{"counter", "gauge", "span_start", "span_end", "point"}`` and a
  numeric ``t`` (seconds since the recorder started, non-decreasing);
* ``counter`` events carry ``name`` (str), ``delta`` (int) and the
  running ``value`` (int);
* ``gauge`` events carry ``name`` and ``value``;
* ``span_start`` / ``span_end`` carry the nested ``span`` path, and
  ``span_end`` adds non-negative ``seconds``; starts and ends must
  balance like a well-formed bracket sequence (spans strictly nest);
* ``point`` events carry ``name`` and optional ``fields``.

A **metrics** file is one JSON object — a
:meth:`~repro.obs.MetricsRecorder.snapshot`: ``counters`` (str -> int),
``gauges`` (str -> JSON value), ``spans`` (list of
``{"span", "count", "seconds"}``).

Used by the CI observability job and usable standalone::

    python -m repro.obs.validate trace.jsonl --metrics metrics.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Iterable, List, Optional

__all__ = ["validate_trace_lines", "validate_metrics", "main"]

_EVENT_TYPES = {"counter", "gauge", "span_start", "span_end", "point"}


def validate_trace_lines(lines: Iterable[str]) -> List[str]:
    """Validate a JSON-lines trace; return a list of error strings.

    An empty list means the trace conforms to the schema.  Blank lines
    are rejected (a truncated write is a real failure mode for traces).
    """
    errors: List[str] = []
    open_spans: List[str] = []
    last_t = 0.0
    n_lines = 0
    for lineno, line in enumerate(lines, start=1):
        n_lines += 1
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(payload, dict):
            errors.append(f"line {lineno}: expected a JSON object")
            continue
        kind = payload.get("event")
        if kind not in _EVENT_TYPES:
            errors.append(f"line {lineno}: unknown event type {kind!r}")
            continue
        t = payload.get("t")
        if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
            errors.append(f"line {lineno}: missing or negative timestamp 't'")
        else:
            if t < last_t:
                errors.append(
                    f"line {lineno}: timestamp {t} precedes previous {last_t}"
                )
            last_t = float(t)
        if kind in ("counter", "gauge", "point"):
            if not isinstance(payload.get("name"), str) or not payload["name"]:
                errors.append(f"line {lineno}: {kind} event without a 'name'")
        if kind == "counter":
            for field in ("delta", "value"):
                v = payload.get(field)
                if not isinstance(v, int) or isinstance(v, bool):
                    errors.append(
                        f"line {lineno}: counter field {field!r} must be an int"
                    )
        if kind == "gauge" and "value" not in payload:
            errors.append(f"line {lineno}: gauge event without a 'value'")
        if kind in ("span_start", "span_end"):
            span = payload.get("span")
            if not isinstance(span, str) or not span:
                errors.append(f"line {lineno}: {kind} without a 'span' path")
                continue
            if kind == "span_start":
                open_spans.append(span)
            else:
                seconds = payload.get("seconds")
                if (
                    not isinstance(seconds, (int, float))
                    or isinstance(seconds, bool)
                    or seconds < 0
                ):
                    errors.append(
                        f"line {lineno}: span_end without non-negative 'seconds'"
                    )
                if not open_spans:
                    errors.append(
                        f"line {lineno}: span_end {span!r} with no open span"
                    )
                elif open_spans[-1] != span:
                    errors.append(
                        f"line {lineno}: span_end {span!r} does not match "
                        f"innermost open span {open_spans[-1]!r}"
                    )
                    open_spans.pop()
                else:
                    open_spans.pop()
    for span in open_spans:
        errors.append(f"span {span!r} was started but never ended")
    if n_lines == 0:
        errors.append("trace is empty")
    return errors


def validate_metrics(payload: Any) -> List[str]:
    """Validate a metrics snapshot object; return a list of error strings."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["metrics snapshot must be a JSON object"]
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        errors.append("'counters' must be an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(f"counter {name!r} must be an int, got {value!r}")
    if not isinstance(payload.get("gauges"), dict):
        errors.append("'gauges' must be an object")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        errors.append("'spans' must be a list")
    else:
        for i, entry in enumerate(spans):
            if not isinstance(entry, dict):
                errors.append(f"spans[{i}] must be an object")
                continue
            if not isinstance(entry.get("span"), str) or not entry["span"]:
                errors.append(f"spans[{i}] needs a non-empty 'span' path")
            count = entry.get("count")
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                errors.append(f"spans[{i}] needs a positive integer 'count'")
            seconds = entry.get("seconds")
            if (
                not isinstance(seconds, (int, float))
                or isinstance(seconds, bool)
                or seconds < 0
            ):
                errors.append(f"spans[{i}] needs non-negative 'seconds'")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: exit 0 when every given file validates."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.validate",
        description="validate repro.obs trace (JSON-lines) and metrics files",
    )
    parser.add_argument("trace", nargs="?", help="JSON-lines trace file")
    parser.add_argument("--metrics", help="metrics snapshot JSON file")
    args = parser.parse_args(argv)
    if not args.trace and not args.metrics:
        parser.error("give a trace file and/or --metrics")
    failed = False
    if args.trace:
        with open(args.trace, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        errors = validate_trace_lines(lines)
        if errors:
            failed = True
            for err in errors:
                print(f"{args.trace}: {err}", file=sys.stderr)
        else:
            n_spans = sum(1 for l in lines if '"span_end"' in l)
            print(f"{args.trace}: OK ({len(lines)} events, {n_spans} spans)")
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                payload = None
                errors = [f"not valid JSON ({exc})"]
            else:
                errors = validate_metrics(payload)
        if errors:
            failed = True
            for err in errors:
                print(f"{args.metrics}: {err}", file=sys.stderr)
        else:
            print(
                f"{args.metrics}: OK ({len(payload['counters'])} counters, "
                f"{len(payload['spans'])} span paths)"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
