"""Structured metrics and tracing (`repro.obs`).

Every instrumented entry point in the library takes ``recorder=``,
defaulting to the no-op :data:`NULL_RECORDER`; pass a
:class:`MetricsRecorder` to collect counters, gauges, log-bucketed
latency :class:`Histogram`\\ s and nested phase spans — optionally
mirrored as a JSON-lines trace.  Snapshots render to the Prometheus
text format via :func:`render_exposition` (the service's ``GET
/metrics`` endpoint).  See ``docs/observability.md`` for the event
schema and the CLI flags.
"""

from .exposition import (
    histogram_from_buckets,
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
)
from .histogram import DEFAULT_BOUNDS, Histogram, default_bounds
from .recorder import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    SpanRecord,
)
from .validate import validate_metrics, validate_trace_lines

__all__ = [
    "Recorder",
    "NullRecorder",
    "MetricsRecorder",
    "SpanRecord",
    "NULL_RECORDER",
    "Histogram",
    "DEFAULT_BOUNDS",
    "default_bounds",
    "render_exposition",
    "parse_exposition",
    "histogram_from_buckets",
    "sanitize_metric_name",
    "validate_metrics",
    "validate_trace_lines",
]
