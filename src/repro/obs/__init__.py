"""Structured metrics and tracing (`repro.obs`).

Every instrumented entry point in the library takes ``recorder=``,
defaulting to the no-op :data:`NULL_RECORDER`; pass a
:class:`MetricsRecorder` to collect counters, gauges and nested phase
spans — optionally mirrored as a JSON-lines trace.  See
``docs/observability.md`` for the event schema and the CLI flags.
"""

from .recorder import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    SpanRecord,
)
from .validate import validate_metrics, validate_trace_lines

__all__ = [
    "Recorder",
    "NullRecorder",
    "MetricsRecorder",
    "SpanRecord",
    "NULL_RECORDER",
    "validate_trace_lines",
    "validate_metrics",
]
