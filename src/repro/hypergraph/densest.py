"""Densest sub-hypergraph: peeling, exact flow, and the Charikar LP.

Three independent solvers for ``max_S |E(S)| / |S|`` on a hypergraph:

* :func:`peel_densest` — greedy min-degree peeling, a ``1/r``
  approximation for rank-r hypergraphs (Charikar'00 generalised);
* :func:`exact_densest` — the integer min-cut oracle (shared with the
  k-clique solvers through :mod:`repro.flow.densest`);
* :func:`lp_densest_value` — Charikar's LP relaxation solved with scipy,
  whose optimum *equals* the maximum density (the LP is known to be
  integral in this sense).  It has no combinatorial structure in common
  with the other two, making it a genuinely independent cross-check used
  by the test suite.
"""

from __future__ import annotations

import heapq
from fractions import Fraction
from typing import List, Tuple

from ..flow.densest import exact_densest_from_cliques
from .hypergraph import Hypergraph

__all__ = ["peel_densest", "exact_densest", "lp_densest_value"]


def peel_densest(hypergraph: Hypergraph) -> Tuple[List[int], Fraction]:
    """Greedy peeling: remove the min-degree vertex, keep the best suffix.

    Guarantees density ``>= optimum / rank``.  Runs in
    ``O((n + total edge size) log n)``.
    """
    n = hypergraph.n
    if hypergraph.m == 0:
        return [], Fraction(0)
    # incidence lists for incremental degree updates
    incident: List[List[int]] = [[] for _ in range(n)]
    for ei, edge in enumerate(hypergraph.edges):
        for v in edge:
            incident[v].append(ei)
    degree = [hypergraph.degree(v) for v in range(n)]
    alive_edge = [True] * hypergraph.m
    alive = [True] * n
    remaining_edges = hypergraph.m
    heap = [(degree[v], v) for v in range(n)]
    heapq.heapify(heap)

    best_density = Fraction(hypergraph.m, n)
    best_removed = 0
    removal_order: List[int] = []
    removed = 0
    while removed < n:
        d, v = heapq.heappop(heap)
        if not alive[v] or d != degree[v]:
            continue
        alive[v] = False
        removal_order.append(v)
        removed += 1
        for ei in incident[v]:
            if alive_edge[ei]:
                alive_edge[ei] = False
                remaining_edges -= 1
                for u in hypergraph.edges[ei]:
                    if alive[u]:
                        degree[u] -= 1
                        heapq.heappush(heap, (degree[u], u))
        survivors = n - removed
        if survivors and remaining_edges:
            density = Fraction(remaining_edges, survivors)
            if density > best_density:
                best_density = density
                best_removed = removed
    chosen = sorted(set(range(n)) - set(removal_order[:best_removed]))
    return chosen, best_density


def exact_densest(hypergraph: Hypergraph) -> Tuple[List[int], Fraction]:
    """Exact densest sub-hypergraph via iterated min-cut."""
    support = hypergraph.vertex_support()
    if not support:
        return [], Fraction(0)
    return exact_densest_from_cliques(hypergraph.edges, support)


def lp_densest_value(hypergraph: Hypergraph) -> float:
    """Optimal value of Charikar's densest-subgraph LP.

    maximise   sum_e y_e
    subject to y_e <= x_v          for every e and v in e
               sum_v x_v <= 1
               x, y >= 0

    The optimum equals ``max_S |E(S)| / |S|``.  Requires scipy.
    """
    from scipy.optimize import linprog

    m = hypergraph.m
    if m == 0:
        return 0.0
    support = hypergraph.vertex_support()
    col_of = {v: i for i, v in enumerate(support)}
    n_x = len(support)
    n_cols = n_x + m  # x variables then y variables
    # objective: maximise sum(y) -> minimise -sum(y)
    objective = [0.0] * n_x + [-1.0] * m
    # inequality rows: y_e - x_v <= 0, plus sum(x) <= 1
    rows = []
    rhs = []
    for ei, edge in enumerate(hypergraph.edges):
        for v in edge:
            row = [0.0] * n_cols
            row[n_x + ei] = 1.0
            row[col_of[v]] = -1.0
            rows.append(row)
            rhs.append(0.0)
    rows.append([1.0] * n_x + [0.0] * m)
    rhs.append(1.0)
    result = linprog(
        objective, A_ub=rows, b_ub=rhs, bounds=[(0, None)] * n_cols,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP solver failed: {result.message}")
    return -result.fun
