"""Hypergraph container for the densest-sub-hypergraph view.

The paper (§3.2, after Tsourakakis'15 and Sun et al.'20) formulates the
k-clique densest subgraph as the *densest sub-hypergraph* of the
hypergraph whose hyperedges are the k-cliques.  This module makes that
object first-class: all of the density machinery (peeling, LP, flow,
Frank–Wolfe) is expressible on it, and the k-clique problem is recovered
through :meth:`Hypergraph.from_graph_cliques`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from ..cliques.kclist import iter_k_cliques
from ..cliques.ordered_view import OrderedGraphView
from ..errors import GraphError
from ..graph.graph import Graph

__all__ = ["Hypergraph"]


class Hypergraph:
    """A hypergraph over vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Hyperedges as tuples of distinct vertex ids (order irrelevant;
        stored sorted).  Duplicate hyperedges are kept — multiplicities
        are meaningful for density.
    """

    __slots__ = ("_n", "_edges", "_degree")

    def __init__(self, n: int, edges: Iterable[Sequence[int]] = ()):
        if n < 0:
            raise GraphError(f"vertex count must be non-negative, got {n}")
        self._n = n
        stored: List[Tuple[int, ...]] = []
        degree = [0] * n
        for edge in edges:
            members = tuple(sorted(edge))
            if len(set(members)) != len(members):
                raise GraphError(f"hyperedge {edge!r} has repeated vertices")
            if members and not (0 <= members[0] and members[-1] < n):
                raise GraphError(f"hyperedge {edge!r} out of range for n={n}")
            if not members:
                raise GraphError("empty hyperedges are not allowed")
            stored.append(members)
            for v in members:
                degree[v] += 1
        self._edges = stored
        self._degree = degree

    @classmethod
    def from_graph_cliques(
        cls, graph: Graph, k: int, view: Optional[OrderedGraphView] = None
    ) -> "Hypergraph":
        """The k-clique hypergraph of ``graph`` (one hyperedge per clique)."""
        return cls(graph.n, iter_k_cliques(graph, k, view=view))

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of hyperedges."""
        return len(self._edges)

    @property
    def edges(self) -> List[Tuple[int, ...]]:
        """The hyperedges (treat as read-only)."""
        return self._edges

    def degree(self, v: int) -> int:
        """Number of hyperedges containing ``v``."""
        return self._degree[v]

    def rank(self) -> int:
        """The maximum hyperedge size (0 when there are none)."""
        return max((len(e) for e in self._edges), default=0)

    def edges_inside(self, vertices: Iterable[int]) -> int:
        """Number of hyperedges fully contained in ``vertices``."""
        inside = set(vertices)
        return sum(1 for e in self._edges if all(v in inside for v in e))

    def density(self, vertices: Iterable[int]) -> Fraction:
        """``edges_inside(S) / |S|`` as an exact fraction (0 for empty)."""
        vs = set(vertices)
        if not vs:
            return Fraction(0)
        return Fraction(self.edges_inside(vs), len(vs))

    def restricted_to(self, vertices: Iterable[int]) -> "Hypergraph":
        """The sub-hypergraph induced by ``vertices`` (ids preserved)."""
        inside = set(vertices)
        kept = [e for e in self._edges if all(v in inside for v in e)]
        return Hypergraph(self._n, kept)

    def vertex_support(self) -> List[int]:
        """Vertices participating in at least one hyperedge, sorted."""
        return [v for v in range(self._n) if self._degree[v] > 0]

    def __repr__(self) -> str:
        return f"Hypergraph(n={self._n}, m={self.m}, rank={self.rank()})"
