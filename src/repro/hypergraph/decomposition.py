"""Density-friendly decomposition of a hypergraph.

The structure underlying the paper's convex-programming view (Tatti &
Gionis'15; Danisch, Chan & Sozio'17 [17]): a chain

    B_1 ⊂ B_2 ⊂ ... ⊂ B_t = V

where ``B_1`` is the *maximal* densest sub-hypergraph and each next
shell ``B_{i+1} \\ B_i`` maximises the marginal density

    ( e(B_{i+1}) - e(B_i) ) / ( |B_{i+1}| - |B_i| ).

Marginal densities strictly decrease along the chain, and the converged
Frank–Wolfe vertex loads are constant on each shell (equal to its
marginal density) — which is exactly why weight-ordered prefix extraction
recovers the densest subgraph.

The marginal problem reduces to a plain densest-sub-hypergraph instance
on the *quotient*: drop settled edges and strip settled vertices from the
rest; each level is then one exact min-cut computation with a maximal
witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Set, Tuple

from ..flow.densest import exact_densest_from_cliques, find_denser_subgraph
from .hypergraph import Hypergraph

__all__ = ["DecompositionLevel", "density_friendly_decomposition"]


@dataclass(frozen=True)
class DecompositionLevel:
    """One shell of the decomposition.

    ``vertices`` are the *new* vertices of this level (the shell
    ``B_i \\ B_{i-1}``); ``density`` is its marginal density.
    """

    vertices: Tuple[int, ...]
    density: Fraction


def density_friendly_decomposition(
    hypergraph: Hypergraph,
) -> List[DecompositionLevel]:
    """Compute the full density-friendly decomposition.

    Returns shells in decreasing marginal-density order; shells cover
    every vertex, with a final density-0 shell for vertices in no
    (remaining) hyperedge.  Exact throughout — one maximal min-cut per
    shell.
    """
    settled: Set[int] = set()
    levels: List[DecompositionLevel] = []
    while True:
        quotient = []
        for edge in hypergraph.edges:
            rest = tuple(v for v in edge if v not in settled)
            if rest:
                quotient.append(rest)
        if not quotient:
            break
        support = sorted({v for edge in quotient for v in edge})
        _, density = exact_densest_from_cliques(quotient, support)
        if density <= 0:
            break
        n_support = len(support)
        separation = Fraction(1, n_support * max(n_support - 1, 1))
        witness = find_denser_subgraph(
            quotient, support, density - separation / 2, maximal=True
        )
        if witness is None:  # cannot happen: density is achieved
            break
        levels.append(
            DecompositionLevel(vertices=tuple(sorted(witness)), density=density)
        )
        settled |= set(witness)
    leftovers = tuple(v for v in range(hypergraph.n) if v not in settled)
    if leftovers:
        levels.append(DecompositionLevel(vertices=leftovers, density=Fraction(0)))
    return levels
