"""The hypergraph view of the k-clique densest subgraph problem."""

from .decomposition import DecompositionLevel, density_friendly_decomposition
from .densest import exact_densest, lp_densest_value, peel_densest
from .hypergraph import Hypergraph

__all__ = [
    "Hypergraph",
    "peel_densest",
    "exact_densest",
    "lp_densest_value",
    "DecompositionLevel",
    "density_friendly_decomposition",
]
