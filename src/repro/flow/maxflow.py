"""Dinic's maximum-flow algorithm.

The exact algorithms (SCTL*-Exact, KCL-Exact, CoreExact) all verify
candidate solutions through min-cuts of a clique/vertex flow network; this
module provides the integer max-flow engine they share.

The implementation uses flat arc arrays (``to``, ``cap``, paired reverse
arcs at ``i ^ 1``), BFS level graphs and DFS blocking flows with the
standard ``iter`` pointer optimisation — ``O(V^2 E)`` worst case, far
better in practice on unit-capacity-heavy networks like ours.
"""

from __future__ import annotations

from collections import deque
from typing import List

from ..errors import GraphError

__all__ = ["MaxFlow"]


class MaxFlow:
    """A max-flow problem instance on nodes ``0 .. n-1``."""

    def __init__(self, n: int):
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        self._n = n
        self._head: List[List[int]] = [[] for _ in range(n)]
        self._to: List[int] = []
        self._cap: List[int] = []

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add a directed arc ``u -> v``; returns the arc id.

        The reverse arc (capacity 0) is created automatically at ``id ^ 1``.
        """
        if capacity < 0:
            raise GraphError(f"capacity must be non-negative, got {capacity}")
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphError(f"arc ({u}, {v}) out of range for n={self._n}")
        arc = len(self._to)
        self._to.append(v)
        self._cap.append(capacity)
        self._head[u].append(arc)
        self._to.append(u)
        self._cap.append(0)
        self._head[v].append(arc + 1)
        return arc

    def _bfs_levels(self, source: int, sink: int) -> List[int]:
        level = [-1] * self._n
        level[source] = 0
        queue = deque([source])
        to, cap, head = self._to, self._cap, self._head
        while queue:
            u = queue.popleft()
            for arc in head[u]:
                v = to[arc]
                if cap[arc] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level

    def max_flow(self, source: int, sink: int) -> int:
        """Total maximum flow from ``source`` to ``sink``."""
        if source == sink:
            raise GraphError("source and sink must differ")
        to, cap, head = self._to, self._cap, self._head
        total = 0
        while True:
            level = self._bfs_levels(source, sink)
            if level[sink] < 0:
                return total
            iters = [0] * self._n

            # iterative DFS blocking flow
            def augment() -> int:
                path: List[int] = []  # arc ids along the current path
                u = source
                while True:
                    if u == sink:
                        pushed = min(cap[a] for a in path)
                        for a in path:
                            cap[a] -= pushed
                            cap[a ^ 1] += pushed
                        # retreat to the first saturated arc
                        for i, a in enumerate(path):
                            if cap[a] == 0:
                                del path[i:]
                                break
                        u = source if not path else to[path[-1]]
                        yield pushed
                        continue
                    advanced = False
                    while iters[u] < len(head[u]):
                        a = head[u][iters[u]]
                        v = to[a]
                        if cap[a] > 0 and level[v] == level[u] + 1:
                            path.append(a)
                            u = v
                            advanced = True
                            break
                        iters[u] += 1
                    if advanced:
                        continue
                    if u == source:
                        return
                    # dead end: mark level unusable, pop back
                    level[u] = -1
                    a = path.pop()
                    u = source if not path else to[path[-1]]

            for pushed in augment():
                total += pushed

    def min_cut_source_side(self, source: int) -> List[int]:
        """Nodes reachable from ``source`` in the residual network.

        Call after :meth:`max_flow`; the returned set is the **minimal**
        source side among all minimum cuts.
        """
        seen = [False] * self._n
        seen[source] = True
        queue = deque([source])
        to, cap, head = self._to, self._cap, self._head
        while queue:
            u = queue.popleft()
            for arc in head[u]:
                v = to[arc]
                if cap[arc] > 0 and not seen[v]:
                    seen[v] = True
                    queue.append(v)
        return [v for v in range(self._n) if seen[v]]

    def min_cut_source_side_maximal(self, sink: int) -> List[int]:
        """The **maximal** source side among all minimum cuts.

        Complement of the nodes that can still reach ``sink`` in the
        residual network (reverse BFS: ``u`` reaches ``sink`` if some
        residual arc ``u -> x`` leads to a reaching ``x``).  Call after
        :meth:`max_flow`.  Minimal and maximal sides coincide exactly
        when the minimum cut is unique.
        """
        to, cap, head = self._to, self._cap, self._head
        reaches = [False] * self._n
        reaches[sink] = True
        queue = deque([sink])
        while queue:
            x = queue.popleft()
            # residual arcs into x are the reverses (arc ^ 1) of arcs
            # leaving x whose reverse has residual capacity
            for arc in head[x]:
                u = to[arc]
                if not reaches[u] and cap[arc ^ 1] > 0:
                    reaches[u] = True
                    queue.append(u)
        return [v for v in range(self._n) if not reaches[v]]
