"""Max-flow engine and the densest-subgraph verification network."""

from .densest import (
    count_cliques_inside,
    exact_densest_binary_search,
    exact_densest_from_cliques,
    find_denser_subgraph,
)
from .maxflow import MaxFlow

__all__ = [
    "MaxFlow",
    "find_denser_subgraph",
    "exact_densest_from_cliques",
    "exact_densest_binary_search",
    "count_cliques_inside",
]
