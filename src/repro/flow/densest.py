"""Flow-network machinery for exact k-clique densest subgraph detection.

Following the classic Goldberg construction lifted to the k-clique
hypergraph (Tsourakakis'15 / Fang et al.'19 / Sun et al.'20): given the set
of k-cliques ``C`` over a vertex set ``V`` and a guess ``alpha = a/b``,
build the network

* ``source -> clique`` with capacity ``b`` (one arc per k-clique),
* ``clique -> member vertex`` with capacity ``+inf``,
* ``vertex -> sink`` with capacity ``a``,

so that ``min_cut = b*|C| - max_S (b*|C(S)| - a*|S|)``.  A subgraph denser
than ``alpha`` exists **iff** ``min_cut < b*|C|``, and the source side of a
minimum cut realises the maximiser.  All capacities stay integral, so the
optimality test is exact — no floating-point tolerance anywhere.

The exact solvers use :func:`find_denser_subgraph` as their optimality
oracle and :func:`exact_densest_from_cliques` as a self-contained exact
solver (iterated cut extraction; densities strictly increase and live in a
finite set, so it terminates).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from .maxflow import MaxFlow

__all__ = [
    "find_denser_subgraph",
    "exact_densest_from_cliques",
    "exact_densest_binary_search",
    "count_cliques_inside",
]


def count_cliques_inside(cliques: Sequence[Tuple[int, ...]], vertices) -> int:
    """Number of cliques whose vertex set lies entirely in ``vertices``."""
    inside = set(vertices)
    return sum(1 for c in cliques if all(v in inside for v in c))


def find_denser_subgraph(
    cliques: Sequence[Tuple[int, ...]],
    vertices: Sequence[int],
    alpha: Fraction,
    maximal: bool = False,
) -> Optional[List[int]]:
    """A vertex set with k-clique density strictly above ``alpha``, or None.

    Parameters
    ----------
    cliques:
        Every k-clique of the graph under consideration (vertex-id tuples).
    vertices:
        The vertex universe; ids may be arbitrary non-negative ints.
    alpha:
        The density threshold as an exact rational.
    maximal:
        Return the *maximal* maximiser instead of the minimal one (all
        minimum cuts share the same value; the density-friendly
        decomposition needs the inclusion-wise largest witness).

    Returns a maximiser of ``|C(S)| - alpha * |S|`` when its value is
    positive; this set has density ``> alpha``.
    """
    verts = list(vertices)
    if not cliques or not verts:
        return None
    a, b = alpha.numerator, alpha.denominator
    if a < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    n_cliques = len(cliques)
    vertex_node = {v: 2 + n_cliques + i for i, v in enumerate(verts)}
    network = MaxFlow(2 + n_cliques + len(verts))
    source, sink = 0, 1
    infinite = b * n_cliques + 1
    for ci, clique in enumerate(cliques):
        cnode = 2 + ci
        network.add_edge(source, cnode, b)
        for v in clique:
            network.add_edge(cnode, vertex_node[v], infinite)
    for v in verts:
        network.add_edge(vertex_node[v], sink, a)
    cut = network.max_flow(source, sink)
    if cut >= b * n_cliques:
        return None
    if maximal:
        side = set(network.min_cut_source_side_maximal(sink))
    else:
        side = set(network.min_cut_source_side(source))
    result = [v for v in verts if vertex_node[v] in side]
    return result or None


def exact_densest_binary_search(
    cliques: Sequence[Tuple[int, ...]],
    vertices: Sequence[int],
    lower: Optional[Fraction] = None,
) -> Tuple[List[int], Fraction]:
    """Exact densest subgraph by the classic binary-search framework.

    The CoreExact/Goldberg approach the paper reviews in §3.1: maintain
    bounds ``l <= rho_opt <= u`` and bisect, asking the min-cut oracle
    whether a subgraph denser than the midpoint exists, until the interval
    is narrower than the minimum gap between two distinct subgraph
    densities (``1 / (|V| * (|V| - 1))``) — at which point the last
    denser-side witness is optimal.

    Kept alongside :func:`exact_densest_from_cliques` (iterated cut
    extraction) as an independent implementation of the same result; the
    tests require the two to agree bit for bit.

    Parameters
    ----------
    cliques:
        Every k-clique of the graph under consideration.
    vertices:
        The vertex universe.
    lower:
        Optional known achieved density to start the lower bound from.
    """
    verts = list(vertices)
    if not cliques or not verts:
        return [], Fraction(0)
    n = len(verts)
    witness = sorted(verts)
    low = Fraction(len(cliques), n)  # whole-graph density is achieved
    if lower is not None and lower > low:
        low = lower
    high = Fraction(len(cliques))  # no subgraph beats one vertex per clique
    # distinct subgraph densities a/b, b <= n differ by >= 1/(n(n-1))
    gap = Fraction(1, n * max(n - 1, 1))
    while high - low >= gap:
        mid = (low + high) / 2
        denser = find_denser_subgraph(cliques, verts, mid)
        if denser is None:
            high = mid
        else:
            witness = sorted(denser)
            low = Fraction(count_cliques_inside(cliques, witness), len(witness))
    # `low` is achieved by `witness`; nothing exceeds `high` < low + gap,
    # and densities are gap-separated, so witness is optimal
    return witness, low


def exact_densest_from_cliques(
    cliques: Sequence[Tuple[int, ...]],
    vertices: Sequence[int],
    warm_start: Optional[Sequence[int]] = None,
) -> Tuple[List[int], Fraction]:
    """Exact k-clique densest subgraph given the full clique list.

    Iterated min-cut extraction: start from ``warm_start`` (or the full
    vertex set), repeatedly ask :func:`find_denser_subgraph` for something
    strictly denser, stop when nothing is.  Returns ``(vertex_list,
    exact_density)``; an empty clique list yields ``([], 0)``.
    """
    verts = list(vertices)
    if not cliques or not verts:
        return [], Fraction(0)
    if warm_start:
        current = sorted(set(warm_start))
        best = Fraction(count_cliques_inside(cliques, current), len(current))
    else:
        current = sorted(verts)
        best = Fraction(len(cliques), len(current))
    while True:
        denser = find_denser_subgraph(cliques, verts, best)
        if denser is None:
            return current, best
        density = Fraction(count_cliques_inside(cliques, denser), len(denser))
        if density <= best:  # defensive: cut must strictly improve
            return current, best
        current, best = sorted(denser), density
