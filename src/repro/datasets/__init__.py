"""Synthetic dataset registry standing in for the paper's SNAP graphs."""

from .registry import (
    SMALL_SET,
    DatasetSpec,
    dataset_names,
    export_all,
    get_spec,
    load_dataset,
)

__all__ = [
    "DatasetSpec",
    "dataset_names",
    "get_spec",
    "load_dataset",
    "export_all",
    "SMALL_SET",
]
