"""The 12-dataset registry mirroring the paper's Table 2.

The paper evaluates on 12 SNAP graphs (Email through Friendster).  Those
graphs cannot be bundled (no network access) and pure Python cannot chew
billion-edge inputs, so each entry here is a *synthetic stand-in* that
reproduces the structural role its counterpart plays in the evaluation —
community-rich social graphs with mid-size maximum cliques, an essentially
triangle-free road network, collaboration graphs whose ``k_max`` is huge
because author lists form large cliques, and so on — at a scale where every
algorithm (including the deliberately slow baselines) finishes in seconds.

All generators are seeded, so every experiment in the repository is exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from ..errors import DatasetError
from ..graph import generators
from ..graph.graph import Graph

__all__ = ["DatasetSpec", "dataset_names", "get_spec", "load_dataset", "SMALL_SET"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one registry dataset."""

    name: str
    paper_counterpart: str
    role: str
    builder: Callable[[], Graph]


def _email() -> Graph:
    # communication network: heavy-tailed with strong local clustering and
    # a dense departmental core (paper counterpart has k_max = 20)
    background = generators.powerlaw_cluster_graph(900, 6, 0.55, seed=11)
    core = generators.planted_near_cliques_graph(
        60, [(14, 1.0), (12, 0.92), (10, 0.9)], background_p=0.03, seed=111
    )
    return generators.disjoint_union([background, core])


def _amazon() -> Graph:
    # co-purchasing: sparse, low clustering, small maximum clique
    return generators.powerlaw_cluster_graph(2200, 3, 0.15, seed=12)


def _gowalla() -> Graph:
    # location-sharing friendships: overlapping social circles plus a
    # tight frequent-travellers clique (paper counterpart k_max = 29)
    circles = generators.overlapping_community_graph(
        1200, n_communities=90, community_size=26, intra_p=0.5,
        memberships=2, seed=13,
    )
    core = generators.planted_near_cliques_graph(
        50, [(16, 1.0), (12, 0.9)], background_p=0.03, seed=113
    )
    return generators.disjoint_union([circles, core])


def _dblp() -> Graph:
    # co-authorship: paper author lists are literal cliques, so k_max is
    # large; background models cross-community collaborations
    sizes = [22, 17, 14, 12, 10, 9, 8, 8, 7, 6, 6, 5, 5, 4, 4, 4]
    communities = [(s, 1.0) for s in sizes]
    return generators.planted_near_cliques_graph(
        700, communities, background_p=0.004, seed=14
    )


def _road() -> Graph:
    # road network: grid-like, almost no triangles, k_max barely above 2
    return generators.grid_graph(42, 42, diagonal_p=0.03, seed=15)


def _wikitalk() -> Graph:
    # talk-page edits: hub-dominated with a dense moderator core
    hub = generators.barabasi_albert_graph(1800, 4, seed=16)
    core = generators.planted_near_cliques_graph(
        200, [(15, 1.0), (13, 0.9), (12, 0.85)], background_p=0.02, seed=17
    )
    return generators.disjoint_union([hub, core])


def _youtube() -> Graph:
    # video friendships: large sparse periphery, moderate dense pockets
    periphery = generators.powerlaw_cluster_graph(2600, 4, 0.35, seed=18)
    pockets = generators.planted_near_cliques_graph(
        40, [(12, 1.0), (10, 0.9)], background_p=0.03, seed=118
    )
    return generators.disjoint_union([periphery, pockets])


def _skitter() -> Graph:
    # traceroute topology: dense backbone with big cliques
    return generators.powerlaw_cluster_graph(1500, 9, 0.6, seed=19)


def _pokec() -> Graph:
    # social network with pronounced community structure and one
    # exceptionally cohesive group
    caves = generators.relaxed_caveman_graph(60, 11, 0.3, seed=20)
    tight = generators.planted_near_cliques_graph(
        30, [(13, 1.0)], background_p=0.03, seed=120
    )
    return generators.disjoint_union([caves, tight])


def _livejournal() -> Graph:
    # blogging friendships: the paper's largest k_max (327); modelled by a
    # very large planted clique inside a social background
    background = generators.powerlaw_cluster_graph(1600, 4, 0.4, seed=21)
    big = generators.planted_near_cliques_graph(
        100, [(34, 1.0), (20, 0.9)], background_p=0.01, seed=22
    )
    return generators.disjoint_union([background, big])


def _orkut() -> Graph:
    # dense social communities
    return generators.relaxed_caveman_graph(55, 14, 0.25, seed=23)


def _friendster() -> Graph:
    # the billion-edge graph of Table 5: largest stand-in, used mainly by
    # the sampling experiments
    social = generators.powerlaw_cluster_graph(5200, 5, 0.5, seed=24)
    communities = generators.planted_near_cliques_graph(
        400, [(20, 0.9), (16, 0.9), (12, 0.95)], background_p=0.01, seed=25
    )
    return generators.disjoint_union([social, communities])


_REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("email", "Email", "communication network", _email),
        DatasetSpec("amazon", "Amazon", "co-purchasing network", _amazon),
        DatasetSpec("gowalla", "loc-gowalla", "location-sharing friendships", _gowalla),
        DatasetSpec("dblp", "DBLP", "co-authorship (huge k_max)", _dblp),
        DatasetSpec("road", "road-CA", "road network (no cliques)", _road),
        DatasetSpec("wikitalk", "WikiTalk", "talk-page edits", _wikitalk),
        DatasetSpec("youtube", "Youtube", "video friendships", _youtube),
        DatasetSpec("skitter", "as-skitter", "internet topology", _skitter),
        DatasetSpec("pokec", "soc-pokec", "social communities", _pokec),
        DatasetSpec("livejournal", "LiveJournal", "blogging friendships", _livejournal),
        DatasetSpec("orkut", "Orkut", "dense social communities", _orkut),
        DatasetSpec("friendster", "Friendster", "billion-edge stand-in", _friendster),
    ]
}

# the five datasets the paper uses for its Table 3 / Figure 4 comparisons
SMALL_SET: Tuple[str, ...] = ("email", "gowalla", "wikitalk", "youtube", "pokec")


def dataset_names() -> List[str]:
    """All registry dataset names, in Table 2 order."""
    return list(_REGISTRY)


def get_spec(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` for ``name``; raises on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None


@lru_cache(maxsize=None)
def load_dataset(name: str) -> Graph:
    """Build (and memoise) the named dataset graph."""
    return get_spec(name).builder()


def export_all(directory) -> List[str]:
    """Write every registry dataset as an edge-list file in ``directory``.

    Returns the written file paths.  Useful for handing the exact
    evaluation inputs to external tools (or the original C++ codes).
    """
    import os

    from ..graph.io import write_edge_list

    os.makedirs(directory, exist_ok=True)
    written = []
    for name in dataset_names():
        spec = get_spec(name)
        path = os.path.join(directory, f"{name}.txt")
        write_edge_list(
            load_dataset(name),
            path,
            header=f"{name} — synthetic stand-in for {spec.paper_counterpart}",
        )
        written.append(path)
    return written
