"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Specific subclasses communicate which subsystem raised
the error.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Invalid graph construction or graph operation."""


class InvalidParameterError(ReproError):
    """An algorithm parameter is outside its valid range (e.g. ``k < 3``)."""


class IndexBuildError(ReproError):
    """The SCT*-Index could not be built with the requested options."""


class IndexQueryError(ReproError):
    """The SCT*-Index cannot answer the requested query.

    Raised, for instance, when a partial ``SCT*-k'-Index`` is asked to list
    k-cliques for ``k`` below its build threshold.
    """


class DatasetError(ReproError):
    """Unknown dataset name or malformed dataset file."""


class SolverError(ReproError):
    """An exact solver failed to converge or verify optimality."""


class TimeoutExceeded(ReproError):
    """A benchmark run exceeded its wall-clock budget."""

    def __init__(self, budget_seconds: float, message: str = ""):
        self.budget_seconds = budget_seconds
        detail = message or f"exceeded time budget of {budget_seconds:.3f}s"
        super().__init__(detail)
