"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Specific subclasses communicate which subsystem raised
the error.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Invalid graph construction or graph operation."""


class InvalidParameterError(ReproError):
    """An algorithm parameter is outside its valid range (e.g. ``k < 3``)."""


class IndexBuildError(ReproError):
    """The SCT*-Index could not be built with the requested options."""


class IndexQueryError(ReproError):
    """The SCT*-Index cannot answer the requested query.

    Raised, for instance, when a partial ``SCT*-k'-Index`` is asked to list
    k-cliques for ``k`` below its build threshold.
    """


class DatasetError(ReproError):
    """Unknown dataset name or malformed dataset file."""


class EdgeListParseError(DatasetError, GraphError):
    """A malformed line in an edge-list file.

    Carries the 1-based ``lineno`` and the offending ``text`` so callers
    (and the CLI) can point at the exact input that failed.  Subclasses
    both :class:`DatasetError` (it is a malformed dataset file) and
    :class:`GraphError` (it surfaces from graph I/O), so either family
    catches it.
    """

    def __init__(self, lineno: int, text: str, message: str = ""):
        self.lineno = lineno
        self.text = text
        detail = message or (
            f"line {lineno}: expected two vertex tokens, got {text!r}"
        )
        super().__init__(detail)


class SolverError(ReproError):
    """An exact solver failed to converge or verify optimality."""


class BudgetExhausted(ReproError):
    """A :class:`~repro.resilience.RunBudget` ran out or was cancelled.

    ``reason`` is one of ``"deadline"``, ``"max_iterations"`` or
    ``"cancelled"``; ``stage`` names the pipeline stage (obs span name)
    that observed the exhaustion, when known.  Result-returning entry
    points catch this internally and degrade to a
    :class:`~repro.core.density.PartialResult`; only non-result producers
    (``SCTIndex.build``, ``iter_paths``) let it propagate.
    """

    def __init__(self, message: str = "run budget exhausted",
                 reason: str = "deadline", stage: str = ""):
        self.reason = reason
        self.stage = stage
        super().__init__(message)


class CheckpointError(ReproError):
    """A checkpoint snapshot is missing fields, corrupt, or incompatible
    with the run attempting to resume from it."""


class WorkerCrashError(ReproError):
    """A pool worker died abnormally (SIGKILL/OOM) during a sweep.

    The parallel engine raises this internally when it detects a dead
    worker mid-``imap``; it recovers by rebuilding the pool and re-running
    the unacknowledged chunks, degrading to in-process serial execution
    after :attr:`~repro.parallel.ParallelConfig.max_crash_retries`
    rebuilds.  It only escapes to callers if even the serial fallback is
    impossible."""


class CircuitOpenError(ReproError):
    """A circuit breaker is open: recent attempts for this cache key kept
    failing, so the request fast-fails instead of re-running doomed work.

    ``retry_after_s`` says when the next half-open probe is due;
    ``last_error`` carries the failure that tripped the breaker."""

    def __init__(self, message: str, retry_after_s: float = 0.0,
                 last_error: "BaseException | None" = None):
        self.retry_after_s = retry_after_s
        self.last_error = last_error
        super().__init__(message)


class ServiceUnavailable(ReproError):
    """The service client exhausted its retries against an unavailable or
    overloaded daemon.

    ``last_status`` is the final HTTP status observed (None when the
    connection itself failed); ``attempts`` counts requests sent."""

    def __init__(self, message: str, last_status: "int | None" = None,
                 attempts: int = 0):
        self.last_status = last_status
        self.attempts = attempts
        super().__init__(message)


class TimeoutExceeded(BudgetExhausted):
    """A run exceeded its wall-clock budget.

    Historically the bench harness's soft-timeout type; it is now the
    ``reason == "deadline"`` case of :class:`BudgetExhausted`, so bench
    and core share one exhaustion family.
    """

    def __init__(self, budget_seconds: float, message: str = "",
                 stage: str = ""):
        self.budget_seconds = budget_seconds
        detail = message or f"exceeded time budget of {budget_seconds:.3f}s"
        super().__init__(detail, reason="deadline", stage=stage)
