"""The paper's contributions: SCT*-Index, SCTL family, sampling, exact."""

from .batch import batch_update
from .density import DensestSubgraphResult
from .exact import sctl_star_exact
from .extraction import PrefixResult, best_prefix_from_cliques, best_prefix_from_paths
from .reductions import (
    KCliquePartition,
    engagement_threshold,
    kp_computation,
    partition_density_bounds,
)
from .multi import top_dense_subgraphs
from .profile import DensityProfile, density_profile
from .sampling import sample_k_cliques, sctl_star_sample
from .sct import HOLD, PIVOT, SCTIndex, SCTPath, SCTPathView
from .update import DirtyRegion, apply_edge_updates, compute_update
from .validation import VerificationReport, verify_result
from .sctl import empty_result, sctl
from .sctl_star import IterationStats, sctl_plus, sctl_star

__all__ = [
    "SCTIndex",
    "SCTPath",
    "SCTPathView",
    "HOLD",
    "PIVOT",
    "DirtyRegion",
    "apply_edge_updates",
    "compute_update",
    "DensestSubgraphResult",
    "PrefixResult",
    "best_prefix_from_paths",
    "best_prefix_from_cliques",
    "batch_update",
    "KCliquePartition",
    "kp_computation",
    "partition_density_bounds",
    "engagement_threshold",
    "sctl",
    "sctl_plus",
    "sctl_star",
    "sctl_star_sample",
    "sample_k_cliques",
    "sctl_star_exact",
    "empty_result",
    "IterationStats",
    "DensityProfile",
    "density_profile",
    "top_dense_subgraphs",
    "verify_result",
    "VerificationReport",
]
