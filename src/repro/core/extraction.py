"""Extracting a densest prefix from refined vertex weights.

Every convex-programming-style algorithm (KCL, SCTL, SCTL*, the sampling
variants) finishes the same way — Lines 6-10 of Algorithm 1:

1. sort vertices by weight, descending;
2. for each prefix of the order, count the k-cliques it contains;
3. return the prefix with the best count-per-vertex ratio.

The expensive part is step 2.  This module provides two backends:

* :func:`best_prefix_from_paths` — works directly on SCT*-Index
  root-to-leaf paths.  For each path, the number of k-cliques whose
  *last-ranked* member sits at a given rank has a closed form in binomial
  coefficients, so the full prefix profile costs
  ``O(sum_P |P| log |P|)`` — no clique is ever materialised.
* :func:`best_prefix_from_cliques` — buckets explicit cliques by the rank
  of their last member (used by the KCL baselines and the sampling stage).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import comb
from typing import Iterable, List, Optional, Sequence, Tuple

from .sct import SCTPath

__all__ = ["PrefixResult", "best_prefix_from_paths", "best_prefix_from_cliques"]


@dataclass(frozen=True)
class PrefixResult:
    """The best weight-ordered prefix.

    ``vertices`` come in weight order (heaviest first); ``clique_count``
    counts k-cliques inside the prefix, so ``clique_count / len(vertices)``
    is the reported density.
    """

    vertices: List[int]
    clique_count: int

    @property
    def density_fraction(self) -> Fraction:
        """Exact density of the prefix (0 for an empty prefix)."""
        if not self.vertices:
            return Fraction(0)
        return Fraction(self.clique_count, len(self.vertices))

    @property
    def density(self) -> float:
        """Density as a float."""
        return float(self.density_fraction)


def _weight_ranking(weights: Sequence[float]) -> Tuple[List[int], List[int]]:
    """Vertices sorted by weight descending (ties by id) and the inverse map."""
    order = sorted(range(len(weights)), key=lambda v: (-weights[v], v))
    rank = [0] * len(weights)
    for i, v in enumerate(order):
        rank[v] = i
    return order, rank


def _best_prefix(order: List[int], buckets: List[int]) -> PrefixResult:
    """Pick the prefix maximising cumulative-bucket density.

    Ties are broken towards the shorter prefix, which keeps results
    deterministic and favours small, dense answers.
    """
    best_num, best_den = 0, 1  # density 0 for the empty prefix
    best_len = 0
    running = 0
    for i, count in enumerate(buckets):
        running += count
        # running/(i+1) > best_num/best_den  <=>  running*best_den > best_num*(i+1)
        if running * best_den > best_num * (i + 1):
            best_num, best_den = running, i + 1
            best_len = i + 1
    return PrefixResult(vertices=order[:best_len], clique_count=best_num)


def best_prefix_from_paths(
    paths: Iterable[SCTPath],
    weights: Sequence[float],
    k: int,
) -> PrefixResult:
    """Best-density prefix, counting cliques through SCT*-Index paths.

    For a path with holds ``H`` and pivots ``P``, every k-clique is
    ``H + (k-|H|)-subset of P``.  Its last-ranked member is either the
    last-ranked hold (when all chosen pivots rank earlier) or the
    last-ranked chosen pivot; grouping subsets by that pivot gives
    ``C(i, t-1)`` cliques per pivot (``i`` = number of earlier-ranked
    pivots), all without enumeration.

    ``paths`` is swept exactly once, so a streaming
    :class:`~repro.core.sct.SCTPathView` costs one tree traversal and no
    path-list memory.
    """
    n = len(weights)
    order, rank = _weight_ranking(weights)
    buckets = [0] * n  # buckets[i] = cliques whose last-ranked member is order[i]
    for path in paths:
        t = k - len(path.holds)
        if t < 0 or t > len(path.pivots):
            continue
        hold_rank = max(rank[v] for v in path.holds)
        if t == 0:
            buckets[hold_rank] += 1
            continue
        pivot_ranks = sorted(rank[v] for v in path.pivots)
        below = 0  # pivots ranked before the last hold
        for r in pivot_ranks:
            if r < hold_rank:
                below += 1
            else:
                break
        if below >= t:
            buckets[hold_rank] += comb(below, t)
        for i in range(max(below, t - 1), len(pivot_ranks)):
            r = pivot_ranks[i]
            if r > hold_rank:
                buckets[r] += comb(i, t - 1)
    return _best_prefix(order, buckets)


def best_prefix_from_cliques(
    cliques: Iterable[Tuple[int, ...]],
    weights: Sequence[float],
    restrict_to: Optional[Iterable[int]] = None,
) -> PrefixResult:
    """Best-density prefix from an explicit clique collection.

    Parameters
    ----------
    cliques:
        Clique vertex tuples (any uniform size).
    weights:
        Per-vertex weights indexed by vertex id.
    restrict_to:
        Optional vertex subset the ordering is restricted to (used by the
        sampling algorithms, whose universe is the sampled subgraph).
        Cliques with a member outside the subset are ignored.
    """
    n = len(weights)
    if restrict_to is None:
        order, rank = _weight_ranking(weights)
        in_universe = None
    else:
        universe = sorted(set(restrict_to))
        order = sorted(universe, key=lambda v: (-weights[v], v))
        rank = [-1] * n
        for i, v in enumerate(order):
            rank[v] = i
        in_universe = set(universe)
    buckets = [0] * len(order)
    for clique in cliques:
        if in_universe is not None and any(v not in in_universe for v in clique):
            continue
        buckets[max(rank[v] for v in clique)] += 1
    return _best_prefix(order, buckets)
