"""SCTL+ and SCTL*: weight refinement with reductions and batching (§5.3).

Algorithm 5 of the paper.  Relative to plain SCTL, two optimisations apply
per iteration, each independently switchable so the benchmark suite can
reproduce the paper's SCTL / SCTL+ / SCTL* ladder:

* ``use_reductions`` — clique-connectivity pruning (skip any path whose
  partition's Lemma 3 density bound is dominated by the best density found
  so far) and clique-engagement pruning (skip paths with an out-of-scope
  hold, drop out-of-scope pivots; Lemma 4).  Scope engagements are
  re-accumulated from the surviving paths while sweeping, as in Lines 9-10.
* ``use_batch`` — distribute each path's clique weight through
  :func:`~repro.core.batch.batch_update` instead of visiting cliques
  individually.

The best density found so far is always an *achieved* density (it starts
from a maximum clique fetched off the index and is re-extracted from the
weights each iteration), so both reductions are lossless for the optimum.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from fractions import Fraction
from math import comb
from typing import Iterable, List, Optional, Sequence

from ..errors import InvalidParameterError
from ..graph.graph import Graph
from ..obs import NULL_RECORDER, Recorder
from ..options import RunOptions
from ..resilience.budget import NULL_BUDGET, Budget
from ..resilience.checkpoint import Checkpointer, require_match
from .batch import batch_update
from .density import DensestSubgraphResult, PartialResult
from .extraction import best_prefix_from_paths
from .reductions import engagement_threshold, kp_computation, partition_density_bounds
from .sct import SCTIndex, SCTPath
from .sctl import _validated_warm_start, empty_result

__all__ = ["IterationStats", "sctl_star", "sctl_plus"]

logger = logging.getLogger(__name__)

_CHECKPOINT_KIND = "sctl-star-weights"


@dataclass
class IterationStats:
    """Per-iteration instrumentation (feeds Table 4 of the paper).

    ``scope_*`` fields describe the search scope ``G_T`` *entering* the
    iteration; ``cliques_processed`` counts k-cliques surviving reduction;
    ``weight_updates`` counts actual weight writes (batching makes it far
    smaller than ``cliques_processed``).
    """

    iteration: int
    scope_vertices: int
    scope_edges: Optional[int]
    scope_cliques: Optional[int]
    cliques_processed: int
    weight_updates: int
    rho: float


def sctl_star(
    index: SCTIndex,
    k: int,
    iterations: int = 10,
    warm_start: Optional[Sequence[int]] = None,
    graph: Optional[Graph] = None,
    use_reductions: bool = True,
    use_batch: bool = True,
    collect_stats: bool = False,
    paths: Optional[Iterable[SCTPath]] = None,
    algorithm_name: Optional[str] = None,
    recorder: Recorder = NULL_RECORDER,
    budget: Budget = NULL_BUDGET,
    checkpoint=None,
    resume: bool = False,
    parallel=None,
    options: Optional[RunOptions] = None,
) -> DensestSubgraphResult:
    """Run SCTL* (Algorithm 5) and return the best extracted subgraph.

    Parameters
    ----------
    index:
        SCT*-Index of the graph (threshold ``<= k``).
    k:
        Clique size.
    iterations:
        Number of refinement passes ``T``.
    warm_start:
        Seed the weight vector from a previous run's
        ``stats["weights"]`` instead of zeros; the incremental-update
        path re-refines the updated index from where the pre-update run
        converged.  Must carry one weight per vertex.  With a warm
        start the reported ``upper_bound`` is heuristic (the certified
        bound assumes a zero start); the achieved density is unaffected
        because it is always re-extracted.  A restored checkpoint
        (``resume``) takes precedence over the seed.
    graph:
        The underlying graph; only needed when ``collect_stats`` asks for
        scope edge counts.
    use_reductions / use_batch:
        Toggle the two §5 optimisations (both off reproduces SCTL;
        reductions only reproduces the paper's SCTL+).
    collect_stats:
        Record :class:`IterationStats` per iteration (slower: it counts
        scope edges and cliques); stored in ``result.stats["iterations"]``.
    paths:
        Pre-collected valid paths to reuse.  When omitted, paths are
        **streamed** off the index on every sweep (engagement, partition,
        refinement, extraction), keeping memory bounded by tree depth; the
        results are identical to the pre-collected mode because traversal
        order is deterministic.
    algorithm_name:
        Override the reported algorithm label.
    recorder:
        Observability hook (``repro.obs``).  An enabled recorder gets one
        ``refine/iteration/<t>`` span per pass, ``refine/*`` counters
        (paths swept, cliques processed, weight updates),
        ``reductions/*`` pruning tallies, and per-iteration convergence
        telemetry: the achieved density and the L1 norm of the weight
        change.  The default null recorder leaves behaviour and output
        byte-identical.
    budget:
        Optional :class:`~repro.resilience.RunBudget`, polled at iteration
        boundaries and per path inside a sweep.  On exhaustion the run
        degrades to a :class:`~repro.core.density.PartialResult` carrying
        the best subgraph achieved so far (a half-swept iteration is
        rolled back to its entry state, so resumed runs keep exact
        parity) — the result is always ``valid`` because SCTL* starts
        from an achieved maximum clique.
    checkpoint:
        A :class:`~repro.resilience.Checkpointer` or directory path.
        The full refinement state (weights, evolving engagement, best
        subgraph, tallies) is snapshotted atomically at iteration
        boundaries whenever a save is due, force-saved on exhaustion and
        cleared once the run completes.
    resume:
        Restore the refinement state (validated against the algorithm
        variant, ``k`` and the vertex count) and continue from the next
        iteration.  Partition labels and density bounds are recomputed —
        they derive deterministically from the initial engagement, so the
        resumed run matches an uninterrupted one exactly.
    parallel:
        ``None`` (serial), an int worker count, or a
        :class:`~repro.parallel.ParallelConfig`.  With more than one
        worker each sweep's path filtering and counting (phase A) runs
        over disjoint contiguous path shards in a process pool while the
        weight updates (phase B) are applied here in serial path order —
        byte-identical results for any worker count.  The budget is then
        polled per merged chunk instead of per path.
    options:
        A :class:`~repro.options.RunOptions` bundling the five
        cross-cutting knobs; the individual keywords remain as aliases
        (conflicts raise :class:`~repro.errors.InvalidParameterError`).
    """
    if iterations < 1:
        raise InvalidParameterError(f"iterations must be >= 1, got {iterations}")
    opts = RunOptions.resolve(
        options,
        recorder=recorder,
        budget=budget,
        checkpoint=checkpoint,
        resume=resume,
        parallel=parallel,
    )
    ckpt = Checkpointer.ensure(opts.checkpoint)
    name = algorithm_name or (
        "SCTL*" if (use_reductions and use_batch)
        else "SCTL+" if use_reductions
        else "SCTL(batch)" if use_batch
        else "SCTL"
    )
    engine = None
    if paths is None:
        if opts.parallel is not None and opts.parallel.enabled:
            from ..parallel.engine import PathShardEngine

            candidate = PathShardEngine(index, opts.parallel, recorder=opts.recorder)
            if candidate.has_chunks:
                engine = candidate
                paths = engine.path_view(k)
            else:
                candidate.close()
        if paths is None:
            paths = index.path_view(k)  # streaming: re-traverse per sweep
    try:
        return _sctl_star_run(
            index, k, iterations, warm_start, graph, use_reductions,
            use_batch, collect_stats, paths, name, opts.recorder,
            opts.budget, ckpt, opts.resume, engine,
        )
    finally:
        if engine is not None:
            engine.close()


def _sctl_star_run(
    index: SCTIndex,
    k: int,
    iterations: int,
    warm_start: Optional[Sequence[int]],
    graph: Optional[Graph],
    use_reductions: bool,
    use_batch: bool,
    collect_stats: bool,
    paths: Iterable[SCTPath],
    name: str,
    recorder: Recorder,
    budget: Budget,
    ckpt: Optional[Checkpointer],
    resume: bool,
    engine,
) -> DensestSubgraphResult:
    # emptiness probe: with an engine, a cheap serial peek — iterating the
    # parallel view would launch a full pooled sweep just to test for one path
    probe = index.iter_paths(k) if engine is not None else iter(paths)
    if next(probe, None) is None:
        return empty_result(k, name)
    n = index.n_vertices

    # initial achieved solution: a maximum clique straight off the index
    best_vertices = index.a_maximum_clique()
    best_count = comb(len(best_vertices), k)
    best_density = Fraction(best_count, len(best_vertices))

    seed = _validated_warm_start(warm_start, n)
    weights = seed if seed is not None else [0] * n
    partition_of: List[int] = []
    bounds = {}
    engagement: List[int] = []
    if use_reductions:
        with recorder.span("reductions/engagement"):
            engagement = _engagement_from_paths(paths, k, n)
        partition = kp_computation(
            index, k, paths=paths, options=RunOptions(recorder=recorder)
        )
        partition_of = partition.partition_of
        bounds = partition_density_bounds(
            partition, engagement, k, recorder=recorder
        )

    per_iteration: List[IterationStats] = []
    track = recorder.enabled
    total_updates = 0
    total_processed = 0
    n_paths = 0
    start_iteration = 1
    if resume and ckpt is not None:
        payload = ckpt.load(_CHECKPOINT_KIND)
        if payload is not None:
            require_match(
                payload,
                {
                    "algorithm": name,
                    "k": k,
                    "n": n,
                    "use_reductions": use_reductions,
                    "use_batch": use_batch,
                },
                _CHECKPOINT_KIND,
            )
            weights = payload["weights"]
            if use_reductions:
                engagement = payload["engagement"]
            best_vertices = payload["best_vertices"]
            best_count = payload["best_count"]
            best_density = Fraction(
                payload["best_density_num"], payload["best_density_den"]
            )
            total_updates = payload["total_updates"]
            total_processed = payload["total_processed"]
            start_iteration = payload["iteration"] + 1
            if track:
                recorder.counter("checkpoint/resumed")

    def _state(iteration: int) -> dict:
        return {
            "algorithm": name,
            "k": k,
            "n": n,
            "use_reductions": use_reductions,
            "use_batch": use_batch,
            "iteration": iteration,
            "weights": weights,
            "engagement": engagement if use_reductions else [],
            "best_vertices": best_vertices,
            "best_count": best_count,
            "best_density_num": best_density.numerator,
            "best_density_den": best_density.denominator,
            "total_updates": total_updates,
            "total_processed": total_processed,
        }

    completed = start_iteration - 1
    exhausted: Optional[str] = None
    for t in range(start_iteration, iterations + 1):
        if budget.active:
            exhausted = budget.exceeded()
            if exhausted:
                break
        # snapshot whenever a real budget is threaded, not just when it is
        # already active: a cancel (signal, fault) can arm it mid-sweep
        iter_start_weights = weights[:] if budget is not NULL_BUDGET else None
        threshold = engagement_threshold(best_density)
        stats_entry = None
        if collect_stats:
            stats_entry = _scope_snapshot(
                index, graph, k, t, n, use_reductions, engagement, threshold,
                partition_of, bounds, best_density,
            )
        new_engagement = [0] * n if use_reductions else []
        updates = 0
        processed = 0
        n_paths = 0
        pruned_connectivity = 0
        pruned_engagement = 0
        pivots_dropped = 0
        prev_weights = weights[:] if track else None
        with recorder.span(
            f"refine/iteration/{t}", observe="stage/refine_round"
        ):
            if engine is not None:
                (
                    n_paths, processed, updates, pruned_connectivity,
                    pruned_engagement, pivots_dropped, exhausted,
                ) = _parallel_refine_sweep(
                    engine, k, weights, use_reductions, use_batch,
                    engagement, threshold, partition_of, bounds,
                    best_density, new_engagement, budget,
                )
            else:
                for path in paths:
                    n_paths += 1
                    if budget.active:
                        exhausted = budget.exceeded()
                        if exhausted:
                            break
                    if use_reductions:
                        if bounds[partition_of[path.holds[0]]] <= best_density:
                            if track:
                                pruned_connectivity += 1
                            continue  # clique-connectivity reduction
                        holds = [
                            v for v in path.holds if engagement[v] >= threshold
                        ]
                        if len(holds) != len(path.holds):
                            if track:
                                pruned_engagement += 1
                            continue  # a hold left the scope: no clique survives
                        pivots = [
                            v for v in path.pivots if engagement[v] >= threshold
                        ]
                        need = k - len(holds)
                        if need < 0 or need > len(pivots):
                            if track:
                                pruned_engagement += 1
                            continue
                        if track:
                            pivots_dropped += len(path.pivots) - len(pivots)
                        count = comb(len(pivots), need)
                        for v in holds:
                            new_engagement[v] += count
                        if need >= 1:
                            pivot_count = comb(len(pivots) - 1, need - 1)
                            if pivot_count:
                                for v in pivots:
                                    new_engagement[v] += pivot_count
                    else:
                        holds, pivots = path.holds, path.pivots
                        count = path.clique_count(k)
                    processed += count
                    if use_batch:
                        updates += batch_update(weights, holds, pivots, k)
                    else:
                        for clique in SCTPath(
                            tuple(holds), tuple(pivots)
                        ).iter_cliques(k):
                            u = min(clique, key=weights.__getitem__)
                            weights[u] += 1
                            updates += 1
            if exhausted:
                # roll the half-swept iteration back to its entry state so
                # the reported weights sit exactly on an iteration boundary
                weights = iter_start_weights
                break
            if use_reductions:
                engagement = new_engagement
            # re-extract to tighten the achieved density (Line 12)
            prefix = best_prefix_from_paths(paths, weights, k)
        if prefix.density_fraction > best_density:
            best_density = prefix.density_fraction
            best_vertices = sorted(prefix.vertices)
            best_count = prefix.clique_count
        total_updates += updates
        total_processed += processed
        completed = t
        if budget.active:
            budget.tick()
        if ckpt is not None and ckpt.due(_CHECKPOINT_KIND):
            ckpt.save(_CHECKPOINT_KIND, _state(t))
            if track:
                recorder.counter("checkpoint/saves")
        logger.debug(
            "%s iteration %d/%d: %d cliques, %d weight updates, density %.6f",
            name, t, iterations, processed, updates, float(best_density),
        )
        if track:
            weight_change = sum(
                abs(w - pw) for w, pw in zip(weights, prev_weights)
            )
            recorder.counter("refine/iterations")
            recorder.counter("refine/paths_swept", n_paths)
            recorder.observe("refine/paths_per_round", n_paths)
            recorder.counter("refine/cliques_processed", processed)
            recorder.counter("refine/weight_updates", updates)
            if use_reductions:
                recorder.counter(
                    "reductions/paths_pruned_connectivity", pruned_connectivity
                )
                recorder.counter(
                    "reductions/paths_pruned_engagement", pruned_engagement
                )
                recorder.counter("reductions/pivots_dropped", pivots_dropped)
            recorder.gauge("refine/density", float(best_density))
            recorder.gauge("refine/weight_change_l1", weight_change)
            recorder.event(
                "refine_iteration",
                algorithm=name,
                iteration=t,
                density=float(best_density),
                weight_change_l1=weight_change,
                cliques_processed=processed,
                weight_updates=updates,
            )
        if stats_entry is not None:
            stats_entry.cliques_processed = processed
            stats_entry.weight_updates = updates
            stats_entry.rho = float(best_density)
            per_iteration.append(stats_entry)

    run_stats = {
        "weights": weights,
        "paths": n_paths,
        "total_weight_updates": total_updates,
        "total_cliques_processed": total_processed,
    }
    if exhausted:
        if ckpt is not None:
            # persist the last completed iteration unconditionally so a
            # resume continues exactly where this run degraded
            ckpt.save(_CHECKPOINT_KIND, _state(completed))
        if track:
            recorder.counter("budget/exhausted")
            recorder.gauge("budget/reason", exhausted)
            recorder.gauge("budget/stage", f"refine/iteration/{completed + 1}")
        upper = (
            max(max(weights) / completed, float(best_density))
            if completed
            else None
        )
        result = PartialResult(
            vertices=best_vertices,
            clique_count=best_count,
            k=k,
            algorithm=name,
            iterations=completed,
            upper_bound=upper,
            stats=run_stats,
            reason=exhausted,
            stage=f"refine/iteration/{completed + 1}",
        )
        if collect_stats:
            result.stats["iterations"] = per_iteration
        return result
    if ckpt is not None:
        ckpt.clear(_CHECKPOINT_KIND)
    upper = max(max(weights) / iterations, float(best_density))
    result = DensestSubgraphResult(
        vertices=best_vertices,
        clique_count=best_count,
        k=k,
        algorithm=name,
        iterations=iterations,
        upper_bound=upper,
        stats=run_stats,
    )
    if collect_stats:
        result.stats["iterations"] = per_iteration
    return result


def sctl_plus(
    index: SCTIndex,
    k: int,
    iterations: int = 10,
    warm_start: Optional[Sequence[int]] = None,
    graph: Optional[Graph] = None,
    collect_stats: bool = False,
    paths: Optional[Iterable[SCTPath]] = None,
    recorder: Recorder = NULL_RECORDER,
    budget: Budget = NULL_BUDGET,
    checkpoint=None,
    resume: bool = False,
    parallel=None,
    options: Optional[RunOptions] = None,
) -> DensestSubgraphResult:
    """SCTL+ — SCTL with graph reductions but per-clique weight updates."""
    opts = RunOptions.resolve(
        options,
        recorder=recorder,
        budget=budget,
        checkpoint=checkpoint,
        resume=resume,
        parallel=parallel,
    )
    return sctl_star(
        index,
        k,
        iterations=iterations,
        warm_start=warm_start,
        graph=graph,
        use_reductions=True,
        use_batch=False,
        collect_stats=collect_stats,
        paths=paths,
        algorithm_name="SCTL+",
        options=opts,
    )


def _parallel_refine_sweep(
    engine,
    k: int,
    weights: List[int],
    use_reductions: bool,
    use_batch: bool,
    engagement: Sequence[int],
    threshold: int,
    partition_of: Sequence[int],
    bounds,
    best_density: Fraction,
    new_engagement: List[int],
    budget: Budget,
):
    """One SCTL* sweep, phase A pooled and phase B applied in order.

    The per-vertex scope tests are precomputed here (``in_scope`` /
    ``bound_ok`` boolean tables, O(n)) so the workers replicate the
    serial per-path filtering bit for bit without holding the evolving
    weight vector.  Workers return survivors in path order plus additive
    engagement deltas; this parent loop applies the weight updates over
    the merged, ordered survivor stream — the update sequence is the
    serial one, so the weights are byte-identical for any worker count.

    The budget is polled once per merged chunk; exhaustion abandons the
    sweep (the caller rolls the weights back to the iteration entry, the
    same contract as the serial per-path poll).
    """
    in_scope = None
    bound_ok = None
    if use_reductions:
        in_scope = [e >= threshold for e in engagement]
        bound_ok = [bounds[p] > best_density for p in partition_of]
    n_paths = 0
    processed = 0
    updates = 0
    pruned_connectivity = 0
    pruned_engagement = 0
    pivots_dropped = 0
    exhausted: Optional[str] = None
    for surviving, engagement_delta, tallies in engine.refine_sweep(
        k, in_scope, bound_ok
    ):
        if budget.active:
            exhausted = budget.exceeded()
            if exhausted:
                break
        for holds, pivots, count in surviving:
            processed += count
            if use_batch:
                updates += batch_update(weights, holds, pivots, k)
            else:
                for clique in SCTPath(holds, pivots).iter_cliques(k):
                    u = min(clique, key=weights.__getitem__)
                    weights[u] += 1
                    updates += 1
        if use_reductions:
            for v, delta in engagement_delta.items():
                new_engagement[v] += delta
        n_paths += tallies[0]
        pruned_connectivity += tallies[1]
        pruned_engagement += tallies[2]
        pivots_dropped += tallies[3]
    return (
        n_paths, processed, updates, pruned_connectivity,
        pruned_engagement, pivots_dropped, exhausted,
    )


def _engagement_from_paths(
    paths: Iterable[SCTPath], k: int, n: int
) -> List[int]:
    """Global ``|C_k(v, G)|`` accumulated from the collected paths."""
    engagement = [0] * n
    for path in paths:
        count = path.clique_count(k)
        if not count:
            continue
        for v in path.holds:
            engagement[v] += count
        pivot_count = path.pivot_engagement(k)
        if pivot_count:
            for v in path.pivots:
                engagement[v] += pivot_count
    return engagement


def _scope_snapshot(
    index: SCTIndex,
    graph: Optional[Graph],
    k: int,
    iteration: int,
    n: int,
    use_reductions: bool,
    engagement: Sequence[int],
    threshold: int,
    partition_of: Sequence[int],
    bounds,
    best_density: Fraction,
) -> IterationStats:
    """Measure the search scope entering this iteration (Table 4 columns)."""
    if not use_reductions:
        scope = list(range(n))
    else:
        scope = [
            v
            for v in range(n)
            if engagement[v] >= threshold and bounds[partition_of[v]] > best_density
        ]
    scope_edges = None
    if graph is not None:
        inside = set(scope)
        scope_edges = sum(
            1 for u in scope for w in graph.neighbors(u) if u < w and w in inside
        )
    scope_cliques = index.count_in_subset(k, scope)
    return IterationStats(
        iteration=iteration,
        scope_vertices=len(scope),
        scope_edges=scope_edges,
        scope_cliques=scope_cliques,
        cliques_processed=0,
        weight_updates=0,
        rho=float(best_density),
    )
