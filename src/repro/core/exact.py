"""SCTL*-Exact: the sampling-warm-started exact algorithm (Algorithm 7).

Pipeline, following §6.2:

1. **Warm start** — SCTL*-Sample produces an achieved density ``rho'``
   close to the optimum (falling back on the maximum clique's density when
   the sample is uninformative).  The sampler and the later SCTL*
   refinement both stream root-to-leaf paths off their indexes per sweep,
   so the pipeline never materialises a path list and its memory stays
   bounded by tree size plus the explicit clique set of the final scope.
2. **Scope reduction** — Lemma 4: the optimum lies among vertices with
   ``|C_k(v)| >= ceil(rho')``; the engagement recount is iterated inside
   the shrinking scope until a fixed point, all through index queries.
3. **Refinement + verification** — run SCTL* on the reduced subgraph for a
   doubling number of iterations; after each round a single max-flow on
   the scope's clique network (the improved Goldberg condition) either
   certifies optimality or returns a strictly denser subgraph, which
   becomes the new achieved density.  Densities live in a finite set and
   strictly increase, so the loop terminates with a certified optimum.
"""

from __future__ import annotations

import logging
from fractions import Fraction
from math import comb
from typing import List, Optional

from ..errors import BudgetExhausted, SolverError
from ..flow.densest import count_cliques_inside, find_denser_subgraph
from ..graph.graph import Graph
from ..obs import NULL_RECORDER, Recorder
from ..options import RunOptions
from ..resilience.budget import NULL_BUDGET, Budget
from .density import DensestSubgraphResult, PartialResult
from .reductions import engagement_threshold
from .sampling import sctl_star_sample
from .sct import SCTIndex
from .sctl import empty_result
from .sctl_star import sctl_star

__all__ = ["sctl_star_exact"]

logger = logging.getLogger(__name__)


def sctl_star_exact(
    graph: Graph,
    k: int,
    index: Optional[SCTIndex] = None,
    sample_size: int = 50_000,
    iterations: int = 10,
    seed: int = 0,
    max_rounds: int = 30,
    recorder: Recorder = NULL_RECORDER,
    budget: Budget = NULL_BUDGET,
    checkpoint=None,
    resume: bool = False,
    parallel=None,
    options: Optional[RunOptions] = None,
) -> DensestSubgraphResult:
    """Exact k-clique densest subgraph via Algorithm 7.

    Parameters
    ----------
    graph:
        The input graph.
    index:
        Its SCT*-Index (built on the fly when omitted; must support ``k``).
    sample_size:
        The ``sigma`` passed to the SCTL*-Sample warm start.
    iterations:
        Initial SCTL* iteration count ``T`` (doubled per round, as in
        Lines 5-10).
    seed:
        RNG seed for the sampling stage.
    max_rounds:
        Safety valve on verification rounds; each failed round still makes
        strict progress, so this is never reached in practice.
    recorder:
        Observability hook (``repro.obs``).  An enabled recorder gets the
        pipeline's stage spans — ``index/build`` (when the index is built
        here), ``exact/warm_start``, ``exact/scope_reduction``,
        ``exact/scope_index`` and one ``exact/flow_round/<i>`` per
        verification round (the nested SCTL* refinement and its
        reduction spans land underneath) — plus scope/drop counters and
        the running density gauge.
    budget:
        Optional :class:`~repro.resilience.RunBudget`, polled at every
        stage boundary and threaded into the warm start, the nested index
        builds and the nested SCTL* refinement.  On exhaustion the run
        falls back from the flow-certified exact answer to its best
        achieved estimate (sampling warm start or better), returned as a
        *valid* non-exact :class:`~repro.core.density.PartialResult`;
        only exhaustion during the initial index build — before anything
        is achieved — yields an invalid one.
    checkpoint / resume:
        Forwarded to the initial :meth:`SCTIndex.build` (kind
        ``"sct-build"``) when the index is built here; nested sub-scope
        builds and refinements run budget-only to keep checkpoint kinds
        unambiguous.
    parallel:
        ``None`` (serial), an int worker count, or a
        :class:`~repro.parallel.ParallelConfig`; forwarded into the
        initial index build, the warm-start sampler, the sub-scope index
        build and the nested SCTL* refinements — every stage keeps its
        byte-for-byte serial parity, so the certified answer does too.
    options:
        A :class:`~repro.options.RunOptions` bundling the knobs; the
        individual keywords remain as aliases.
    """
    opts = RunOptions.resolve(
        options,
        recorder=recorder,
        budget=budget,
        checkpoint=checkpoint,
        resume=resume,
        parallel=parallel,
    )
    recorder = opts.recorder
    budget = opts.budget
    if index is None:
        try:
            index = SCTIndex.build(graph, options=opts)
        except BudgetExhausted as exc:
            return PartialResult(
                vertices=[],
                clique_count=0,
                k=k,
                algorithm="SCTL*-Exact",
                valid=False,
                reason=exc.reason,
                stage=exc.stage or "index/build",
            )
    if index.max_clique_size < k:
        return empty_result(k, "SCTL*-Exact", exact=True)

    # ---- stage 1: warm start ------------------------------------------
    with recorder.span("exact/warm_start"):
        warm = sctl_star_sample(
            index, k, sample_size=sample_size, iterations=iterations,
            seed=seed, options=opts.replace(checkpoint=None, resume=False),
        )
        best_vertices = warm.vertices
        best_count = warm.clique_count
        best_density = warm.density_fraction
        max_clique = index.a_maximum_clique()
        clique_density = Fraction(comb(len(max_clique), k), len(max_clique))
        if clique_density > best_density:
            best_vertices = max_clique
            best_count = comb(len(max_clique), k)
            best_density = clique_density
    if recorder.enabled:
        recorder.gauge("exact/warm_density", float(best_density))

    def _degrade(reason: str, stage: str, flow_rounds: int = 0) -> PartialResult:
        # the warm start (or a later flow round) already achieved a genuine
        # subgraph, so exhaustion degrades to its best density, un-certified
        if recorder.enabled:
            recorder.counter("budget/exhausted")
            recorder.gauge("budget/reason", reason)
            recorder.gauge("budget/stage", stage)
        return PartialResult(
            vertices=sorted(best_vertices),
            clique_count=best_count,
            k=k,
            algorithm="SCTL*-Exact",
            upper_bound=None,
            exact=False,
            stats={
                "warm_density": float(warm.density_fraction),
                "flow_rounds": flow_rounds,
            },
            reason=reason,
            stage=stage,
        )

    if budget.active:
        reason = budget.exceeded()
        if reason:
            return _degrade(reason, "exact/scope_reduction")

    logger.debug(
        "warm start: density %.6f (sample %.6f, max clique %.6f)",
        float(best_density), float(warm.density_fraction), float(clique_density),
    )

    # ---- stage 2: engagement scope reduction to a fixed point ----------
    with recorder.span("exact/scope_reduction"):
        threshold = engagement_threshold(best_density)
        engagement = index.per_vertex_counts(k)
        scope = [v for v in graph.vertices() if engagement[v] >= threshold]
        fixed_point_rounds = 0
        while True:
            if budget.active:
                reason = budget.exceeded()
                if reason:
                    return _degrade(reason, "exact/scope_reduction")
            fixed_point_rounds += 1
            inside = index.per_vertex_counts_in_subset(k, scope)
            reduced = [v for v in scope if inside[v] >= threshold]
            if len(reduced) == len(scope):
                break
            scope = reduced
    if recorder.enabled:
        recorder.counter("exact/scope_vertices", len(scope))
        recorder.counter("exact/vertices_dropped", graph.n - len(scope))
        recorder.counter("exact/fixed_point_rounds", fixed_point_rounds)
    logger.debug(
        "scope reduced to %d/%d vertices (threshold %d)",
        len(scope), graph.n, threshold,
    )
    if not scope:
        raise SolverError(
            "engagement reduction emptied the scope below an achieved "
            "density — this indicates an internal inconsistency"
        )

    # ---- stage 3: refine + verify ---------------------------------------
    try:
        with recorder.span("exact/scope_index"):
            subgraph, originals = graph.induced_subgraph(scope)
            sub_index = SCTIndex.build(
                subgraph, options=opts.replace(checkpoint=None, resume=False),
            )
            cliques = [
                tuple(originals[v] for v in clique)
                for clique in sub_index.iter_k_cliques(k)
            ]
    except BudgetExhausted as exc:
        return _degrade(exc.reason, "exact/scope_index")
    if recorder.enabled:
        recorder.counter("exact/scope_cliques", len(cliques))
    flow_rounds = 0
    current_iterations = iterations
    for _ in range(max_rounds):
        if budget.active:
            reason = budget.exceeded()
            if reason:
                return _degrade(
                    reason, f"exact/flow_round/{flow_rounds + 1}", flow_rounds
                )
        with recorder.span(
            f"exact/flow_round/{flow_rounds + 1}", observe="stage/flow_verify"
        ):
            refined = sctl_star(
                sub_index, k, iterations=current_iterations,
                options=opts.replace(checkpoint=None, resume=False),
            )
            if refined.density_fraction > best_density:
                best_vertices = sorted(originals[v] for v in refined.vertices)
                best_count = refined.clique_count
                best_density = refined.density_fraction
            if refined.is_partial:
                # the nested refinement ran out mid-round: fold in whatever
                # it achieved and degrade instead of paying for a flow check
                return _degrade(
                    refined.reason or "deadline",
                    f"exact/flow_round/{flow_rounds + 1}",
                    flow_rounds,
                )
            flow_rounds += 1
            logger.debug(
                "flow round %d: checking optimality of density %.6f over %d cliques",
                flow_rounds, float(best_density), len(cliques),
            )
            denser = find_denser_subgraph(cliques, scope, best_density)
        if recorder.enabled:
            recorder.counter("exact/flow_rounds")
            recorder.gauge("exact/density", float(best_density))
            recorder.event(
                "flow_round",
                round=flow_rounds,
                density=float(best_density),
                certified=denser is None,
            )
        if denser is None:
            return DensestSubgraphResult(
                vertices=sorted(best_vertices),
                clique_count=best_count,
                k=k,
                algorithm="SCTL*-Exact",
                iterations=current_iterations,
                upper_bound=float(best_density),
                exact=True,
                stats={
                    "scope_vertices": len(scope),
                    "scope_cliques": len(cliques),
                    "flow_rounds": flow_rounds,
                    "warm_density": float(warm.density_fraction),
                },
            )
        count = count_cliques_inside(cliques, denser)
        density = Fraction(count, len(denser))
        if density <= best_density:
            raise SolverError("flow oracle returned a non-improving subgraph")
        best_vertices = sorted(denser)
        best_count = count
        best_density = density
        current_iterations *= 2
    raise SolverError(f"verification did not converge in {max_rounds} rounds")
