"""The SCT*-Index: a pivot/hold succinct clique tree with max-depth pruning.

This is the paper's central data structure (§4.1).  It adapts the succinct
clique tree of Jain & Seshadhri's *Pivoter* so that k-clique listing for a
*specific* ``k`` does not traverse the whole tree:

* every tree node records the **max-depth** of its subtree — the largest
  number of (non-root) vertices on any root-to-leaf path through it — so a
  query for ``k`` only descends into children whose max-depth is ``>= k``;
* subtrees rooted at vertices that cannot be in any k'-clique are pruned at
  build time (the **SCT\\*-k'-Index**), using the out-degree and
  core-number observations of §4.1.

Every root-to-leaf path ``P`` carries *hold* vertices ``V_h(P)`` and *pivot*
vertices ``V_p(P)``; by Lemma 2 the k-cliques under ``P`` are exactly
"all holds + any ``k - |V_h|``-subset of pivots", so the path compactly
represents ``C(|V_p|, k - |V_h|)`` cliques.  All counting queries reduce to
binomial coefficients over the paths.

Array-native layout
-------------------
The tree is stored as flat integer columns in **DFS pre-order**: node ``i``'s
subtree is exactly the contiguous window ``[i, i + subtree[i])`` (the
XPath-accelerator window encoding over pre/post-order and subtree size), so
traversal is a linear scan with ``O(1)`` subtree skips instead of pointer
chasing.  Child lists are CSR ranges (``child_off``/``child_ids``), and every
column is an ``array('q')`` — or a ``memoryview`` cast straight out of an
``mmap``-ed v2 index file or a ``multiprocessing.shared_memory`` block, so
the service and the parallel engine share one copy of the index with zero
pickling (see ``docs/index-format.md``).
"""

from __future__ import annotations

import json
import mmap as _mmap
import time
import weakref
from array import array
from dataclasses import dataclass
from math import comb
from typing import Dict, IO, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..cliques.ordered_view import OrderedGraphView, build_ordered_view
from ..errors import IndexBuildError, IndexQueryError
from ..graph.graph import Graph
from ..obs import NULL_RECORDER, Recorder
from ..options import RunOptions
from ..resilience.budget import NULL_BUDGET, Budget
from ..resilience.checkpoint import Checkpointer, atomic_writer, require_match
from . import sct_format

__all__ = ["SCTPath", "SCTPathView", "SCTIndex", "HOLD", "PIVOT"]

# during a budgeted build, poll the budget every this many new tree nodes
# (roots are always polled; this bounds the latency inside one huge subtree)
_BUILD_POLL_NODES = 4096

_BUILD_CHECKPOINT_KIND = "sct-build"

HOLD = 0
PIVOT = 1


def _release_mapping(mapping) -> None:
    """Best-effort unmap for a finalizer; escaped views win, GC finishes."""
    try:
        mapping.close()
    except (BufferError, ValueError):
        pass


def _expand_root_subtree(
    vertex: List[int],
    label: List[int],
    parent: List[int],
    depth_of: List[int],
    adj: Sequence[int],
    order: Sequence[int],
    root_pos: int,
    cand0: int,
    attach_to: int,
    poll=None,
) -> Optional[str]:
    """Expand one seed vertex's subtree onto the flat node arrays.

    This is the Pivoter expansion for the root at degeneracy position
    ``root_pos``; it appends the root child (a HOLD at depth 1, attached
    to ``attach_to``) and its whole subtree.  Nodes are appended the
    moment the walk descends into them, so ids are DFS pre-order by
    construction.  The serial build calls it once per unpruned root; the
    parallel build workers call it with per-worker arrays and
    ``attach_to=0``, then the parent splices the arrays together with a
    constant id offset — same code, so the node layout cannot drift.

    ``poll``, when given, is invoked once per expansion step; a truthy
    return value (a budget-exhaustion reason) rolls the partial subtree
    back — the arrays are left exactly on the preceding root boundary —
    and is returned to the caller.
    """
    root_start = len(vertex)

    def new_node(orig_vertex: int, node_label: int, par: int, depth: int) -> int:
        node = len(vertex)
        vertex.append(orig_vertex)
        label.append(node_label)
        parent.append(par)
        depth_of.append(depth)
        return node

    root_child = new_node(order[root_pos], HOLD, attach_to, 1)
    # Pivoter expansion on an explicit frame stack, so clique trees
    # deeper than the interpreter's recursion limit build fine.
    # Frame layout: [node, cand, depth, rest, removed]; ``rest`` is
    # None until the pivot branch has been spawned, afterwards it
    # holds the not-yet-branched non-neighbours of the pivot.
    stack: List[List] = [[root_child, cand0, 1, None, 0]]
    while stack:
        if poll is not None:
            reason = poll()
            if reason:
                # roll the current root's partial subtree back so the
                # frontier sits exactly on a root boundary
                del vertex[root_start:]
                del label[root_start:]
                del parent[root_start:]
                del depth_of[root_start:]
                return reason
        frame = stack[-1]
        node, cand, depth = frame[0], frame[1], frame[2]
        if frame[3] is None:
            if cand == 0:
                stack.pop()  # leaf
                continue
            # pivot: candidate with the most neighbours inside cand;
            # nothing can beat covering all other candidates, so a
            # full cover ends the scan early (near-clique subtrees
            # then cost O(1) pivot picks per node instead of O(|cand|))
            cand_size = cand.bit_count()
            best_p, best_cover = -1, -1
            mask = cand
            while mask:
                low = mask & -mask
                x = low.bit_length() - 1
                mask ^= low
                cover = (adj[x] & cand).bit_count()
                if cover > best_cover:
                    best_cover, best_p = cover, x
                    if cover == cand_size - 1:
                        break
            p = best_p
            frame[3] = cand & ~adj[p] & ~(1 << p)
            frame[4] = 1 << p
            # pivot branch: cliques avoiding every non-neighbour of p
            child = new_node(order[p], PIVOT, node, depth + 1)
            stack.append([child, cand & adj[p], depth + 1, None, 0])
            continue
        if frame[3]:
            # hold branches: each non-neighbour v_i of p gets the
            # cliques whose smallest excluded vertex is v_i
            low = frame[3] & -frame[3]
            x = low.bit_length() - 1
            frame[3] ^= low
            frame[4] |= low
            child = new_node(order[x], HOLD, node, depth + 1)
            stack.append(
                [child, (cand & ~frame[4]) & adj[x], depth + 1, None, 0]
            )
            continue
        stack.pop()
    return None


def _compute_max_depth(parent: Sequence[int], depth_of: Sequence[int]) -> List[int]:
    """Subtree max-depth per node, in one backward sweep.

    Children always have larger ids than their parent, so by the time a
    node propagates upward its own subtree maximum is final.
    """
    max_depth = list(depth_of)
    max_depth[0] = 0
    for node in range(len(parent) - 1, 0, -1):
        par = parent[node]
        if max_depth[node] > max_depth[par]:
            max_depth[par] = max_depth[node]
    return max_depth


def _compute_subtree_sizes(parent: Sequence[int]) -> List[int]:
    """Nodes in each subtree (the node included), in one backward sweep."""
    subtree = [1] * len(parent)
    for node in range(len(parent) - 1, 0, -1):
        subtree[parent[node]] += subtree[node]
    return subtree


def _csr_children(parent: Sequence[int]) -> Tuple[List[int], List[int]]:
    """CSR child ranges from the parent column.

    Returns ``(child_off, child_ids)``: node ``i``'s children are
    ``child_ids[child_off[i]:child_off[i + 1]]`` in ascending id order —
    which, with pre-order ids, is exactly creation (traversal) order.
    """
    n = len(parent)
    counts = [0] * n
    for node in range(1, n):
        counts[parent[node]] += 1
    child_off = [0] * (n + 1)
    for node in range(n):
        child_off[node + 1] = child_off[node] + counts[node]
    cursor = child_off[:n]
    child_ids = [0] * (n - 1 if n else 0)
    for node in range(1, n):
        par = parent[node]
        child_ids[cursor[par]] = node
        cursor[par] += 1
    return child_off, child_ids


def _record_build_tallies(
    recorder: Recorder,
    index: "SCTIndex",
    threshold: int,
    pruned_outdeg: int,
    pruned_core: int,
) -> None:
    """Emit the standard build counters/gauges (serial and parallel alike)."""
    if not recorder.enabled:
        return
    label = index._label
    n_nodes = index.n_tree_nodes
    n_holds = sum(1 for lab in label[1:] if lab == HOLD)
    recorder.counter("build/nodes", n_nodes)
    recorder.counter("build/holds", n_holds)
    recorder.counter("build/pivots", n_nodes - n_holds)
    recorder.counter("build/roots", index._child_off[1] - index._child_off[0])
    if threshold:
        recorder.counter("build/roots_pruned_outdeg", pruned_outdeg)
        recorder.counter("build/roots_pruned_core", pruned_core)
    recorder.gauge("build/max_depth", index._max_depth[0])
    recorder.gauge("build/threshold", threshold)


@dataclass(frozen=True)
class SCTPath:
    """One root-to-leaf path: a compressed set of cliques.

    ``holds`` and ``pivots`` are tuples of *original* vertex ids, in
    root-to-leaf order.  The union ``holds + pivots`` always induces a
    clique in the indexed graph.
    """

    holds: Tuple[int, ...]
    pivots: Tuple[int, ...]

    def clique_count(self, k: int) -> int:
        """Number of k-cliques represented by this path (Lemma 2)."""
        need = k - len(self.holds)
        if need < 0:
            return 0
        return comb(len(self.pivots), need)

    def pivot_engagement(self, k: int) -> int:
        """k-cliques of this path containing one *fixed* pivot vertex."""
        need = k - len(self.holds)
        if need < 1:
            return 0
        return comb(len(self.pivots) - 1, need - 1)

    def iter_cliques(self, k: int) -> Iterator[Tuple[int, ...]]:
        """Yield each k-clique under this path as a vertex tuple.

        The tuple layout is ``holds + chosen pivots``; combinations of
        pivots are generated in lexicographic order of pivot position, so
        iteration order is deterministic.
        """
        from itertools import combinations

        need = k - len(self.holds)
        if need < 0 or need > len(self.pivots):
            return
        if need == 0:
            yield self.holds
            return
        for chosen in combinations(self.pivots, need):
            yield self.holds + chosen

    @property
    def vertices(self) -> Tuple[int, ...]:
        """All vertices on the path (holds then pivots)."""
        return self.holds + self.pivots

    def __len__(self) -> int:
        return len(self.holds) + len(self.pivots)


class SCTIndex:
    """The SCT*-Index over a graph.

    Build with :meth:`SCTIndex.build`; query k-cliques for any
    ``k >= threshold`` without touching the graph again.

    Flat columns (node ids are DFS pre-order, 0 is the virtual root; each
    column is an ``array('q')``, or a ``memoryview('q')`` over an mmap or
    shared-memory backing):

    * ``_vertex[i]`` — original vertex id stored at node ``i`` (-1 for root);
    * ``_label[i]`` — ``HOLD`` or ``PIVOT`` (-1 for root);
    * ``_depth[i]`` — distance from the virtual root (its "level");
    * ``_max_depth[i]`` — the largest number of non-root vertices on any
      root-to-leaf path through node ``i``;
    * ``_subtree[i]`` — nodes in ``i``'s subtree, itself included, so the
      subtree occupies the window ``[i, i + _subtree[i])`` and the
      post-order number is ``i + _subtree[i] - 1``;
    * ``_child_off`` / ``_child_ids`` — CSR child ranges: node ``i``'s
      children are ``_child_ids[_child_off[i]:_child_off[i + 1]]``.
    """

    # broadcast/serialisation order of the columns (matches the v2 file)
    _COLUMN_ORDER = sct_format.COLUMNS

    def __init__(
        self,
        n_vertices: int,
        vertex: Sequence[int],
        label: Sequence[int],
        depth: Sequence[int],
        max_depth: Sequence[int],
        subtree: Sequence[int],
        child_off: Sequence[int],
        child_ids: Sequence[int],
        threshold: int,
        source=None,
    ):
        self._n_vertices = n_vertices
        self._vertex = vertex
        self._label = label
        self._depth = depth
        self._max_depth = max_depth
        self._subtree = subtree
        self._child_off = child_off
        self._child_ids = child_ids
        self._threshold = threshold
        # keepalive for zero-copy backings (mmap.mmap or SharedMemory)
        self._source = source

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: Graph,
        threshold: int = 0,
        view: Optional[OrderedGraphView] = None,
        recorder: Recorder = NULL_RECORDER,
        budget: Budget = NULL_BUDGET,
        checkpoint=None,
        resume: bool = False,
        parallel=None,
        options: Optional[RunOptions] = None,
    ) -> "SCTIndex":
        """Build the SCT*-Index of ``graph``.

        Parameters
        ----------
        graph:
            The undirected input graph.
        threshold:
            The ``k'`` of a partial **SCT\\*-k'-Index**: subtrees rooted at a
            vertex ``u`` with ``|N+(u)| + 1 < k'`` (out-degree pruning) or
            ``cn(u) + 1 < k'`` (degeneracy pruning) are skipped, shrinking
            the index while preserving k-clique listing for every
            ``k >= k'``.  ``0`` (default) builds the complete index, which
            answers every ``k``.
        view:
            Optional pre-built ordered view to reuse.
        recorder:
            Observability hook (``repro.obs``).  An enabled recorder gets
            an ``index/build`` span, node/label counters and the
            per-lemma root-pruning tallies; the default null recorder
            costs nothing.
        budget:
            Optional :class:`~repro.resilience.RunBudget`.  The build
            polls it per root subtree (and every few thousand nodes
            inside one) and, on exhaustion, saves a checkpoint when one
            is configured and raises the matching
            :class:`~repro.errors.BudgetExhausted` — a build cannot
            return a partial index, but it can resume.  The default
            :data:`~repro.resilience.NULL_BUDGET` costs nothing.
        checkpoint:
            A :class:`~repro.resilience.Checkpointer` or a directory
            path.  When set, the build frontier (the flat node columns
            plus the next root to expand) is snapshotted atomically at
            root-subtree boundaries whenever the checkpointer says a save
            is due, and cleared once the build completes.
        resume:
            Restart from the ``checkpoint`` directory's build snapshot
            (validated against the graph's ``n``/``m`` and the
            ``threshold``).  A resumed build is bit-identical to an
            uninterrupted one.  No snapshot present means a fresh build.
        parallel:
            ``None`` (serial), an int worker count, or a
            :class:`~repro.parallel.ParallelConfig`.  With more than one
            worker the per-root subtrees are expanded in a process pool
            and merged in seed order, producing a byte-identical index.
        options:
            A :class:`~repro.options.RunOptions` bundling the recorder /
            budget / checkpoint / resume / parallel knobs; the individual
            keywords remain as aliases (conflicts raise
            :class:`~repro.errors.InvalidParameterError`).
        """
        if threshold < 0:
            raise IndexBuildError(f"threshold must be >= 0, got {threshold}")
        opts = RunOptions.resolve(
            options,
            recorder=recorder,
            budget=budget,
            checkpoint=checkpoint,
            resume=resume,
            parallel=parallel,
        )
        ckpt = Checkpointer.ensure(opts.checkpoint)
        with opts.recorder.span("index/build", observe="stage/index_build"):
            if opts.parallel is not None and opts.parallel.enabled:
                from ..parallel.build import parallel_build

                return parallel_build(
                    cls,
                    graph,
                    threshold,
                    view,
                    opts.recorder,
                    opts.budget,
                    ckpt,
                    opts.resume,
                    opts.parallel,
                )
            return cls._build(
                graph, threshold, view, opts.recorder, opts.budget, ckpt, opts.resume
            )

    @classmethod
    def _build(
        cls,
        graph: Graph,
        threshold: int,
        view: Optional[OrderedGraphView],
        recorder: Recorder,
        budget: Budget = NULL_BUDGET,
        ckpt: Optional[Checkpointer] = None,
        resume: bool = False,
    ) -> "SCTIndex":
        if view is None:
            with recorder.span("ordered_view"):
                view = build_ordered_view(graph)
        n = view.n
        adj = view.adj_bits
        out = view.out_bits
        order = view.order
        core = view.core_number

        vertex: List[int] = [-1]
        label: List[int] = [-1]
        parent: List[int] = [0]
        depth_of: List[int] = [0]
        pruned_outdeg = 0
        pruned_core = 0
        start_root = 0
        if resume and ckpt is not None:
            payload = ckpt.load(_BUILD_CHECKPOINT_KIND)
            if payload is not None:
                require_match(
                    payload,
                    {"n": graph.n, "m": graph.m, "threshold": threshold},
                    _BUILD_CHECKPOINT_KIND,
                )
                vertex = payload["vertex"]
                label = payload["label"]
                parent = payload["parent"]
                depth_of = payload["depth_of"]
                pruned_outdeg = payload["pruned_outdeg"]
                pruned_core = payload["pruned_core"]
                start_root = payload["next_root"]
                if recorder.enabled:
                    recorder.counter("checkpoint/resumed")

        def frontier_state(next_root: int) -> Dict[str, object]:
            return {
                "n": graph.n,
                "m": graph.m,
                "threshold": threshold,
                "next_root": next_root,
                "vertex": vertex,
                "label": label,
                "parent": parent,
                "depth_of": depth_of,
                "pruned_outdeg": pruned_outdeg,
                "pruned_core": pruned_core,
            }

        def exhaust(reason: str, next_root: int):
            if ckpt is not None:
                ckpt.save(_BUILD_CHECKPOINT_KIND, frontier_state(next_root))
                if recorder.enabled:
                    recorder.counter("checkpoint/saves")
            if recorder.enabled:
                recorder.counter("budget/exhausted")
                recorder.gauge("budget/reason", reason)
                recorder.gauge("budget/stage", "index/build")
            return budget.error(reason, stage="index/build")

        nodes_since_poll = 0

        def poll() -> Optional[str]:
            # one check per expansion step; actual budget reads every
            # _BUILD_POLL_NODES steps, with the tally carried across roots
            nonlocal nodes_since_poll
            if not budget.active:
                return None
            nodes_since_poll += 1
            if nodes_since_poll >= _BUILD_POLL_NODES:
                nodes_since_poll = 0
                return budget.exceeded()
            return None

        step_poll = None if budget is NULL_BUDGET else poll
        for i in range(start_root, n):
            if budget.active:
                reason = budget.exceeded()
                if reason:
                    raise exhaust(reason, i)
            if threshold:
                if out[i].bit_count() + 1 < threshold:
                    pruned_outdeg += 1
                    continue  # out-degree pre-pruning
                if core[i] + 1 < threshold:
                    pruned_core += 1
                    continue  # degeneracy pre-pruning
            reason = _expand_root_subtree(
                vertex, label, parent, depth_of,
                adj, order, i, out[i], 0, step_poll,
            )
            if reason:
                raise exhaust(reason, i)
            if ckpt is not None and ckpt.due(_BUILD_CHECKPOINT_KIND):
                ckpt.save(_BUILD_CHECKPOINT_KIND, frontier_state(i + 1))
                if recorder.enabled:
                    recorder.counter("checkpoint/saves")
        if ckpt is not None:
            # the frontier snapshot only describes an unfinished build;
            # leaving it behind would make a later resume= skip real work
            ckpt.clear(_BUILD_CHECKPOINT_KIND)

        index = cls._finalize_build(
            graph.n, vertex, label, parent, depth_of, threshold
        )
        _record_build_tallies(
            recorder, index, threshold, pruned_outdeg, pruned_core
        )
        return index

    @classmethod
    def _finalize_build(
        cls,
        n_vertices: int,
        vertex: List[int],
        label: List[int],
        parent: List[int],
        depth_of: List[int],
        threshold: int,
    ) -> "SCTIndex":
        """Freeze build-time lists into the flat column layout.

        The expansion appends nodes the moment it descends into them, so
        list position is already the DFS pre-order id; this derives the
        ``subtree``/``max_depth`` windows and the CSR child ranges from
        the ``parent`` column and packs everything into ``array('q')``.
        """
        max_depth = _compute_max_depth(parent, depth_of)
        subtree = _compute_subtree_sizes(parent)
        child_off, child_ids = _csr_children(parent)
        return cls(
            n_vertices=n_vertices,
            vertex=array("q", vertex),
            label=array("q", label),
            depth=array("q", depth_of),
            max_depth=array("q", max_depth),
            subtree=array("q", subtree),
            child_off=array("q", child_off),
            child_ids=array("q", child_ids),
            threshold=threshold,
        )

    @classmethod
    def _from_object_tree(
        cls,
        n_vertices: int,
        vertex: Sequence[int],
        label: Sequence[int],
        children: Sequence[Sequence[int]],
        max_depth: Sequence[int],
        threshold: int,
        origin="<memory>",
    ) -> "SCTIndex":
        """Canonicalise a legacy object tree (child lists) into columns.

        Nodes are renumbered to DFS pre-order following each child list
        in order, so a tree whose ids were already pre-order (every file
        this library writes) keeps its ids — and a hand-crafted v1 file
        with shuffled ids becomes a valid window-encoded index with the
        identical traversal sequence.  A node reachable twice (the
        structure is not a tree) or not at all fails loudly.
        """
        n = len(vertex)
        order: List[int] = []  # old ids in pre-order
        parent: List[int] = []  # parent (new ids), per new id
        depth: List[int] = []
        seen = [False] * n
        stack: List[Tuple[int, int, int]] = [(0, 0, 0)]
        while stack:
            old, par, dep = stack.pop()
            if seen[old]:
                raise IndexBuildError(
                    f"index file {origin!s} is not a tree: node {old} is "
                    "reachable twice"
                )
            seen[old] = True
            new = len(order)
            order.append(old)
            parent.append(par)
            depth.append(dep)
            for child in reversed(children[old]):
                stack.append((child, new, dep + 1))
        if len(order) != n:
            raise IndexBuildError(
                f"index file {origin!s} has {n - len(order)} node(s) "
                "unreachable from the root"
            )
        subtree = _compute_subtree_sizes(parent)
        child_off, child_ids = _csr_children(parent)
        return cls(
            n_vertices=n_vertices,
            vertex=array("q", (vertex[o] for o in order)),
            label=array("q", (label[o] for o in order)),
            depth=array("q", depth),
            max_depth=array("q", (max_depth[o] for o in order)),
            subtree=array("q", subtree),
            child_off=array("q", child_off),
            child_ids=array("q", child_ids),
            threshold=threshold,
        )

    @classmethod
    def _from_columns(
        cls, n_vertices: int, threshold: int, columns: Dict, source=None
    ) -> "SCTIndex":
        """Wrap ready-made columns (mmap views, shared memory, arrays)."""
        return cls(
            n_vertices=n_vertices,
            vertex=columns["vertex"],
            label=columns["label"],
            depth=columns["depth"],
            max_depth=columns["max_depth"],
            subtree=columns["subtree"],
            child_off=columns["child_off"],
            child_ids=columns["child_ids"],
            threshold=threshold,
            source=source,
        )

    def _columns(self) -> Dict[str, Sequence[int]]:
        """The flat columns by name, in no particular order."""
        return {
            "vertex": self._vertex,
            "label": self._label,
            "depth": self._depth,
            "max_depth": self._max_depth,
            "subtree": self._subtree,
            "child_off": self._child_off,
            "child_ids": self._child_ids,
        }

    # ------------------------------------------------------------------
    # basic stats
    # ------------------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Vertex count of the indexed graph."""
        return self._n_vertices

    @property
    def n_tree_nodes(self) -> int:
        """Number of tree nodes, excluding the virtual root."""
        return len(self._vertex) - 1

    @property
    def n_leaves(self) -> int:
        """Number of leaves (= number of root-to-leaf paths; on a complete
        index this equals the number of maximal cliques)."""
        return sum(1 for size in self._subtree[1:] if size == 1)

    @property
    def threshold(self) -> int:
        """The build threshold ``k'`` (0 for a complete index)."""
        return self._threshold

    @property
    def max_clique_size(self) -> int:
        """Size of the largest clique reachable through the index.

        On a complete index this is the graph's ``k_max`` (every
        root-to-leaf path induces a clique).
        """
        return self._max_depth[0]

    @property
    def backing(self) -> str:
        """Where the columns live: ``memory``, ``mmap`` or ``shared_memory``."""
        if self._source is None:
            return "memory"
        if isinstance(self._source, _mmap.mmap):
            return "mmap"
        return "shared_memory"

    def close(self) -> None:
        """Release an mmap / shared-memory backing (idempotent).

        A memory-backed index is untouched; a zero-copy one becomes
        unusable — its columns are dropped so the underlying mapping can
        be unmapped.  Only call when no query is in flight.
        """
        if self._source is None:
            return
        empty = array("q")
        self._vertex = self._label = self._depth = empty
        self._max_depth = self._subtree = empty
        self._child_off = self._child_ids = empty
        source, self._source = self._source, None
        try:
            source.close()
        except (BufferError, ValueError):  # a view escaped; GC will finish
            pass

    def apply_updates(
        self,
        graph: Graph,
        inserts=(),
        deletes=(),
        options: Optional[RunOptions] = None,
    ):
        """Apply an edge batch to this index **in place**.

        ``graph`` must be the graph this index was built from; the index
        is rebound to the incrementally rebuilt columns (only dirty root
        subtrees are re-expanded — see :mod:`repro.core.update`) and the
        returned :class:`~repro.core.update.DirtyRegion` carries the
        updated :class:`~repro.graph.Graph` plus the change summary.  The
        result is byte-identical to a from-scratch build of the updated
        graph at the same threshold.

        This mutation is single-writer: a concurrent reader of *this*
        object may observe torn columns.  Concurrent settings (the
        service) use :func:`repro.core.update.compute_update` instead and
        atomically swap in the fresh index it returns.
        """
        from .update import compute_update

        region = compute_update(
            self, graph, inserts, deletes, options=options
        )
        fresh = region.index
        self._n_vertices = fresh._n_vertices
        self._vertex = fresh._vertex
        self._label = fresh._label
        self._depth = fresh._depth
        self._max_depth = fresh._max_depth
        self._subtree = fresh._subtree
        self._child_off = fresh._child_off
        self._child_ids = fresh._child_ids
        # carry the cached ordered-view slice so the *next* update skips
        # re-peeling the pre-update graph (steady-state update cost)
        self._update_view = getattr(fresh, "_update_view", None)
        # a zero-copy backing no longer feeds any column; drop our
        # reference and let the GC (or the load-time finalizer) unmap it
        # once the last escaped view dies — never eagerly
        self._source = None
        return region

    def _children_of(self, node: int) -> Sequence[int]:
        """Node ``node``'s children (CSR slice, ascending = DFS order)."""
        return self._child_ids[self._child_off[node]:self._child_off[node + 1]]

    def _root_ids(self) -> List[int]:
        """The virtual root's children (one per unpruned seed vertex)."""
        return list(self._children_of(0))

    def statistics(self) -> Dict[str, object]:
        """Structural statistics of the tree (for reports and ablations).

        Returns a dict with node/leaf/label counts, the depth histogram of
        the leaves, and the mean root-to-leaf path length.
        """
        label = self._label
        depth = self._depth
        subtree = self._subtree
        n_holds = sum(1 for lab in label[1:] if lab == HOLD)
        n_pivots = sum(1 for lab in label[1:] if lab == PIVOT)
        depth_histogram: Dict[int, int] = {}
        total_depth = 0
        n_leaves = 0
        for node in range(1, len(subtree)):
            if subtree[node] == 1:
                d = depth[node]
                depth_histogram[d] = depth_histogram.get(d, 0) + 1
                total_depth += d
                n_leaves += 1
        return {
            "tree_nodes": self.n_tree_nodes,
            "leaves": n_leaves,
            "holds": n_holds,
            "pivots": n_pivots,
            "max_depth": self._max_depth[0],
            "mean_leaf_depth": (total_depth / n_leaves) if n_leaves else 0.0,
            "leaf_depth_histogram": dict(sorted(depth_histogram.items())),
            "threshold": self._threshold,
        }

    def a_maximum_clique(self) -> List[int]:
        """One clique of size :attr:`max_clique_size`, as sorted vertex ids.

        Greedy max-depth descent: from the root, repeatedly enter a child
        whose max-depth equals the target.  Every root-to-leaf path induces
        a clique, so the collected vertices form a maximum one.  Cost is
        ``O(max_clique_size * branching)`` — no traversal of the tree.
        """
        target = self._max_depth[0]
        if target == 0:
            return []
        vertices: List[int] = []
        node = 0
        while self._subtree[node] > 1:
            node = next(
                c for c in self._children_of(node)
                if self._max_depth[c] == target
            )
            vertices.append(self._vertex[node])
        return sorted(vertices)

    def supports_k(self, k: int) -> bool:
        """Whether this (possibly partial) index can list k-cliques."""
        return k >= max(self._threshold, 1)

    def _require_k(self, k: int) -> None:
        if k < 1:
            raise IndexQueryError(f"k must be >= 1, got {k}")
        if not self.supports_k(k):
            raise IndexQueryError(
                f"partial SCT*-{self._threshold}-Index cannot answer k={k}; "
                f"rebuild with threshold <= {k}"
            )

    # ------------------------------------------------------------------
    # path traversal
    # ------------------------------------------------------------------

    def _iter_traversal(
        self,
        k: Optional[int],
        root_slice: Optional[Tuple[int, int]] = None,
    ) -> Iterator[Tuple[int, List[int], List[int]]]:
        """Shared pruned-DFS core behind path listing and node counting.

        Yields ``(node, holds, pivots)`` for every *visited* non-root node,
        in the order the recursive formulation would visit them.  ``holds``
        and ``pivots`` are live buffers maintained in place — appended on
        entry, popped on backtrack, O(1) amortised per tree edge —
        so consumers must snapshot them before storing.

        Node ids are pre-order, so the DFS is a *linear scan* over the id
        window: visiting ids in ascending order IS the depth-first visit,
        a pruned subtree is skipped by jumping ``subtree[i]`` ids forward,
        and backtracking pops every open subtree whose window ended.

        With ``k`` given, subtrees whose max-depth is below ``k`` are
        skipped (they cannot contain a k-clique), and so are hold branches
        entered with ``k`` holds already on the path (every k-clique of a
        path must contain *all* its holds).

        ``root_slice=(lo, hi)`` restricts the walk to the virtual root's
        children with positions ``lo <= pos < hi`` — the sharding handle
        of :mod:`repro.parallel`: consecutive root windows are adjacent id
        ranges, so concatenating the traversals of consecutive slices
        reproduces the full traversal exactly.
        """
        vertex = self._vertex
        label = self._label
        subtree = self._subtree
        max_depth = self._max_depth
        n_roots = self._child_off[1] - self._child_off[0]
        if root_slice is None:
            lo, hi = 0, n_roots
        else:
            lo, hi = root_slice[0], min(root_slice[1], n_roots)
        if lo >= hi:
            return
        child_ids = self._child_ids
        node = child_ids[lo]
        last_root = child_ids[hi - 1]
        end = last_root + subtree[last_root]
        holds: List[int] = []
        pivots: List[int] = []
        open_ends: List[int] = []  # window ends of the open ancestors
        open_bufs: List[List[int]] = []  # which buffer each one pushed to
        while node < end:
            while open_ends and open_ends[-1] <= node:
                open_ends.pop()
                open_bufs.pop().pop()
            if k is not None:
                if max_depth[node] < k:
                    node += subtree[node]
                    continue
                if label[node] == HOLD and len(holds) >= k:
                    node += subtree[node]
                    continue
            buf = holds if label[node] == HOLD else pivots
            buf.append(vertex[node])
            open_ends.append(node + subtree[node])
            open_bufs.append(buf)
            yield node, holds, pivots
            node += 1

    def iter_paths(
        self,
        k: Optional[int] = None,
        enforce_support: bool = True,
        recorder: Recorder = NULL_RECORDER,
        budget: Budget = NULL_BUDGET,
        parallel=None,
        options: Optional[RunOptions] = None,
        _root_slice: Optional[Tuple[int, int]] = None,
    ) -> Iterator[SCTPath]:
        """Yield root-to-leaf paths as :class:`SCTPath` objects.

        With ``k`` given, subtrees whose max-depth is below ``k`` are pruned
        (they cannot contain a k-clique), and so are branches that have
        accumulated more than ``k`` hold vertices (every k-clique of a path
        must contain *all* its holds).  Only paths with at least one
        k-clique are yielded.

        The walk is fully iterative (arbitrarily deep clique trees are fine)
        and uses O(tree depth) memory; each path is snapshotted from in-place
        hold/pivot buffers, so the per-path cost is the path length itself,
        not the recursion depth.

        ``enforce_support=False`` lets a *partial* SCT*-k'-Index answer
        ``k`` below its threshold; the paths then cover only the k-cliques
        living inside unpruned subtrees — the approximation §6.1 of the
        paper relies on ("most k-cliques in the densest subgraph come from
        larger cliques").

        An enabled ``recorder`` tallies ``paths/yielded`` and (with ``k``)
        ``paths/cliques`` — the number of k-cliques the yielded paths
        represent — once the traversal finishes or is closed.

        An active ``budget`` is polled once per yielded path; on
        exhaustion the iterator raises the matching
        :class:`~repro.errors.BudgetExhausted` (a generator cannot
        degrade to a partial result — its consumers do).

        ``parallel=`` (or ``options=`` carrying a parallel config with
        more than one worker) shards the walk across a process pool; the
        chunks are merged in order, so the yielded sequence is identical
        to a serial walk.
        """
        if options is not None or parallel is not None:
            opts = RunOptions.resolve(
                options, recorder=recorder, budget=budget, parallel=parallel
            )
            recorder = opts.recorder
            budget = opts.budget
            if (
                opts.parallel is not None
                and opts.parallel.enabled
                and _root_slice is None
            ):
                yield from self._iter_paths_parallel(
                    k, enforce_support, recorder, budget, opts.parallel
                )
                return
        if recorder.enabled:
            yield from self._iter_paths_recorded(
                k, enforce_support, recorder, budget, _root_slice
            )
            return
        if k is not None and enforce_support:
            self._require_k(k)
        if self.n_tree_nodes == 0:
            # empty tree: the virtual root is itself the only "path"
            if _root_slice is None and (k is None or k == 0):
                yield SCTPath((), ())
            return
        subtree = self._subtree
        for node, holds, pivots in self._iter_traversal(k, _root_slice):
            if subtree[node] == 1:
                if k is None or len(holds) <= k <= len(holds) + len(pivots):
                    if budget.active:
                        budget.check("index/paths")
                    yield SCTPath(tuple(holds), tuple(pivots))

    def _iter_paths_recorded(
        self,
        k: Optional[int],
        enforce_support: bool,
        recorder: Recorder,
        budget: Budget = NULL_BUDGET,
        _root_slice: Optional[Tuple[int, int]] = None,
    ) -> Iterator[SCTPath]:
        """Counting wrapper behind :meth:`iter_paths` with a live recorder.

        Kept out of the plain traversal so the no-recorder path pays
        nothing; totals are flushed even on early ``close()``.
        """
        n_paths = 0
        n_cliques = 0
        started = time.perf_counter()
        try:
            for path in self.iter_paths(
                k, enforce_support, budget=budget, _root_slice=_root_slice
            ):
                n_paths += 1
                if k is not None:
                    n_cliques += path.clique_count(k)
                yield path
        finally:
            recorder.observe(
                "stage/path_iteration", time.perf_counter() - started
            )
            recorder.counter("paths/yielded", n_paths)
            if k is not None:
                recorder.counter("paths/cliques", n_cliques)

    def _iter_paths_parallel(
        self,
        k: Optional[int],
        enforce_support: bool,
        recorder: Recorder,
        budget: Budget,
        config,
    ) -> Iterator[SCTPath]:
        """Pool-backed :meth:`iter_paths`: chunked shards, merged in order.

        The engine owns a short-lived pool for this one traversal; the
        budget is polled once per merged chunk (cancellation latency is
        one chunk, not one path).  Totals mirror the recorded serial walk.
        """
        from ..parallel.engine import PathShardEngine

        if k is not None and enforce_support:
            self._require_k(k)
        n_paths = 0
        n_cliques = 0
        started = time.perf_counter()
        engine = PathShardEngine(self, config, recorder=recorder)
        try:
            if not engine.has_chunks:
                yield from self.iter_paths(
                    k, enforce_support, recorder=recorder, budget=budget
                )
                return
            tally_cliques = recorder.enabled and k is not None
            for chunk in engine.map("paths", k, enforce_support):
                if budget.active:
                    budget.check("index/paths")
                for holds, pivots in chunk:
                    n_paths += 1
                    path = SCTPath(holds, pivots)
                    if tally_cliques:
                        n_cliques += path.clique_count(k)
                    yield path
        finally:
            engine.close()
            if recorder.enabled:
                recorder.observe(
                    "stage/path_iteration", time.perf_counter() - started
                )
                recorder.counter("paths/yielded", n_paths)
                if k is not None:
                    recorder.counter("paths/cliques", n_cliques)

    def collect_paths(
        self, k: Optional[int] = None, enforce_support: bool = True
    ) -> List[SCTPath]:
        """Materialise :meth:`iter_paths` into a list."""
        return list(self.iter_paths(k, enforce_support=enforce_support))

    def path_view(
        self,
        k: Optional[int] = None,
        enforce_support: bool = True,
        recorder: Recorder = NULL_RECORDER,
        budget: Budget = NULL_BUDGET,
        parallel=None,
        options: Optional[RunOptions] = None,
    ) -> "SCTPathView":
        """A re-iterable, zero-materialisation view over the valid paths.

        Every ``iter()`` walks the tree afresh via :meth:`iter_paths`, so
        memory stays bounded by tree depth instead of path-list size.  This
        is what the streaming mode of SCTL/SCTL*/SCTL*-Sample consumes:
        algorithms that sweep the paths once per refinement pass re-traverse
        instead of holding every :class:`SCTPath` alive.  Prefer
        :meth:`collect_paths` reuse only when the path list comfortably fits
        in memory and is swept many times.

        With a parallel config (``parallel=`` or inside ``options=``),
        each ``iter()`` runs through a short-lived process pool; the path
        order is unchanged.  Algorithms that sweep a view many times hold
        one long-lived engine instead — prefer passing ``options=`` to
        them over iterating a parallel view repeatedly.
        """
        opts = RunOptions.resolve(
            options, recorder=recorder, budget=budget, parallel=parallel
        )
        if k is not None and enforce_support:
            self._require_k(k)
        return SCTPathView(
            self, k, enforce_support, opts.recorder, opts.budget, opts.parallel
        )

    def traversal_node_count(self, k: Optional[int] = None) -> int:
        """Number of tree nodes visited when listing k-cliques.

        The ablation metric for max-depth pruning: compare ``k=None``
        (full traversal) with a specific ``k``.  Shares the traversal core
        with :meth:`iter_paths`, so the two always agree on pruning.
        """
        return sum(1 for _ in self._iter_traversal(k))

    # ------------------------------------------------------------------
    # counting queries
    # ------------------------------------------------------------------

    def count_k_cliques(self, k: int, options: Optional[RunOptions] = None) -> int:
        """Total number of k-cliques in the graph, straight off the index."""
        opts = RunOptions.resolve(options)
        self._require_k(k)
        if opts.parallel is not None and opts.parallel.enabled:
            from ..parallel.engine import PathShardEngine

            with PathShardEngine(self, opts.parallel, recorder=opts.recorder) as engine:
                if engine.has_chunks:
                    return engine.count_cliques(k)[1]
        return sum(
            path.clique_count(k)
            for path in self.iter_paths(
                k, recorder=opts.recorder, budget=opts.budget
            )
        )

    def clique_counts_by_size(self) -> Dict[int, int]:
        """Clique counts for every size from ``max(threshold, 1)`` up to
        ``max_clique_size`` — the full clique profile in one sweep."""
        lo = max(self._threshold, 1)
        totals: Dict[int, int] = {}
        for path in self.iter_paths(None):
            h, p = len(path.holds), len(path.pivots)
            for k in range(max(lo, h), h + p + 1):
                totals[k] = totals.get(k, 0) + comb(p, k - h)
        return {k: totals[k] for k in sorted(totals) if totals[k]}

    def per_vertex_counts(
        self, k: int, options: Optional[RunOptions] = None
    ) -> List[int]:
        """k-clique engagement ``|C_k(v, G)|`` for every vertex.

        Each path contributes ``C(|P|, k-|H|)`` to every hold and
        ``C(|P|-1, k-|H|-1)`` to every pivot (a pivot is optional, so it
        misses the cliques that skip it).
        """
        opts = RunOptions.resolve(options)
        self._require_k(k)
        if opts.parallel is not None and opts.parallel.enabled:
            from ..parallel.engine import PathShardEngine

            with PathShardEngine(self, opts.parallel, recorder=opts.recorder) as engine:
                if engine.has_chunks:
                    return engine.vertex_counts(k)
        counts = [0] * self._n_vertices
        for path in self.iter_paths(k):
            total = path.clique_count(k)
            if not total:
                continue
            for v in path.holds:
                counts[v] += total
            with_pivot = path.pivot_engagement(k)
            if with_pivot:
                for v in path.pivots:
                    counts[v] += with_pivot
        return counts

    def count_in_subset(
        self, k: int, allowed: Iterable[int], enforce_support: bool = True
    ) -> int:
        """Number of k-cliques of ``G`` lying entirely inside ``allowed``.

        This is the recovery step of SCTL*-Sample (§6.1): restrict each
        path to the allowed vertices — all holds must survive, pivots are
        filtered — and re-apply Lemma 2.  No clique enumeration happens.

        With ``enforce_support=False`` on a partial index and ``k`` below
        its threshold, the returned value is a *lower bound* (pruned
        subtrees may hide further k-cliques).
        """
        if enforce_support:
            self._require_k(k)
        allowed_set: Set[int] = set(allowed)
        total = 0
        for path in self.iter_paths(k, enforce_support=enforce_support):
            if any(h not in allowed_set for h in path.holds):
                continue
            p_in = sum(1 for v in path.pivots if v in allowed_set)
            need = k - len(path.holds)
            if 0 <= need <= p_in:
                total += comb(p_in, need)
        return total

    def per_vertex_counts_in_subset(
        self, k: int, allowed: Iterable[int]
    ) -> Dict[int, int]:
        """Engagement ``|C_k(v, G[allowed])|`` for each allowed vertex."""
        self._require_k(k)
        allowed_set: Set[int] = set(allowed)
        counts: Dict[int, int] = {v: 0 for v in allowed_set}
        for path in self.iter_paths(k):
            if any(h not in allowed_set for h in path.holds):
                continue
            pivots_in = [v for v in path.pivots if v in allowed_set]
            need = k - len(path.holds)
            if need < 0 or need > len(pivots_in):
                continue
            hold_share = comb(len(pivots_in), need)
            for v in path.holds:
                counts[v] += hold_share
            if need >= 1:
                pivot_share = comb(len(pivots_in) - 1, need - 1)
                if pivot_share:
                    for v in pivots_in:
                        counts[v] += pivot_share
        return counts

    def iter_k_cliques(self, k: int) -> Iterator[Tuple[int, ...]]:
        """Yield every k-clique by expanding the paths (listing query)."""
        self._require_k(k)
        for path in self.iter_paths(k):
            yield from path.iter_cliques(k)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def save(self, path, format: Optional[int] = None) -> None:
        """Persist the index to ``path`` (see ``docs/index-format.md``).

        ``format=2`` (the default) writes the flat columns as a binary
        section after a JSON header line, so :meth:`load` becomes an
        ``mmap`` plus a view cast.  ``format=1`` writes the legacy
        JSON-lines text format — portable, diff-able, and readable by
        older checkouts.

        Either write is crash-safe: content goes to a temporary file in
        the same directory which then atomically replaces ``path``, so a
        crash (or injected fault) mid-save leaves any previous index at
        ``path`` intact and readable.
        """
        if format is None:
            format = sct_format.FORMAT_V2
        if format == sct_format.FORMAT_V1:
            with atomic_writer(path) as handle:
                self._write(handle)
        elif format == sct_format.FORMAT_V2:
            with atomic_writer(path, binary=True) as handle:
                self._write_v2(handle)
        else:
            supported = ", ".join(str(v) for v in sct_format.SUPPORTED_FORMATS)
            raise IndexBuildError(
                f"unknown index format {format!r}; supported: {supported}"
            )

    def _write(self, handle: IO[str]) -> None:
        """Serialise the index onto an open text handle (format v1).

        Format: one JSON header line, then one line per tree node in
        pre-order id order: ``vertex label max_depth n_children child_ids``.
        Byte-identical to the pre-CSR object-tree writer, so v1 files
        remain the cross-version parity oracle.
        """
        header = {
            "format": sct_format.FORMAT_V1,
            "n_vertices": self._n_vertices,
            "n_nodes": len(self._vertex),
            "threshold": self._threshold,
        }
        handle.write(json.dumps(header) + "\n")
        for i in range(len(self._vertex)):
            kids = self._children_of(i)
            fields = [self._vertex[i], self._label[i], self._max_depth[i], len(kids)]
            fields.extend(kids)
            handle.write(" ".join(map(str, fields)) + "\n")

    def _write_v2(self, handle: IO[bytes]) -> None:
        """Serialise the flat columns onto an open binary handle (format v2)."""
        sct_format.write_index(
            handle,
            n_vertices=self._n_vertices,
            n_nodes=len(self._vertex),
            threshold=self._threshold,
            columns=self._columns(),
        )

    @classmethod
    def load(cls, path) -> "SCTIndex":
        """Load an index previously written by :meth:`save`, any format.

        The JSON header names the format: v2 files are memory-mapped
        (columns become zero-copy views, so load time is independent of
        index size), v1 files go through the legacy text parser and are
        canonicalised to the flat column layout.  A file of an unknown
        version fails with an :class:`~repro.errors.IndexBuildError`
        naming the found and supported versions.
        """
        header = sct_format.peek_header(path)
        found = header.get("format")
        if found == sct_format.FORMAT_V1:
            return cls._load_v1(path)
        if found == sct_format.FORMAT_V2:
            return cls._load_v2(path)
        supported = ", ".join(str(v) for v in sct_format.SUPPORTED_FORMATS)
        raise IndexBuildError(
            f"unsupported index format {found!r} in {path!s} "
            f"(supported formats: {supported})"
        )

    @classmethod
    def _load_v1(cls, path) -> "SCTIndex":
        """Parse a v1 JSON-lines index file.

        Fails with a version-naming error on a v2 (or newer) file rather
        than tripping over its binary section.
        """
        header = sct_format.peek_header(path)
        sct_format.require_format(header, sct_format.FORMAT_V1, path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                handle.readline()  # header, already parsed
                n_nodes = header["n_nodes"]
                n_vertices = header["n_vertices"]
                vertex: List[int] = []
                label: List[int] = []
                children: List[List[int]] = []
                max_depth: List[int] = []
                for node_id in range(n_nodes):
                    line = handle.readline()
                    fields = line.split()
                    v = int(fields[0])
                    if not (0 <= v < n_vertices or (node_id == 0 and v == -1)):
                        raise IndexBuildError(
                            f"vertex id {v} out of range for "
                            f"{n_vertices}-vertex graph in {path!s}: "
                            f"{line.strip()!r}"
                        )
                    vertex.append(v)
                    label.append(int(fields[1]))
                    max_depth.append(int(fields[2]))
                    n_kids = int(fields[3])
                    kids = [int(x) for x in fields[4:4 + n_kids]]
                    if len(kids) != n_kids:
                        raise IndexBuildError(
                            f"truncated child list in {path!s}"
                        )
                    children.append(kids)
        except IndexBuildError:
            raise
        except (ValueError, KeyError, IndexError, json.JSONDecodeError) as exc:
            raise IndexBuildError(f"malformed index file {path!s}: {exc}") from exc
        for kids in children:
            for child in kids:
                if not 0 < child < n_nodes:
                    raise IndexBuildError(
                        f"child id {child} out of range in {path!s}"
                    )
        return cls._from_object_tree(
            n_vertices=header["n_vertices"],
            vertex=vertex,
            label=label,
            children=children,
            max_depth=max_depth,
            threshold=header["threshold"],
            origin=path,
        )

    @classmethod
    def _load_v2(cls, path) -> "SCTIndex":
        """Memory-map a v2 index file (zero-copy column views)."""
        header, columns, mapping = sct_format.read_index(path)
        n_nodes = header["n_nodes"]
        if (
            columns["vertex"][0] != -1
            or columns["subtree"][0] != n_nodes
            or columns["child_off"][0] != 0
            or columns["child_off"][n_nodes] != n_nodes - 1
        ):
            for column in columns.values():  # release views, then unmap
                if isinstance(column, memoryview):
                    column.release()
            mapping.close()
            raise IndexBuildError(
                f"inconsistent column data in index file {path!s} "
                "(root sentinel or window invariants violated)"
            )
        index = cls._from_columns(
            n_vertices=header["n_vertices"],
            threshold=header["threshold"],
            columns=columns,
            source=mapping,
        )
        # Keep the fd-backed mapping alive for exactly as long as any
        # reader can reach it: the file may be atomically replaced (an
        # incremental update) or unlinked (cache eviction) while this
        # object still serves in-flight queries — POSIX keeps the mapped
        # inode readable until the mapping itself is released, which the
        # finalizer does once the index object is garbage-collected.
        weakref.finalize(index, _release_mapping, mapping)
        return index

    def __repr__(self) -> str:
        return (
            f"SCTIndex(n_vertices={self._n_vertices}, "
            f"tree_nodes={self.n_tree_nodes}, threshold={self._threshold}, "
            f"max_clique={self.max_clique_size})"
        )


class SCTPathView:
    """Re-iterable streaming view of an index's valid root-to-leaf paths.

    Obtained from :meth:`SCTIndex.path_view`.  Each ``iter()`` re-traverses
    the tree with the same pruning, yielding :class:`SCTPath` objects in a
    deterministic order, so sweeping the view twice sees the identical
    sequence a :meth:`SCTIndex.collect_paths` list would hold — without
    ever materialising it.
    """

    __slots__ = (
        "_index", "_k", "_enforce_support", "_recorder", "_budget", "_parallel"
    )

    def __init__(
        self,
        index: SCTIndex,
        k: Optional[int],
        enforce_support: bool = True,
        recorder: Recorder = NULL_RECORDER,
        budget: Budget = NULL_BUDGET,
        parallel=None,
    ):
        self._index = index
        self._k = k
        self._enforce_support = enforce_support
        self._recorder = recorder
        self._budget = budget
        self._parallel = parallel

    def __iter__(self) -> Iterator[SCTPath]:
        return self._index.iter_paths(
            self._k,
            enforce_support=self._enforce_support,
            recorder=self._recorder,
            budget=self._budget,
            parallel=self._parallel,
        )

    def __repr__(self) -> str:
        return f"SCTPathView(k={self._k}, index={self._index!r})"
