"""BatchUpdate: distributing path weight in bulk (Algorithm 4).

SCTL processes the ``C(|P|, k-|H|)`` k-cliques of a root-to-leaf path one
by one, each granting +1 to its minimum-weight vertex.  BatchUpdate
reproduces the aggregate effect with far fewer weight writes by exploiting
the path structure:

* a **hold** vertex belongs to *every* clique of the path, so while it is
  the unique minimum it absorbs one unit per remaining clique — up to the
  ``gap`` to the next-smallest weight — in a single addition;
* a **pivot** vertex belongs to exactly ``C(|P|-1, k-|H|-1)`` cliques; once
  those are exhausted the subproblem splits into "cliques containing the
  pivot" (pivot promoted to hold) and "cliques avoiding it" (pivot removed),
  exactly the four cases of Algorithm 4.

Tie handling follows the paper: when several *holds* share the minimum the
budget is spread evenly across them; minimum-weight *pivots* are processed
one at a time.

All weights are integers inside an iteration, so every ``gap`` is >= 1 and
progress is guaranteed.  The split runs on an explicit work stack rather
than recursion, so paths with thousands of pivots distribute fine.
"""

from __future__ import annotations

from math import comb
from typing import List, MutableSequence, Optional, Sequence, Tuple

from ..obs import NULL_RECORDER, Recorder

__all__ = ["batch_update"]


def batch_update(
    weights: MutableSequence[int],
    holds: Sequence[int],
    pivots: Sequence[int],
    k: int,
    lim: Optional[int] = None,
    recorder: Recorder = NULL_RECORDER,
) -> int:
    """Distribute one unit per k-clique of the path onto ``weights``.

    Parameters
    ----------
    weights:
        Per-vertex integer weights, mutated in place.
    holds, pivots:
        The path's hold and pivot vertices (after any reduction filtering).
    k:
        Clique size.
    lim:
        Number of cliques to process (defaults to all cliques of the path).
    recorder:
        Observability hook: tallies ``batch/calls``, ``batch/cliques`` and
        ``batch/weight_updates``.  The SCTL* refinement loop does *not*
        pass its recorder here — it reports per-iteration aggregates
        instead, keeping traces at iteration granularity — so these
        counters appear only for direct instrumented calls.

    Returns the number of weight-write operations performed — the metric
    Table 4 of the paper reports as ``#updates``.
    """
    h: List[int] = list(holds)
    p: List[int] = list(pivots)
    t = k - len(h)
    if t < 0 or t > len(p):
        return 0
    total = comb(len(p), t)
    budget = total if lim is None else min(lim, total)
    if budget <= 0:
        return 0
    updates = _distribute(weights, h, p, k, budget)
    if recorder.enabled:
        recorder.counter("batch/calls")
        recorder.counter("batch/cliques", budget)
        recorder.counter("batch/weight_updates", updates)
    return updates


def _distribute(
    weights: MutableSequence[int], h: List[int], p: List[int], k: int, budget: int
) -> int:
    """Core loop of Algorithm 4 on an explicit work stack.

    ``h``/``p`` are the working lists the former recursion mutated and
    restored; the same shared-list discipline is replayed here through a
    continuation stack, one entry per open pivot split, so the weight
    writes land in *exactly* the order the recursive formulation produced
    them (including the incidental move-to-back of processed pivots that
    drives tie-breaking) — but a path with thousands of pivots no longer
    overflows the interpreter stack.
    """
    updates = 0
    # (pivot, rest_budget, in_with_branch) per open split; unwound like the
    # recursion's restore sequence when an invocation drains its budget
    conts: List[Tuple[int, int, bool]] = []
    while True:
        while budget > 0:
            t = k - len(h)
            if t < 0 or t > len(p):
                break
            if t == 0:
                # exactly one clique (all holds): a single +1 to its minimum
                v = min(h, key=weights.__getitem__)
                weights[v] += 1
                updates += 1
                break
            min_hold = min((weights[x] for x in h), default=None)
            min_pivot = min(weights[x] for x in p)
            w_min = min_pivot if min_hold is None else min(min_hold, min_pivot)
            # smallest weight strictly above the minimum (None = all tied)
            w_next: Optional[int] = None
            for x in h:
                w = weights[x]
                if w > w_min and (w_next is None or w < w_next):
                    w_next = w
            for x in p:
                w = weights[x]
                if w > w_min and (w_next is None or w < w_next):
                    w_next = w
            if min_hold is not None and min_hold < min_pivot:
                # Cases 1-2: the minimum sits at hold vertices only.  Every
                # clique contains every hold, so the tied holds absorb
                # min(budget, ties * gap) units, spread evenly.
                ties = [x for x in h if weights[x] == w_min]
                gap = w_next - w_min  # w_next exists: min_pivot > w_min
                amount = min(budget, len(ties) * gap)
                base, extra = divmod(amount, len(ties))
                for i, x in enumerate(ties):
                    inc = base + (1 if i < extra else 0)
                    if inc:
                        weights[x] += inc
                        updates += 1
                budget -= amount
                continue
            # Cases 3-4: a pivot holds the minimum; process one such pivot.
            v = next(x for x in p if weights[x] == w_min)
            containing = comb(len(p) - 1, t - 1)  # cliques that include v
            with_budget = min(containing, budget)
            amount = (
                with_budget if w_next is None else min(w_next - w_min, with_budget)
            )
            if amount:
                weights[v] += amount
                updates += 1
            remaining_with_v = with_budget - amount
            rest_budget = budget - with_budget
            if remaining_with_v > 0:
                # v caught up with the second-minimum but still has cliques
                # left: promote it to a hold and continue on just those
                p.remove(v)
                h.append(v)
                conts.append((v, rest_budget, True))
                budget = remaining_with_v
                continue
            if rest_budget > 0:
                # the cliques that avoid v form the path without v
                p.remove(v)
                conts.append((v, 0, False))
                budget = rest_budget
                continue
            break
        # the current invocation drained: unwind restores until a deferred
        # without-v branch resumes, or every split is closed
        budget = 0
        while conts:
            v, rest_budget, in_with = conts.pop()
            if in_with:
                h.pop()
                if rest_budget > 0:
                    # net effect of the recursion's append+remove pair:
                    # v stays out of p while its avoiding-cliques run
                    conts.append((v, 0, False))
                    budget = rest_budget
                    break
                p.append(v)
            else:
                p.append(v)
        if budget == 0:
            return updates
