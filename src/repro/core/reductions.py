"""Graph reductions driven by the SCT*-Index (§5.1 of the paper).

Two reductions limit how much of the graph the weight-refinement loop has
to touch:

* **Clique-connectivity** — :func:`kp_computation` (Algorithm 3) builds the
  k-clique-isolating partition by union-finding the vertices of every
  root-to-leaf path (all cliques of one path share its holds, so the whole
  path lands in one partition).  :func:`partition_density_bounds` then
  derives the Lemma 3 upper bound ``max_v |C_k(v, G)| / k`` per partition;
  partitions whose bound is dominated by an achieved density can be
  discarded wholesale.
* **Clique-engagement** — Lemma 4: once a density ``rho'`` has been
  *achieved* by some subgraph, no vertex with fewer than ``ceil(rho')``
  k-cliques can be in the optimal solution.  :func:`engagement_threshold`
  converts a rational density into that integer cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence

from ..graph.disjoint_set import DisjointSet
from ..obs import NULL_RECORDER, Recorder
from ..options import RunOptions
from .sct import SCTIndex, SCTPath

__all__ = [
    "KCliquePartition",
    "kp_computation",
    "partition_density_bounds",
    "engagement_threshold",
]


@dataclass
class KCliquePartition:
    """A k-clique-isolating partition of the vertex set.

    ``partition_of[v]`` is the representative id of the partition holding
    ``v``.  Vertices on no valid path (zero k-cliques) stay singletons.
    """

    partition_of: List[int]

    def groups(self) -> Dict[int, List[int]]:
        """Mapping representative -> sorted member list."""
        out: Dict[int, List[int]] = {}
        for v, root in enumerate(self.partition_of):
            out.setdefault(root, []).append(v)
        return out

    @property
    def n_partitions(self) -> int:
        """Number of distinct partitions (singletons included)."""
        return len(set(self.partition_of))


def kp_computation(
    index: SCTIndex,
    k: int,
    paths: Optional[Iterable[SCTPath]] = None,
    recorder: Recorder = NULL_RECORDER,
    options: Optional[RunOptions] = None,
) -> KCliquePartition:
    """Compute the k-clique-isolating partition (Algorithm 3).

    Each root-to-leaf path that contains at least one k-clique has all its
    vertices merged into one set; union-by-rank and path compression make
    the sweep effectively linear in total path length.

    Parameters
    ----------
    index:
        The SCT*-Index of the graph.
    k:
        Clique size.
    paths:
        Pre-collected valid paths to reuse (else streamed off the index in
        a single sweep — no path list is materialised).
    recorder:
        Observability hook: an enabled recorder gets a
        ``reductions/kp_computation`` span plus ``reductions/paths_merged``
        and ``reductions/partitions`` counters.
    options:
        A :class:`~repro.options.RunOptions`; only the recorder and
        parallel knobs apply here.  With workers the path sweep is
        sharded across a process pool, but the unions are applied in the
        serial path order, so the representatives are identical.
    """
    opts = RunOptions.resolve(options, recorder=recorder)
    recorder = opts.recorder
    engine = None
    if paths is None and opts.parallel is not None and opts.parallel.enabled:
        from ..parallel.engine import PathShardEngine

        candidate = PathShardEngine(index, opts.parallel, recorder=recorder)
        if candidate.has_chunks:
            engine = candidate
            paths = candidate.path_view(k)
        else:
            candidate.close()
    try:
        with recorder.span("reductions/kp_computation"):
            ds = DisjointSet(index.n_vertices)
            if paths is None:
                paths = index.iter_paths(k)
            if recorder.enabled:
                n_paths = 0
                for path in paths:
                    ds.union_many(path.vertices)
                    n_paths += 1
                recorder.counter("reductions/paths_merged", n_paths)
            else:
                for path in paths:
                    ds.union_many(path.vertices)
            partition_of = [ds.find(v) for v in range(index.n_vertices)]
            if recorder.enabled:
                recorder.counter("reductions/partitions", len(set(partition_of)))
            return KCliquePartition(partition_of=partition_of)
    finally:
        if engine is not None:
            engine.close()


def partition_density_bounds(
    partition: KCliquePartition,
    engagement: Sequence[int],
    k: int,
    recorder: Recorder = NULL_RECORDER,
) -> Dict[int, Fraction]:
    """Per-partition upper bound on the maximum k-clique density (Lemma 3).

    The density of any subgraph of partition ``KP`` is at most
    ``max_{v in KP} |C_k(v, G)| / k``.

    Parameters
    ----------
    partition:
        Output of :func:`kp_computation`.
    engagement:
        Global per-vertex k-clique counts ``|C_k(v, G)|``.
    k:
        Clique size.
    recorder:
        Observability hook: records the number of bounded partitions and
        the largest Lemma 3 bound.
    """
    best: Dict[int, int] = {}
    for v, root in enumerate(partition.partition_of):
        count = engagement[v]
        if count > best.get(root, -1):
            best[root] = count
    bounds = {root: Fraction(count, k) for root, count in best.items()}
    if recorder.enabled and bounds:
        recorder.counter("reductions/partitions_bounded", len(bounds))
        recorder.gauge(
            "reductions/max_partition_bound", float(max(bounds.values()))
        )
    return bounds


def engagement_threshold(density: Fraction) -> int:
    """``ceil(density)`` — the Lemma 4 engagement cutoff for a density."""
    return -((-density.numerator) // density.denominator)
