"""Density profiles: densest subgraphs for every k from one index.

One advantage the paper claims for the SCT*-Index is that it is built
*once* and then serves any clique size (Table 3's "total query time for
all k" column).  This module packages that workflow: sweep every
meaningful ``k`` and return the per-k densest-subgraph results, reusing
the index and its collected paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..errors import InvalidParameterError
from ..obs import NULL_RECORDER, Recorder
from ..options import RunOptions
from .density import DensestSubgraphResult
from .sct import SCTIndex
from .sctl_star import sctl_star

__all__ = ["DensityProfile", "density_profile"]


@dataclass
class DensityProfile:
    """Per-k densest-subgraph results over a range of clique sizes."""

    results: Dict[int, DensestSubgraphResult]

    def k_values(self) -> List[int]:
        """The clique sizes covered, ascending."""
        return sorted(self.results)

    def densest_k(self) -> int:
        """The k with the highest achieved density (ties -> smallest k)."""
        return min(
            self.results,
            key=lambda k: (-self.results[k].density_fraction, k),
        )

    def as_rows(self) -> List[List]:
        """Tabular view: ``[k, |S|, clique_count, density]`` per k."""
        return [
            [k, r.size, r.clique_count, float(r.density_fraction)]
            for k, r in sorted(self.results.items())
        ]


def density_profile(
    index: SCTIndex,
    k_values: Optional[Iterable[int]] = None,
    iterations: int = 10,
    recorder: Recorder = NULL_RECORDER,
    options: Optional[RunOptions] = None,
) -> DensityProfile:
    """Run SCTL* for every requested k on one index.

    Parameters
    ----------
    index:
        The SCT*-Index (complete, or partial with every requested ``k``
        at or above its threshold).
    k_values:
        Clique sizes to query; defaults to every k from
        ``max(3, threshold)`` up to the index's maximum clique size.
    iterations:
        SCTL* refinement passes per k.
    recorder:
        Observability hook: each k's SCTL* run lands under a
        ``profile/k/<k>`` span.
    options:
        A :class:`~repro.options.RunOptions`; the recorder, budget and
        parallel knobs are forwarded into each per-k SCTL* run.  The
        checkpoint/resume knobs are stripped — the per-k runs would
        otherwise overwrite each other's snapshots.
    """
    opts = RunOptions.resolve(options, recorder=recorder)
    run_opts = opts.replace(checkpoint=None, resume=False)
    recorder = opts.recorder
    if k_values is None:
        lo = max(3, index.threshold)
        k_values = range(lo, index.max_clique_size + 1)
    results: Dict[int, DensestSubgraphResult] = {}
    for k in k_values:
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        with recorder.span(f"profile/k/{k}"):
            results[k] = sctl_star(
                index, k, iterations=iterations, options=run_opts
            )
    return DensityProfile(results=results)
