"""Top-s dense regions: iterated densest-subgraph extraction.

Applications (fraud rings, protein complexes, story detection) rarely
want a single subgraph — they want the handful of densest, *disjoint*
regions.  The standard recipe is iterative: find the k-clique densest
subgraph, remove its vertices, repeat.  Each round reuses the machinery
of this package (a fresh SCT*-Index per shrunken graph — cheap, since the
graph only shrinks).
"""

from __future__ import annotations

from typing import List

from ..errors import InvalidParameterError
from ..graph.graph import Graph
from .density import DensestSubgraphResult
from .exact import sctl_star_exact
from .sct import SCTIndex
from .sctl_star import sctl_star

__all__ = ["top_dense_subgraphs"]


def top_dense_subgraphs(
    graph: Graph,
    k: int,
    count: int,
    exact: bool = False,
    iterations: int = 10,
    min_density: float = 0.0,
    seed: int = 0,
) -> List[DensestSubgraphResult]:
    """Up to ``count`` vertex-disjoint dense subgraphs, densest first.

    Parameters
    ----------
    graph:
        The input graph.
    k:
        Clique size.
    count:
        Maximum number of regions to extract.
    exact:
        Solve each round exactly (SCTL*-Exact) instead of approximately
        (SCTL*).
    iterations:
        Refinement passes per round.
    min_density:
        Stop early once the next region's density falls to or below this.
    seed:
        RNG seed for the exact solver's sampling stage.

    Vertex ids in the results always refer to the *input* graph.
    """
    if count < 1:
        raise InvalidParameterError(f"count must be >= 1, got {count}")
    results: List[DensestSubgraphResult] = []
    current = graph
    id_map = list(graph.vertices())  # current-graph id -> original id
    for _ in range(count):
        if current.n == 0:
            break
        index = SCTIndex.build(current)
        if index.max_clique_size < k:
            break
        if exact:
            found = sctl_star_exact(
                current, k, index=index, iterations=iterations, seed=seed
            )
        else:
            found = sctl_star(index, k, iterations=iterations)
        if not found.vertices or found.density <= min_density:
            break
        original_vertices = sorted(id_map[v] for v in found.vertices)
        results.append(
            DensestSubgraphResult(
                vertices=original_vertices,
                clique_count=found.clique_count,
                k=k,
                algorithm=found.algorithm,
                iterations=found.iterations,
                upper_bound=found.upper_bound,
                exact=found.exact,
                stats={"round": len(results) + 1},
            )
        )
        survivors = [v for v in current.vertices() if v not in set(found.vertices)]
        current, kept = current.induced_subgraph(survivors)
        id_map = [id_map[v] for v in kept]
    return results
