"""SCTL: index-driven weight refinement (Algorithm 2).

SCTL is the KCL update rule — each k-clique grants +1 to its minimum-weight
vertex, ``T`` rounds, then return the best weight-ordered prefix — with one
decisive change: the k-cliques are *read off* the SCT*-Index paths instead
of being re-enumerated from scratch every round.  Convergence to the
optimum (for ``T -> inf``) is inherited unchanged from the KClist++
analysis, because the per-clique updates are identical.

The certified upper bound follows Remark 1: ``r(v)/T`` is a feasible
fractional clique-to-vertex weight assignment, and for the optimal ``S*``
we have ``sum_{v in S*} r(v)/T >= rho_opt * |S*|``, hence
``rho_opt <= max_v r(v)/T``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..errors import InvalidParameterError
from ..obs import NULL_RECORDER, Recorder
from ..options import RunOptions
from ..resilience.budget import NULL_BUDGET, Budget
from ..resilience.checkpoint import Checkpointer, require_match
from .density import DensestSubgraphResult, PartialResult
from .extraction import best_prefix_from_paths
from .sct import SCTIndex, SCTPath

__all__ = ["sctl", "empty_result"]

_CHECKPOINT_KIND = "sctl-weights"


def empty_result(k: int, algorithm: str, exact: bool = False) -> DensestSubgraphResult:
    """The canonical result when the graph contains no k-clique."""
    return DensestSubgraphResult(
        vertices=[], clique_count=0, k=k, algorithm=algorithm, exact=exact
    )


def sctl(
    index: SCTIndex,
    k: int,
    iterations: int = 10,
    warm_start: Optional[Sequence[int]] = None,
    paths: Optional[Iterable[SCTPath]] = None,
    track_convergence: bool = False,
    recorder: Recorder = NULL_RECORDER,
    budget: Budget = NULL_BUDGET,
    checkpoint=None,
    resume: bool = False,
    parallel=None,
    options: Optional[RunOptions] = None,
) -> DensestSubgraphResult:
    """Run SCTL for ``iterations`` rounds and extract the densest prefix.

    Parameters
    ----------
    index:
        The SCT*-Index of the graph (any threshold ``<= k``).
    k:
        Clique size (``>= 3`` in the paper's setting; ``>= 1`` accepted).
    iterations:
        Number of full passes over the k-cliques (the paper's ``T``).
    warm_start:
        Seed the weight vector from a previous run (``stats["weights"]``)
        instead of zeros — the incremental-update path re-refines the
        updated index from where the pre-update run converged, which
        typically needs far fewer passes.  Must have exactly one entry
        per vertex.  The certified upper bound ``max_v r(v)/T`` assumes
        a zero start, so with a warm start the reported ``upper_bound``
        is heuristic, not certified.  A restored checkpoint (``resume``)
        takes precedence over the seed.
    paths:
        Pre-collected valid root-to-leaf paths to reuse across calls.
        When omitted, the paths are **streamed** off the index on every
        pass, bounding memory by tree depth instead of path-list size;
        pass ``index.collect_paths(k)`` explicitly to trade memory for the
        one-traversal-total behaviour.
    track_convergence:
        Extract after *every* pass and record the achieved density and
        the certified upper bound per iteration (slower; used for
        convergence studies).  Stored in ``stats["density_history"]`` and
        ``stats["upper_bound_history"]``.
    recorder:
        Observability hook (``repro.obs``): per-pass
        ``refine/iteration/<t>`` spans, ``refine/*`` counters and the L1
        weight-change gauge; the default null recorder is free.
    budget:
        Optional :class:`~repro.resilience.RunBudget`, polled at round
        boundaries and per path inside a round.  On exhaustion the
        function degrades to a :class:`~repro.core.density.PartialResult`
        extracted from the weights of the last *completed* round (a
        half-swept round is rolled back, so resumed runs keep exact
        parity); with no completed rounds the partial result is empty
        and flagged invalid.
    checkpoint:
        A :class:`~repro.resilience.Checkpointer` or directory path.
        The weight vector is snapshotted atomically at round boundaries
        whenever a save is due, and cleared once the run completes.
    resume:
        Restore the weight vector (validated against ``k``, the vertex
        count and the algorithm) and continue from the next round.
    parallel:
        ``None`` (serial), an int worker count, or a
        :class:`~repro.parallel.ParallelConfig`.  With more than one
        worker each pass streams the paths through a process pool while
        the per-clique weight updates stay in this process, applied in
        the serial path order — the result is byte-identical to serial.
    options:
        A :class:`~repro.options.RunOptions` bundling the five
        cross-cutting knobs; the individual keywords remain as aliases
        (conflicts raise :class:`~repro.errors.InvalidParameterError`).

    Returns a :class:`DensestSubgraphResult` whose ``stats`` carry the raw
    vertex weights (``"weights"``) and the per-pass clique count
    (``"cliques_per_iteration"``).
    """
    if iterations < 1:
        raise InvalidParameterError(f"iterations must be >= 1, got {iterations}")
    opts = RunOptions.resolve(
        options,
        recorder=recorder,
        budget=budget,
        checkpoint=checkpoint,
        resume=resume,
        parallel=parallel,
    )
    recorder = opts.recorder
    budget = opts.budget
    resume = opts.resume
    ckpt = Checkpointer.ensure(opts.checkpoint)
    engine = None
    if paths is None:
        if opts.parallel is not None and opts.parallel.enabled:
            from ..parallel.engine import PathShardEngine

            candidate = PathShardEngine(index, opts.parallel, recorder=recorder)
            if candidate.has_chunks:
                engine = candidate
                paths = engine.path_view(k)
            else:
                candidate.close()
        if paths is None:
            paths = index.path_view(k)  # streaming: re-traverse per pass
    try:
        return _sctl_run(
            index, k, iterations, warm_start, paths, track_convergence,
            recorder, budget, ckpt, resume, engine,
        )
    finally:
        if engine is not None:
            engine.close()


def _validated_warm_start(
    warm_start: Optional[Sequence[int]], n: int
) -> Optional[List[int]]:
    """``warm_start`` as a fresh int list, or ``None``; length-checked."""
    if warm_start is None:
        return None
    seed = [int(w) for w in warm_start]
    if len(seed) != n:
        raise InvalidParameterError(
            f"warm_start has {len(seed)} weights but the graph has "
            f"{n} vertices"
        )
    if any(w < 0 for w in seed):
        raise InvalidParameterError("warm_start weights must be non-negative")
    return seed


def _sctl_run(
    index: SCTIndex,
    k: int,
    iterations: int,
    warm_start: Optional[Sequence[int]],
    paths: Iterable[SCTPath],
    track_convergence: bool,
    recorder: Recorder,
    budget: Budget,
    ckpt: Optional[Checkpointer],
    resume: bool,
    engine,
) -> DensestSubgraphResult:
    n = index.n_vertices
    seed = _validated_warm_start(warm_start, n)
    n_paths = 0
    cliques_per_iteration = 0
    if engine is not None:
        # the engine counts in the workers; the parent polls the budget
        # once per merged chunk instead of once per 1024 paths
        for chunk_paths, chunk_cliques in engine.map("count", k):
            if budget.active:
                reason = budget.exceeded()
                if reason:
                    return _partial_sctl(k, reason, "refine/setup", recorder)
            n_paths += chunk_paths
            cliques_per_iteration += chunk_cliques
    else:
        for p in paths:
            n_paths += 1
            if budget.active and not n_paths % 1024:
                reason = budget.exceeded()
                if reason:
                    return _partial_sctl(
                        k, reason, "refine/setup", recorder,
                    )
            cliques_per_iteration += p.clique_count(k)
    if not n_paths:
        return empty_result(k, "SCTL")
    track = recorder.enabled
    weights = seed if seed is not None else [0] * n
    start_round = 1
    if resume and ckpt is not None:
        payload = ckpt.load(_CHECKPOINT_KIND)
        if payload is not None:
            require_match(
                payload, {"algorithm": "SCTL", "k": k, "n": n}, _CHECKPOINT_KIND
            )
            weights = payload["weights"]
            start_round = payload["iteration"] + 1
            if track:
                recorder.counter("checkpoint/resumed")
    density_history = []
    upper_history = []
    completed = start_round - 1
    exhausted: Optional[str] = None
    for round_number in range(start_round, iterations + 1):
        if budget.active:
            exhausted = budget.exceeded()
            if exhausted:
                break
        # snapshot whenever a real budget is threaded, not just when it is
        # already active: a cancel (signal, fault) can arm it mid-sweep
        round_start = weights[:] if budget is not NULL_BUDGET else None
        prev_weights = weights[:] if track else None
        with recorder.span(
            f"refine/iteration/{round_number}", observe="stage/refine_round"
        ):
            swept = 0
            for path in paths:
                swept += 1
                if budget.active and not swept % 1024:
                    exhausted = budget.exceeded()
                    if exhausted:
                        break
                for clique in path.iter_cliques(k):
                    u = min(clique, key=weights.__getitem__)
                    weights[u] += 1
            if exhausted:
                # roll the half-swept round back to its entry state so the
                # reported weights sit exactly on a round boundary
                weights = round_start
                break
        completed = round_number
        if budget.active:
            budget.tick()
        if ckpt is not None and ckpt.due(_CHECKPOINT_KIND):
            ckpt.save(
                _CHECKPOINT_KIND,
                {
                    "algorithm": "SCTL",
                    "k": k,
                    "n": n,
                    "iteration": round_number,
                    "weights": weights,
                },
            )
            if track:
                recorder.counter("checkpoint/saves")
        if track:
            # in SCTL every clique performs exactly one +1, so the update
            # count needs no in-loop tally
            weight_change = sum(
                abs(w - pw) for w, pw in zip(weights, prev_weights)
            )
            recorder.counter("refine/iterations")
            recorder.counter("refine/paths_swept", n_paths)
            recorder.counter("refine/cliques_processed", cliques_per_iteration)
            recorder.counter("refine/weight_updates", cliques_per_iteration)
            recorder.gauge("refine/weight_change_l1", weight_change)
            recorder.event(
                "refine_iteration",
                algorithm="SCTL",
                iteration=round_number,
                weight_change_l1=weight_change,
                cliques_processed=cliques_per_iteration,
            )
        if track_convergence:
            snapshot = best_prefix_from_paths(paths, weights, k)
            density_history.append(snapshot.density)
            upper_history.append(
                max(max(weights) / round_number, snapshot.density)
            )
            if track:
                recorder.gauge("refine/density", snapshot.density)
    if exhausted and not completed:
        return _partial_sctl(k, exhausted, "refine/iteration/1", recorder)
    if ckpt is not None:
        if exhausted:
            # persist the last completed round unconditionally so a resume
            # continues exactly where this run degraded
            ckpt.save(
                _CHECKPOINT_KIND,
                {
                    "algorithm": "SCTL",
                    "k": k,
                    "n": n,
                    "iteration": completed,
                    "weights": weights,
                },
            )
        else:
            ckpt.clear(_CHECKPOINT_KIND)
    prefix = best_prefix_from_paths(paths, weights, k)
    upper = max(max(weights) / completed, prefix.density)
    stats = {
        "weights": weights,
        "cliques_per_iteration": cliques_per_iteration,
        "paths": n_paths,
    }
    if track_convergence:
        stats["density_history"] = density_history
        stats["upper_bound_history"] = upper_history
    if exhausted:
        if track:
            recorder.counter("budget/exhausted")
            recorder.gauge("budget/reason", exhausted)
        return PartialResult(
            vertices=sorted(prefix.vertices),
            clique_count=prefix.clique_count,
            k=k,
            algorithm="SCTL",
            iterations=completed,
            upper_bound=upper,
            stats=stats,
            reason=exhausted,
            stage=f"refine/iteration/{completed + 1}",
        )
    return DensestSubgraphResult(
        vertices=sorted(prefix.vertices),
        clique_count=prefix.clique_count,
        k=k,
        algorithm="SCTL",
        iterations=iterations,
        upper_bound=upper,
        stats=stats,
    )


def _partial_sctl(
    k: int, reason: str, stage: str, recorder: Recorder
) -> PartialResult:
    """The empty, invalid partial result for pre-refinement exhaustion."""
    if recorder.enabled:
        recorder.counter("budget/exhausted")
        recorder.gauge("budget/reason", reason)
        recorder.gauge("budget/stage", stage)
    return PartialResult(
        vertices=[],
        clique_count=0,
        k=k,
        algorithm="SCTL",
        valid=False,
        reason=reason,
        stage=stage,
    )
