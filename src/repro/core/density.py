"""Result types shared by every densest-subgraph algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional

__all__ = ["DensestSubgraphResult", "PartialResult"]


@dataclass
class DensestSubgraphResult:
    """Outcome of a k-clique densest subgraph computation.

    Densities are kept exact: ``clique_count`` and ``len(vertices)`` are
    integers, so :attr:`density_fraction` has no floating-point error.

    Attributes
    ----------
    vertices:
        Sorted vertex ids of the reported subgraph (empty when the graph
        has no k-clique).
    clique_count:
        Number of k-cliques inside the reported subgraph, measured on the
        *original* graph.
    k:
        The clique size queried.
    algorithm:
        Human-readable algorithm name (``"SCTL*"``, ``"KCL"``, ...).
    iterations:
        Weight-refinement iterations actually performed.
    upper_bound:
        A certified upper bound on the optimal density, when the algorithm
        produces one (see Remark 1 of the paper); ``None`` otherwise.
    exact:
        ``True`` when the result is verified optimal.
    stats:
        Free-form instrumentation (per-iteration scope sizes, update
        counts, timings...), used by the benchmark harness.
    """

    vertices: List[int]
    clique_count: int
    k: int
    algorithm: str
    iterations: int = 0
    upper_bound: Optional[float] = None
    exact: bool = False
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of vertices in the reported subgraph."""
        return len(self.vertices)

    @property
    def density_fraction(self) -> Fraction:
        """Exact k-clique density ``clique_count / size`` (0 when empty)."""
        if not self.vertices:
            return Fraction(0)
        return Fraction(self.clique_count, len(self.vertices))

    @property
    def density(self) -> float:
        """k-clique density as a float."""
        return float(self.density_fraction)

    def approximation_ratio(self, optimal_density: Fraction) -> float:
        """``density / optimal_density`` against a known optimum."""
        if optimal_density <= 0:
            return 1.0 if self.density_fraction == 0 else float("inf")
        return float(self.density_fraction / optimal_density)

    @property
    def is_partial(self) -> bool:
        """Whether this is a degraded best-so-far result (see
        :class:`PartialResult`)."""
        return False

    def summary(self) -> str:
        """One-line human-readable summary."""
        flag = "exact" if self.exact else "approx"
        return (
            f"{self.algorithm} (k={self.k}, {flag}): |S|={self.size}, "
            f"cliques={self.clique_count}, density={self.density:.4f}"
        )


@dataclass
class PartialResult(DensestSubgraphResult):
    """Best-so-far outcome of a budget-exhausted or cancelled run.

    Every result-returning stage of the pipeline degrades to this instead
    of crashing when its :class:`~repro.resilience.RunBudget` runs out:
    the inherited fields carry the best *achieved* subgraph at the last
    completed boundary (weights included in ``stats`` where the full run
    would include them), and three extra fields describe the degradation:

    Attributes
    ----------
    valid:
        ``True`` when ``vertices``/``clique_count`` describe a genuine
        subgraph of the input with its true k-clique count — usable as an
        approximation.  ``False`` when the run stopped before producing
        anything usable (e.g. during the index build); the result is then
        empty and only ``reason``/``stage`` are meaningful.
    reason:
        Why the run stopped: ``"deadline"``, ``"max_iterations"`` or
        ``"cancelled"`` (mirroring
        :attr:`~repro.errors.BudgetExhausted.reason`).
    stage:
        The pipeline stage (obs span name) that observed the exhaustion.
    """

    valid: bool = True
    reason: str = ""
    stage: str = ""

    @property
    def is_partial(self) -> bool:
        return True

    def summary(self) -> str:
        base = super().summary()
        tag = "partial" if self.valid else "partial, no usable result"
        where = f" at {self.stage}" if self.stage else ""
        return f"{base} [{tag}: {self.reason}{where}]"
