"""Result types shared by every densest-subgraph algorithm.

The classes now live in :mod:`repro.results` — the stable, versioned
result contract (``repro/result-v1``) that the facade, the CLI and the
:mod:`repro.service` daemon all speak.  This module remains the
historical import location: ``DensestSubgraphResult`` is the legacy name
for :class:`repro.results.DenseSubgraphResult` (the same class, not a
copy), and :class:`repro.results.PartialResult` is re-exported
unchanged.
"""

from __future__ import annotations

from ..results import RESULT_SCHEMA, DenseSubgraphResult, PartialResult

# legacy alias: identical class object, kept for one deprecation cycle of
# documentation churn — `repro.DensestSubgraphResult is repro.DenseSubgraphResult`
DensestSubgraphResult = DenseSubgraphResult

__all__ = [
    "RESULT_SCHEMA",
    "DenseSubgraphResult",
    "DensestSubgraphResult",
    "PartialResult",
]
