"""SCTL*-Sample: sampling-based approximation (Algorithm 6, §6.1).

The three stages of the paper:

1. **Sampling** — allocate the sample budget across root-to-leaf paths
   proportionally to each path's clique count (systematic rounding keeps
   the total exact), then draw that many *distinct* k-cliques per path by
   unranking uniformly random combination indices — no path ever
   enumerates cliques it does not hand out.
2. **Weight refinement** — run the KCL update rule on the sampled cliques
   for ``T`` iterations, with the Lemma 4 clique-engagement reduction
   applied inside the sampled subgraph.
3. **Recovery** — extract the best prefix of the sampled subgraph, then
   compute its *true* k-clique density in the original graph through
   :meth:`SCTIndex.count_in_subset` — again without enumerating cliques.

The returned density is therefore measured on the input graph even though
only a sample of cliques was ever visited.
"""

from __future__ import annotations

import random
from fractions import Fraction
from math import comb
from typing import Iterable, List, Optional, Tuple

from ..errors import BudgetExhausted, InvalidParameterError
from ..obs import NULL_RECORDER, Recorder
from ..options import RunOptions
from ..resilience.budget import NULL_BUDGET, Budget
from .density import DensestSubgraphResult, PartialResult
from .extraction import best_prefix_from_cliques
from .reductions import engagement_threshold
from .sct import SCTIndex, SCTPath
from .sctl import empty_result

__all__ = ["sctl_star_sample", "sample_k_cliques"]


def _unrank_combination(rank: int, m: int, t: int) -> Tuple[int, ...]:
    """The ``rank``-th t-subset of ``range(m)`` in lexicographic order."""
    result: List[int] = []
    x = 0
    remaining = t
    while remaining:
        # count subsets starting with x: C(m - x - 1, remaining - 1)
        block = comb(m - x - 1, remaining - 1)
        if rank < block:
            result.append(x)
            remaining -= 1
        else:
            rank -= block
        x += 1
    return tuple(result)


def _sample_from_path(
    path: SCTPath, k: int, want: int, rng: random.Random
) -> List[Tuple[int, ...]]:
    """``want`` distinct k-cliques of ``path``, uniformly at random."""
    need = k - len(path.holds)
    m = len(path.pivots)
    total = comb(m, need)
    want = min(want, total)
    if want <= 0:
        return []
    if need == 0:
        return [path.holds]
    pivots = path.pivots
    ranks = rng.sample(range(total), want)  # distinct ranks, uniform
    cliques = []
    for rank in ranks:
        chosen = _unrank_combination(rank, m, need)
        cliques.append(path.holds + tuple(pivots[i] for i in chosen))
    return cliques


def sample_k_cliques(
    paths: Iterable[SCTPath],
    k: int,
    sample_size: int,
    rng: random.Random,
    recorder: Recorder = NULL_RECORDER,
    budget: Budget = NULL_BUDGET,
    options: Optional[RunOptions] = None,
) -> List[Tuple[int, ...]]:
    """Stage 1: a proportional, distinct-per-path sample of k-cliques.

    Path ``P`` receives a ``|C_k(P)| * sample_size / |C_k(G)|`` share of
    the budget; systematic rounding (floor of the running product) makes
    the shares sum to ``sample_size`` exactly.  If the budget covers every
    clique, all cliques are returned.

    ``paths`` is swept at most twice (once for the global count, once to
    allocate), so a streaming :class:`~repro.core.sct.SCTPathView` works as
    well as a materialised list and draws the identical sample.

    An enabled ``recorder`` gets a ``sample/draw`` span plus counters for
    the clique population, the paths that received samples, and the
    cliques actually drawn.

    A ``budget`` is polled per path; on exhaustion the partially drawn
    sample is useless (its shares no longer sum correctly), so this
    function raises :class:`~repro.errors.BudgetExhausted` and the caller
    degrades.

    ``options=`` carries the same recorder/budget as a bundle; the
    checkpoint and parallel knobs do not apply here (``paths`` is given
    by the caller, who decides how it is produced).
    """
    opts = RunOptions.resolve(options, recorder=recorder, budget=budget)
    recorder = opts.recorder
    budget = opts.budget
    with recorder.span("sample/draw"):
        total = 0
        seen = 0
        for p in paths:
            seen += 1
            if budget.active and not seen % 1024:
                budget.check("sample/draw")
            total += p.clique_count(k)
        if total == 0:
            return []
        if recorder.enabled:
            recorder.counter("sample/clique_population", total)
        if sample_size >= total:
            out = []
            seen = 0
            for p in paths:
                seen += 1
                if budget.active and not seen % 1024:
                    budget.check("sample/draw")
                out.extend(p.iter_cliques(k))
            if recorder.enabled:
                recorder.counter("sample/cliques_drawn", len(out))
            return out
        out = []
        accumulated = 0
        paths_sampled = 0
        seen = 0
        for path in paths:
            seen += 1
            if budget.active and not seen % 1024:
                budget.check("sample/draw")
            count = path.clique_count(k)
            if not count:
                continue
            want = (accumulated + count) * sample_size // total - (
                accumulated * sample_size // total
            )
            accumulated += count
            if want:
                out.extend(_sample_from_path(path, k, want, rng))
                paths_sampled += 1
            if len(out) >= sample_size:
                break
        if recorder.enabled:
            recorder.counter("sample/paths_sampled", paths_sampled)
            recorder.counter("sample/cliques_drawn", len(out))
        return out


def sctl_star_sample(
    index: SCTIndex,
    k: int,
    sample_size: int,
    iterations: int = 10,
    seed: int = 0,
    use_reduction: bool = True,
    paths: Optional[Iterable[SCTPath]] = None,
    recorder: Recorder = NULL_RECORDER,
    budget: Budget = NULL_BUDGET,
    parallel=None,
    options: Optional[RunOptions] = None,
) -> DensestSubgraphResult:
    """Run SCTL*-Sample (Algorithm 6).

    Parameters
    ----------
    index:
        SCT*-Index (a partial SCT*-k'-Index works too and, per §6.1, still
        yields reasonable approximations for ``k`` below the threshold as
        long as ``k >= k'`` is met for the listing itself).
    k:
        Clique size.
    sample_size:
        The paper's ``sigma`` — number of k-cliques to sample.
    iterations:
        Refinement passes ``T`` over the sample.
    seed:
        RNG seed; runs are fully reproducible.
    use_reduction:
        Apply the clique-engagement reduction inside the sampled subgraph.
    paths:
        Pre-collected valid paths to reuse.  When omitted, paths are
        **streamed** off the index (two sweeps: global count + allocation),
        so no path list is ever materialised; the drawn sample is identical
        to the pre-collected mode for the same seed.
    recorder:
        Observability hook (``repro.obs``): ``sample/draw``,
        ``sample/refine`` and ``sample/recover`` spans with draw/visit
        counters and the sampled vs. recovered density gauges.
    budget:
        Optional :class:`~repro.resilience.RunBudget`.  Exhaustion during
        the draw stage yields an *invalid*
        :class:`~repro.core.density.PartialResult` (a partial sample's
        shares are biased, so nothing usable exists yet); exhaustion
        during refinement rolls the half-swept pass back and degrades to
        a *valid* partial result — recovery still measures the true
        density of the extracted prefix on the original graph.
    parallel:
        ``None`` (serial), an int worker count, or a
        :class:`~repro.parallel.ParallelConfig`; shards the two drawing
        sweeps over a process pool.  The paths arrive in serial order,
        so the drawn sample — and everything downstream — is identical
        for any worker count and the same seed.
    options:
        A :class:`~repro.options.RunOptions` bundling the knobs; the
        individual keywords remain as aliases.  Checkpoint/resume do not
        apply to sampling and are ignored.
    """
    if sample_size < 1:
        raise InvalidParameterError(f"sample_size must be >= 1, got {sample_size}")
    if iterations < 1:
        raise InvalidParameterError(f"iterations must be >= 1, got {iterations}")
    opts = RunOptions.resolve(
        options, recorder=recorder, budget=budget, parallel=parallel
    )
    recorder = opts.recorder
    budget = opts.budget
    rng = random.Random(seed)
    # §6.1: a partial SCT*-k'-Index may be queried below its threshold;
    # the sample then misses cliques in pruned subtrees, but "most
    # k-cliques in the densest subgraph come from larger cliques"
    partial_approximation = not index.supports_k(k) and k >= 1
    engine = None
    if paths is None:
        enforce = not partial_approximation
        if opts.parallel is not None and opts.parallel.enabled:
            from ..parallel.engine import PathShardEngine

            candidate = PathShardEngine(index, opts.parallel, recorder=recorder)
            if candidate.has_chunks:
                engine = candidate
                paths = engine.path_view(k, enforce_support=enforce)
            else:
                candidate.close()
        if paths is None:
            paths = index.path_view(k, enforce_support=enforce)
    try:
        sampled = sample_k_cliques(
            paths, k, sample_size, rng, options=opts
        )
    except BudgetExhausted as exc:
        if recorder.enabled:
            recorder.counter("budget/exhausted")
            recorder.gauge("budget/reason", exc.reason)
            recorder.gauge("budget/stage", "sample/draw")
        return PartialResult(
            vertices=[],
            clique_count=0,
            k=k,
            algorithm="SCTL*-Sample",
            valid=False,
            reason=exc.reason,
            stage="sample/draw",
        )
    finally:
        # the engine only feeds the draw stage; stages 2-3 work on the
        # materialised sample
        if engine is not None:
            engine.close()
    if not sampled:
        return empty_result(k, "SCTL*-Sample")
    n = index.n_vertices

    # stage 2: weight refinement on the sampled subgraph
    exhausted: Optional[str] = None
    completed = 0
    with recorder.span("sample/refine"):
        weights = [0] * n
        engagement = [0] * n
        for clique in sampled:
            for v in clique:
                engagement[v] += 1
        sampled_vertices = sorted({v for c in sampled for v in c})
        rho_sample = Fraction(0)
        visited_total = 0
        for _ in range(iterations):
            if budget.active:
                exhausted = budget.exceeded()
                if exhausted:
                    break
            # snapshot whenever a real budget is threaded, not just when it
            # is already active: a cancel (signal, fault) can arm it mid-pass
            iter_weights = weights[:] if budget is not NULL_BUDGET else None
            iter_visited = visited_total
            threshold = (
                engagement_threshold(rho_sample)
                if use_reduction and rho_sample > 0
                else 0
            )
            new_engagement = [0] * n if use_reduction else engagement
            swept = 0
            for clique in sampled:
                swept += 1
                if budget.active and not swept % 4096:
                    exhausted = budget.exceeded()
                    if exhausted:
                        break
                if threshold and any(engagement[v] < threshold for v in clique):
                    continue
                u = min(clique, key=weights.__getitem__)
                weights[u] += 1
                visited_total += 1
                if use_reduction:
                    for v in clique:
                        new_engagement[v] += 1
            if exhausted:
                # roll the half-swept pass back to its entry state
                weights = iter_weights
                visited_total = iter_visited
                break
            engagement = new_engagement
            prefix = best_prefix_from_cliques(
                sampled, weights, restrict_to=sampled_vertices
            )
            if prefix.density_fraction > rho_sample:
                rho_sample = prefix.density_fraction
            completed += 1
            if budget.active:
                budget.tick()
        if recorder.enabled:
            recorder.counter("sample/clique_visits", visited_total)
            recorder.counter("sample/vertices", len(sampled_vertices))
            recorder.gauge("sample/sample_density", float(rho_sample))

    # stage 3: recovery of the true density through the index
    with recorder.span("sample/recover"):
        prefix = best_prefix_from_cliques(
            sampled, weights, restrict_to=sampled_vertices
        )
        chosen = sorted(prefix.vertices)
        if not chosen:
            if exhausted:
                return PartialResult(
                    vertices=[],
                    clique_count=0,
                    k=k,
                    algorithm="SCTL*-Sample",
                    valid=False,
                    reason=exhausted,
                    stage="sample/refine",
                )
            return empty_result(k, "SCTL*-Sample")
        true_count = index.count_in_subset(
            k, chosen, enforce_support=not partial_approximation
        )
        if recorder.enabled and chosen:
            recorder.gauge(
                "sample/recovered_density", true_count / len(chosen)
            )
    run_stats = {
        "sampled_cliques": len(sampled),
        "sampled_vertices": len(sampled_vertices),
        "sample_density": float(rho_sample),
        "clique_visits": visited_total,
        "weights": weights,
        "partial_index_approximation": partial_approximation,
    }
    if exhausted:
        if recorder.enabled:
            recorder.counter("budget/exhausted")
            recorder.gauge("budget/reason", exhausted)
            recorder.gauge("budget/stage", "sample/refine")
        return PartialResult(
            vertices=chosen,
            clique_count=true_count,
            k=k,
            algorithm="SCTL*-Sample",
            iterations=completed,
            stats=run_stats,
            reason=exhausted,
            stage="sample/refine",
        )
    return DensestSubgraphResult(
        vertices=chosen,
        clique_count=true_count,
        k=k,
        algorithm="SCTL*-Sample",
        iterations=iterations,
        stats=run_stats,
    )
