"""Incremental SCT*-Index maintenance: ``apply_updates`` and ``DirtyRegion``.

The SCT*-Index decomposes into per-root subtrees, one per degeneracy
position, and the expansion of root ``u`` reads only ``S = {u} | N+(u)``
of the ordered view (candidate sets start from ``out_bits`` and only ever
shrink).  An edge batch therefore localises: after re-deriving the
degeneracy order of the updated graph, any root whose out-neighbour
*vertex sequence* is unchanged — and whose ``S`` contains no updated
edge — must expand to exactly the same node sequence as before, so its
old column window is spliced into the new index verbatim with a constant
id offset (the same splicing trick
:func:`~repro.parallel.build.parallel_build` uses to merge worker
chunks).  Only the remaining *dirty* roots are re-expanded.

The splice works directly on the flat columns: ``vertex`` / ``label`` /
``depth`` / ``max_depth`` / ``subtree`` windows are position-independent
(raw ``memcpy``), while the CSR ``child_off`` / ``child_ids`` entries are
rebased by the constant offset.  No global finalisation pass runs, so
the cost of an update is proportional to the dirty region plus one
``O(n + m)`` peel — not to the index size.

Because the serial build is itself nothing but per-root expansions
concatenated in degeneracy order, the updated index is **byte-identical**
to a from-scratch :meth:`SCTIndex.build` of the updated graph — parity
is structural, not a best-effort approximation.

Two entry points:

* :func:`compute_update` — pure: returns a fresh index (and graph)
  inside a :class:`DirtyRegion`, leaving the input index untouched.
  This is what the service uses so in-flight queries keep reading the
  old object.
* :meth:`SCTIndex.apply_updates` — in-place convenience wrapper that
  rebinds the index's columns to the fresh ones.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import IndexBuildError, InvalidParameterError
from ..graph.cores import CoreDecomposition, core_decomposition
from ..graph.graph import Graph, iter_bits
from ..options import RunOptions
from ..resilience.budget import NULL_BUDGET
from .sct import (
    _BUILD_POLL_NODES,
    SCTIndex,
    _compute_max_depth,
    _compute_subtree_sizes,
    _csr_children,
    _expand_root_subtree,
)

__all__ = ["DirtyRegion", "apply_edge_updates", "compute_update"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class DirtyRegion:
    """Summary of one incremental update: what changed and what was kept.

    ``graph`` and ``index`` are the *updated* graph and SCT*-Index;
    ``dirty_vertices`` is the set of vertices appearing in any rebuilt
    root subtree (plus the updated edges' endpoints) — the invalidation
    scope the service uses to evict cached results.
    """

    graph: Graph
    index: SCTIndex
    inserts: Tuple[Edge, ...]
    deletes: Tuple[Edge, ...]
    n_roots: int
    dirty_roots: int
    reused_roots: int
    pruned_roots: int
    nodes_rebuilt: int
    nodes_reused: int
    dirty_vertices: FrozenSet[int] = field(default_factory=frozenset)

    @property
    def dirty_fraction(self) -> float:
        """Fraction of degeneracy positions whose subtree was rebuilt."""
        if not self.n_roots:
            return 0.0
        return self.dirty_roots / self.n_roots

    def intersects(self, vertices: Sequence[int]) -> bool:
        """Whether any of ``vertices`` lies in the dirty region."""
        dirty = self.dirty_vertices
        return any(v in dirty for v in vertices)

    def summary(self) -> Dict[str, object]:
        """JSON-safe digest for envelopes, logs and benches."""
        return {
            "inserts": len(self.inserts),
            "deletes": len(self.deletes),
            "n_roots": self.n_roots,
            "dirty_roots": self.dirty_roots,
            "reused_roots": self.reused_roots,
            "pruned_roots": self.pruned_roots,
            "dirty_fraction": round(self.dirty_fraction, 6),
            "nodes_rebuilt": self.nodes_rebuilt,
            "nodes_reused": self.nodes_reused,
            "dirty_vertex_count": len(self.dirty_vertices),
        }


@dataclass
class _UpdateView:
    """The slice of an ordered view that updates actually read.

    Compared to a full :class:`~repro.cliques.ordered_view.OrderedGraphView`
    this skips the (expensive, ``O(n * m / 64)``) full adjacency bitsets:
    the clean-root test needs only the out-neighbour sequences, and
    adjacency rows for dirty-root expansion are built lazily for the few
    positions the expansion can touch.  ``compute_update`` caches one of
    these on the index it returns, so a *sequence* of updates pays the
    peel once per step instead of twice.
    """

    n: int
    order: List[int]
    position: List[int]
    out_bits: List[int]
    core: List[int]  # core number by position


def _make_update_view(
    graph: Graph, decomp: Optional[CoreDecomposition] = None
) -> _UpdateView:
    """Peel ``graph`` and derive the out-neighbour bitsets by position."""
    if decomp is None:
        decomp = core_decomposition(graph)
    order = decomp.order
    position = decomp.position
    core_number = decomp.core_number
    n = graph.n
    out_bits = [0] * n
    nbytes = (n >> 3) + 1
    for i, u in enumerate(order):
        # bytearray assembly beats n-bit big-int shifts per neighbour
        buf = bytearray(nbytes)
        hot = False
        for w in graph.neighbors(u):
            p = position[w]
            if p > i:
                buf[p >> 3] |= 1 << (p & 7)
                hot = True
        if hot:
            out_bits[i] = int.from_bytes(buf, "little")
    return _UpdateView(
        n=n,
        order=order,
        position=position,
        out_bits=out_bits,
        core=[core_number[u] for u in order],
    )


_LANE_ONE = b"\x01" + b"\x00" * 7


def _shifted_lanes(view: memoryview, shift: int) -> bytes:
    """The int64 lanes of ``view`` with ``shift`` added to every lane.

    Node ids and CSR offsets fit in 63 bits and stay non-negative after
    the shift, so no carry (or borrow) ever crosses a lane boundary —
    adding ``shift`` to every lane is one big-int add of a replicated
    constant: three C-level passes over the window instead of a Python
    loop per node.  This is what keeps the splice cost a memcpy even
    when a window's id offset changes.
    """
    data = bytes(view)
    val = int.from_bytes(data, "little")
    rep = int.from_bytes(_LANE_ONE * (len(data) >> 3), "little")
    if shift >= 0:
        val += shift * rep
    else:
        val -= (-shift) * rep
    return val.to_bytes(len(data), "little")


def _adjacency_row(graph: Graph, position: List[int], u: int) -> int:
    """One full adjacency row of ``u`` in position space."""
    nbytes = (graph.n >> 3) + 1
    buf = bytearray(nbytes)
    for w in graph.neighbors(u):
        p = position[w]
        buf[p >> 3] |= 1 << (p & 7)
    return int.from_bytes(buf, "little")


def _normalize_edges(edges, n: int, kind: str) -> Tuple[Edge, ...]:
    """Validate an edge batch and normalise each pair to ``u < v``."""
    out: List[Edge] = []
    seen = set()
    for pair in edges:
        try:
            u, v = pair
            u, v = int(u), int(v)
        except (TypeError, ValueError):
            raise InvalidParameterError(
                f"{kind} entries must be (u, v) vertex pairs, got {pair!r}"
            )
        if u == v:
            raise InvalidParameterError(
                f"cannot {kind} a self-loop on vertex {u}"
            )
        if not (0 <= u < n and 0 <= v < n):
            raise InvalidParameterError(
                f"{kind} edge ({u}, {v}) out of range for n={n} "
                "(the vertex set is fixed; updates change edges only)"
            )
        edge = (u, v) if u < v else (v, u)
        if edge in seen:
            raise InvalidParameterError(
                f"duplicate {kind} of edge {edge} in one batch"
            )
        seen.add(edge)
        out.append(edge)
    return tuple(out)


def apply_edge_updates(
    graph: Graph, inserts=(), deletes=()
) -> Tuple[Graph, Tuple[Edge, ...], Tuple[Edge, ...]]:
    """The updated graph ``(E - deletes) | inserts``, strictly validated.

    Graphs are immutable, so this builds a new :class:`Graph` over the
    same vertex set (structurally shared with the input — only touched
    adjacency rows are copied).  Every delete must name an existing
    edge, every insert a missing one, and no edge may appear in both
    batches — silent no-ops would desynchronise the caller's idea of
    ``graph_version`` from the actual edge set.
    """
    n = graph.n
    ins = _normalize_edges(inserts, n, "insert")
    dels = _normalize_edges(deletes, n, "delete")
    both = set(ins) & set(dels)
    if both:
        raise InvalidParameterError(
            f"edge(s) {sorted(both)} appear in both inserts and deletes"
        )
    for edge in dels:
        if not graph.has_edge(*edge):
            raise InvalidParameterError(
                f"cannot delete edge {edge}: not present in the graph"
            )
    for edge in ins:
        if graph.has_edge(*edge):
            raise InvalidParameterError(
                f"cannot insert edge {edge}: already present in the graph"
            )
    return graph._with_edge_delta(ins, dels), ins, dels


def _old_root_windows(index: SCTIndex) -> Dict[int, Tuple[int, int]]:
    """Map each root's *vertex* to its ``(start, size)`` column window."""
    child_off = index._child_off
    vertex = index._vertex
    subtree = index._subtree
    windows: Dict[int, Tuple[int, int]] = {}
    for r in index._child_ids[child_off[0]:child_off[1]]:
        windows[vertex[r]] = (r, subtree[r])
    return windows


def compute_update(
    index: SCTIndex,
    graph: Graph,
    inserts=(),
    deletes=(),
    options: Optional[RunOptions] = None,
) -> DirtyRegion:
    """Incrementally rebuild ``index`` for ``graph`` plus an edge batch.

    ``index`` must be the SCT*-Index of ``graph`` (same threshold); the
    input objects are left untouched and a fresh graph + index come back
    inside the :class:`DirtyRegion`.  The new index is byte-identical to
    ``SCTIndex.build(new_graph, threshold=index.threshold)``.

    The run honours ``options.recorder`` (an ``index/update`` span
    observing the ``stage/index_update`` histogram, plus ``update/*``
    counters) and ``options.budget`` — polled per root and every few
    thousand expanded nodes; exhaustion raises
    :class:`~repro.errors.BudgetExhausted` with stage ``index/update``
    and leaves the inputs untouched, so the caller simply keeps the old
    index.  Checkpoint/resume and parallel are not supported for updates
    (a from-scratch ``build`` covers those).
    """
    opts = RunOptions.resolve(options)
    recorder = opts.recorder
    budget = opts.budget
    if index.n_vertices != graph.n:
        raise IndexBuildError(
            f"index covers {index.n_vertices} vertices but the graph has "
            f"{graph.n}; apply_updates needs the index of this exact graph"
        )
    with recorder.span("index/update", observe="stage/index_update"):
        new_graph, ins, dels = apply_edge_updates(graph, inserts, deletes)
        old_uv = getattr(index, "_update_view", None)
        if old_uv is None or old_uv.n != graph.n:
            old_uv = _make_update_view(graph)
        new_uv = _make_update_view(new_graph)
        n = new_uv.n
        windows = _old_root_windows(index)
        threshold = index.threshold
        out = new_uv.out_bits
        order = new_uv.order
        core = new_uv.core
        old_pos = old_uv.position
        old_order = old_uv.order
        old_out = old_uv.out_bits
        old_core = old_uv.core
        touched = ins + dels
        position = new_uv.position
        # updated edges as new-position pair masks: a root is dirtied by
        # an edge iff both endpoint positions land inside {i} | out[i]
        touched_masks = [
            (1 << position[a]) | (1 << position[b]) for a, b in touched
        ]
        # positions whose occupant vertex moved between the two orders;
        # a root whose position and whole out-row avoid these is clean
        # without walking its out-sequence
        unstable = 0
        if order != old_order:
            for p in range(n):
                if order[p] != old_order[p]:
                    unstable |= 1 << p

        def is_clean(i: int, u: int) -> bool:
            """Whether root ``u``'s expansion is provably unchanged.

            The expansion of a root reads only ``S = {u} | N+(u)``: the
            candidate vertices, their pairwise adjacency, and their
            *relative* degeneracy order (every bitset scan walks positions
            in increasing order, so only the order within ``S`` matters —
            a global position shift elsewhere is irrelevant).  The root is
            clean when the out-neighbour vertex sequence is identical in
            both views, no updated edge has both endpoints inside ``S``,
            and the threshold-pruning decision is unchanged.
            """
            oi = old_pos[u]
            out_new_i = out[i]
            out_old_i = old_out[oi]
            if threshold and (
                (core[i] + 1 < threshold) != (old_core[oi] + 1 < threshold)
            ):
                return False
            if not (
                oi == i
                and out_new_i == out_old_i
                and not (out_new_i & unstable)
            ):
                # slow path: lockstep walk comparing the two sequences
                # vertex by vertex (robust to any global position shift)
                if out_new_i.bit_count() != out_old_i.bit_count():
                    return False
                mo, mn = out_old_i, out_new_i
                while mn:
                    low_n = mn & -mn
                    mn ^= low_n
                    low_o = mo & -mo
                    mo ^= low_o
                    if (
                        order[low_n.bit_length() - 1]
                        != old_order[low_o.bit_length() - 1]
                    ):
                        return False
            if touched_masks:
                s_bits = out_new_i | (1 << i)
                for tm in touched_masks:
                    if (s_bits & tm) == tm:
                        return False
            return True

        nodes_since_poll = 0

        def poll() -> Optional[str]:
            nonlocal nodes_since_poll
            if not budget.active:
                return None
            nodes_since_poll += 1
            if nodes_since_poll >= _BUILD_POLL_NODES:
                nodes_since_poll = 0
                return budget.exceeded()
            return None

        def exhaust(reason: str):
            if recorder.enabled:
                recorder.counter("budget/exhausted")
                recorder.gauge("budget/reason", reason)
                recorder.gauge("budget/stage", "index/update")
            return budget.error(reason, stage="index/update")

        step_poll = None if budget is NULL_BUDGET else poll

        # ---- pass 1: classify every root, splice plan ------------------
        # segments[j] is ("c", start, size) for a clean reused window or
        # ("d", pos) for a root awaiting re-expansion in pass 2.
        segments: List[tuple] = []
        dirty_positions: List[int] = []
        dirty_roots = 0
        reused_roots = 0
        pruned_roots = 0
        nodes_reused = 0
        dirty_vertices = set()
        for a, b in touched:
            dirty_vertices.add(a)
            dirty_vertices.add(b)
        for i in range(n):
            if budget.active:
                reason = budget.exceeded()
                if reason:
                    raise exhaust(reason)
            clean = is_clean(i, order[i])
            if threshold and (
                out[i].bit_count() + 1 < threshold or core[i] + 1 < threshold
            ):
                # a clean root's pruning inputs are unchanged, so it was
                # pruned in the old build too; a dirty pruned root simply
                # contributes nothing to the new index
                pruned_roots += 1
                if not clean:
                    dirty_roots += 1
                    dirty_vertices.add(order[i])
                continue
            if clean:
                window = windows.get(order[i])
                if window is None:
                    raise IndexBuildError(
                        f"index is missing the subtree of vertex "
                        f"{order[i]}; apply_updates needs the index built "
                        "from this exact graph and threshold"
                    )
                segments.append(("c",) + window)
                reused_roots += 1
                nodes_reused += window[1]
                continue
            dirty_roots += 1
            dirty_vertices.add(order[i])
            for p in iter_bits(out[i]):
                dirty_vertices.add(order[p])
            dirty_positions.append(i)
            segments.append(("d", i))

        # ---- pass 2: re-expand the dirty roots -------------------------
        # Adjacency rows in the *new* position space, built only for the
        # positions an expansion can read: candidate sets start from
        # out[i] and only ever shrink, so S = {i} | bits(out[i]) per root.
        adj: List[int] = [0] * n
        needed = set()
        for i in dirty_positions:
            needed.add(i)
            mask = out[i]
            while mask:
                low = mask & -mask
                needed.add(low.bit_length() - 1)
                mask ^= low
        for p in needed:
            adj[p] = _adjacency_row(new_graph, position, order[p])

        nodes_rebuilt = 0
        rebuilt: Dict[int, tuple] = {}
        for i in dirty_positions:
            if budget.active:
                reason = budget.exceeded()
                if reason:
                    raise exhaust(reason)
            # local arrays with their own virtual-root stub, exactly like
            # a parallel-build worker chunk; spliced with a constant
            # offset in pass 3
            lv: List[int] = [-1]
            ll: List[int] = [-1]
            lp: List[int] = [0]
            ld: List[int] = [0]
            reason = _expand_root_subtree(
                lv, ll, lp, ld, adj, order, i, out[i], 0, step_poll
            )
            if reason:
                raise exhaust(reason)
            nodes_rebuilt += len(lv) - 1
            lmd = _compute_max_depth(lp, ld)
            lst = _compute_subtree_sizes(lp)
            lco, lci = _csr_children(lp)
            rebuilt[i] = (lv, ll, ld, lmd, lst, lco, lci)

        # ---- pass 3: assemble the flat columns -------------------------
        sizes = [
            seg[2] if seg[0] == "c" else len(rebuilt[seg[1]][0]) - 1
            for seg in segments
        ]
        n_nodes = 1 + sum(sizes)

        vertex = array("q", (-1,))
        label = array("q", (-1,))
        depth = array("q", (0,))
        max_depth = array("q", (0,))
        subtree = array("q", (n_nodes,))
        child_off = array("q", (0,))
        child_ids = array("q")
        # the virtual root's child list (one entry per kept root) comes
        # first in child_ids; root j's node id is 1 + the sizes before it
        start = 1
        for size in sizes:
            child_ids.append(start)
            start += size

        # Coalesce runs of clean windows that were adjacent in the old
        # index: their CSR blocks are contiguous and the id/offset shifts
        # are constant across the run, so a whole run splices with one
        # memcpy (or one lane-shift) per column instead of one per root.
        plan: List[tuple] = []
        md_starts: List[int] = []  # old window starts, for the root max
        for seg, size in zip(segments, sizes):
            if seg[0] == "c":
                a = seg[1]
                md_starts.append(a)
                if plan and plan[-1][0] == "c" and plan[-1][1] + plan[-1][2] == a:
                    plan[-1] = ("c", plan[-1][1], plan[-1][2] + size)
                else:
                    plan.append(("c", a, size))
            else:
                plan.append(seg)

        # byte-cast views of the old columns: array.frombytes only takes
        # byte buffers, so copies go through these with 8-byte strides
        bv_vertex = memoryview(index._vertex).cast("B")
        bv_label = memoryview(index._label).cast("B")
        bv_depth = memoryview(index._depth).cast("B")
        bv_max_depth = memoryview(index._max_depth).cast("B")
        bv_subtree = memoryview(index._subtree).cast("B")
        bv_child_off = memoryview(index._child_off).cast("B")
        bv_child_ids = memoryview(index._child_ids).cast("B")
        old_max_depth = index._max_depth
        old_child_off = index._child_off

        md_root = 0
        for a in md_starts:
            if old_max_depth[a] > md_root:
                md_root = old_max_depth[a]
        new_start = 1
        for seg in plan:
            ids_base = len(child_ids)
            if seg[0] == "c":
                a, size = seg[1], seg[2]
                b = a + size
                # position-independent columns: straight memcpy
                vertex.frombytes(bv_vertex[8 * a:8 * b])
                label.frombytes(bv_label[8 * a:8 * b])
                depth.frombytes(bv_depth[8 * a:8 * b])
                max_depth.frombytes(bv_max_depth[8 * a:8 * b])
                subtree.frombytes(bv_subtree[8 * a:8 * b])
                # CSR entries: children of window nodes all lie inside the
                # window (they are subtree members), and their block in
                # child_ids is contiguous — rebase by constant offsets
                ca = old_child_off[a]
                cb = old_child_off[b]
                shift = ids_base - ca
                if shift == 0:
                    child_off.frombytes(bv_child_off[8 * a:8 * b])
                else:
                    child_off.frombytes(
                        _shifted_lanes(bv_child_off[8 * a:8 * b], shift)
                    )
                delta = new_start - a
                if delta == 0:
                    child_ids.frombytes(bv_child_ids[8 * ca:8 * cb])
                else:
                    child_ids.frombytes(
                        _shifted_lanes(bv_child_ids[8 * ca:8 * cb], delta)
                    )
            else:
                lv, ll, ld, lmd, lst, lco, lci = rebuilt[seg[1]]
                size = len(lv) - 1
                vertex.extend(lv[1:])
                label.extend(ll[1:])
                depth.extend(ld[1:])
                max_depth.extend(lmd[1:])
                subtree.extend(lst[1:])
                if lmd[1] > md_root:
                    md_root = lmd[1]
                # local id t maps to global id t - 1 + new_start; the
                # local stub's single child entry (the root) is dropped
                shift = ids_base - lco[1]
                child_off.extend([x + shift for x in lco[1:-1]])
                delta = new_start - 1
                child_ids.extend([x + delta for x in lci[1:]])
            new_start += size
        child_off.append(n_nodes - 1)
        max_depth[0] = md_root

        new_index = SCTIndex(
            n_vertices=new_graph.n,
            vertex=vertex,
            label=label,
            depth=depth,
            max_depth=max_depth,
            subtree=subtree,
            child_off=child_off,
            child_ids=child_ids,
            threshold=threshold,
        )
        # steady state: the next update's "old view" is this one's new view
        new_index._update_view = new_uv
        if recorder.enabled:
            recorder.counter("update/edges_inserted", len(ins))
            recorder.counter("update/edges_deleted", len(dels))
            recorder.counter("update/dirty_roots", dirty_roots)
            recorder.counter("update/reused_roots", reused_roots)
            recorder.counter("update/nodes_rebuilt", nodes_rebuilt)
            recorder.counter("update/nodes_reused", nodes_reused)
            recorder.gauge(
                "update/dirty_fraction",
                round(dirty_roots / n, 6) if n else 0.0,
            )
        return DirtyRegion(
            graph=new_graph,
            index=new_index,
            inserts=ins,
            deletes=dels,
            n_roots=n,
            dirty_roots=dirty_roots,
            reused_roots=reused_roots,
            pruned_roots=pruned_roots,
            nodes_rebuilt=nodes_rebuilt,
            nodes_reused=nodes_reused,
            dirty_vertices=frozenset(dirty_vertices),
        )
