"""Independent verification of densest-subgraph results.

``verify_result`` re-derives everything a :class:`DensestSubgraphResult`
claims using only KCList (no SCT*-Index, no flow) so that a user — or a
test — can certify any algorithm's output against an independent code
path.  For ``exact`` results it optionally re-checks optimality with the
min-cut oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from ..cliques.kclist import count_k_cliques, iter_k_cliques
from ..flow.densest import find_denser_subgraph
from ..graph.graph import Graph
from .density import DensestSubgraphResult

__all__ = ["VerificationReport", "verify_result"]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of verifying a result against the graph.

    ``ok`` is the conjunction of all individual checks; failed checks are
    listed in ``problems`` in human-readable form.
    """

    ok: bool
    problems: List[str]
    recounted_cliques: int
    claimed_cliques: int
    optimality_checked: bool

    def __bool__(self) -> bool:
        return self.ok


def verify_result(
    graph: Graph,
    result: DensestSubgraphResult,
    check_optimality: Optional[bool] = None,
) -> VerificationReport:
    """Re-derive and check every claim in ``result``.

    Checks performed:

    1. all reported vertices exist in the graph and are distinct;
    2. the reported ``clique_count`` matches an independent KCList count
       on the induced subgraph;
    3. for results flagged ``exact`` (and ``check_optimality`` not
       disabled), no subgraph of the input graph is denser — one min-cut
       over the full clique set.  Pass ``check_optimality=False`` to skip
       this (it enumerates every k-clique of the graph).

    Parameters default to checking optimality exactly when the result
    claims exactness.
    """
    problems: List[str] = []
    vertices = result.vertices
    if len(set(vertices)) != len(vertices):
        problems.append("vertex list contains duplicates")
    if any(v not in graph for v in vertices):
        problems.append("vertex list references ids outside the graph")

    recounted = 0
    if not problems and vertices:
        subgraph, _ = graph.induced_subgraph(vertices)
        recounted = count_k_cliques(subgraph, result.k)
        if recounted != result.clique_count:
            problems.append(
                f"clique_count mismatch: claimed {result.clique_count}, "
                f"recounted {recounted}"
            )
    elif not vertices and result.clique_count:
        problems.append("empty vertex list with non-zero clique_count")

    if check_optimality is None:
        check_optimality = result.exact
    optimality_checked = False
    if check_optimality and not problems:
        cliques = list(iter_k_cliques(graph, result.k))
        optimality_checked = True
        if cliques:
            density = (
                Fraction(result.clique_count, len(vertices))
                if vertices
                else Fraction(0)
            )
            denser = find_denser_subgraph(cliques, list(graph.vertices()), density)
            if denser is not None:
                problems.append(
                    f"result is not optimal: a subgraph on {len(denser)} "
                    "vertices is strictly denser"
                )
        elif vertices:
            problems.append("graph has no k-cliques but result is non-empty")

    return VerificationReport(
        ok=not problems,
        problems=problems,
        recounted_cliques=recounted,
        claimed_cliques=result.clique_count,
        optimality_checked=optimality_checked,
    )
