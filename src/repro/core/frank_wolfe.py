"""The Frank–Wolfe convex program for densest subgraph (§3.2).

The densest-subgraph convex program (Danisch–Chan–Sozio, extended to
k-cliques by Sun et al.) asks each k-clique to split one unit of weight
among its vertices so as to minimise the squared norm of the resulting
vertex loads ``r``:

    minimise  sum_v r(v)^2      where r(v) = sum_{C: v in C} alpha_{C,v},
    subject to alpha_C >= 0, sum_{v in C} alpha_{C,v} = 1.

At the optimum, ``max_v r(v)`` equals the maximum k-clique density, and
the level sets of ``r`` reveal the whole density decomposition.  The
Frank–Wolfe step for this objective is exactly the "give everything to
the currently lightest vertex" rule, averaged with step size
``2/(t+2)`` — which is why the integral KCL/SCTL updates approximate it.

This module is the reusable, resumable implementation behind KCL-Exact;
it is also exposed directly for convergence studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError

__all__ = ["FrankWolfeState", "frank_wolfe"]


@dataclass
class FrankWolfeState:
    """Resumable Frank–Wolfe state.

    Attributes
    ----------
    cliques:
        The hyperedges (k-cliques) the program runs over.
    alpha:
        ``alpha[i][j]`` — the weight clique ``i`` assigns to its ``j``-th
        member.  Rows sum to 1.
    weights:
        Vertex loads ``r`` implied by ``alpha``.
    rounds:
        Completed iterations (drives the diminishing step size).
    """

    cliques: Sequence[Tuple[int, ...]]
    alpha: List[List[float]]
    weights: List[float]
    rounds: int = 0
    load_history: List[float] = field(default_factory=list)

    @property
    def max_load(self) -> float:
        """``max_v r(v)`` — converges down to the optimal density."""
        return max(self.weights, default=0.0)


def frank_wolfe(
    cliques: Sequence[Tuple[int, ...]],
    n_vertices: int,
    iterations: int,
    state: Optional[FrankWolfeState] = None,
    track_history: bool = False,
) -> FrankWolfeState:
    """Run (or resume) Frank–Wolfe for ``iterations`` rounds.

    Parameters
    ----------
    cliques:
        The k-cliques; each must be non-empty and of uniform conceptual
        role (sizes may differ — the program only needs hyperedges).
    n_vertices:
        Size of the vertex universe (ids in ``0 .. n_vertices-1``).
    iterations:
        Additional rounds to run.
    state:
        Resume from a previous state (its ``cliques`` are reused and the
        step-size schedule continues where it left off).
    track_history:
        Record ``max_load`` after every round in ``state.load_history``.
    """
    if iterations < 0:
        raise InvalidParameterError(f"iterations must be >= 0, got {iterations}")
    if state is None:
        alpha = []
        weights = [0.0] * n_vertices
        for clique in cliques:
            share = 1.0 / len(clique)
            alpha.append([share] * len(clique))
            for v in clique:
                weights[v] += share
        state = FrankWolfeState(cliques=cliques, alpha=alpha, weights=weights)
    weights = state.weights
    for _ in range(iterations):
        state.rounds += 1
        gamma = 2.0 / (state.rounds + 2.0)
        keep = 1.0 - gamma
        for ci, clique in enumerate(state.cliques):
            split = state.alpha[ci]
            best_pos = 0
            best_weight = weights[clique[0]]
            for pos in range(1, len(clique)):
                w = weights[clique[pos]]
                if w < best_weight:
                    best_weight, best_pos = w, pos
            for pos in range(len(clique)):
                old = split[pos]
                new = keep * old + (gamma if pos == best_pos else 0.0)
                split[pos] = new
                weights[clique[pos]] += new - old
        if track_history:
            state.load_history.append(state.max_load)
    return state
