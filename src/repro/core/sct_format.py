"""On-disk formats of the SCT*-Index (see ``docs/index-format.md``).

Two formats share the same first line — a JSON header whose ``format``
field names the version — so any reader can cheaply identify a file it
cannot parse and fail with a precise error instead of a decode traceback:

* **v1** — JSON header line, then one text line per tree node
  (``vertex label max_depth n_children child_ids...``).  Portable and
  diff-able; parsing is linear in the node count.
* **v2** — JSON header line padded with spaces to an 8-byte boundary,
  then the flat index columns as raw little-endian ``int64`` sections in
  the order of :data:`COLUMNS`.  Loading is an ``mmap`` plus a
  ``memoryview.cast("q")`` per column: no parsing, no copying, and the
  same bytes can back any number of reader processes.

The column semantics (pre-order node ids, subtree windows, CSR child
ranges) are owned by :class:`~repro.core.sct.SCTIndex`; this module only
moves the columns between memory and disk.
"""

from __future__ import annotations

import json
import mmap
import os
import sys
from array import array
from typing import Any, Dict, Sequence, Tuple

from ..errors import IndexBuildError

__all__ = [
    "COLUMNS",
    "FORMAT_V1",
    "FORMAT_V2",
    "SUPPORTED_FORMATS",
    "ITEMSIZE",
    "column_lengths",
    "peek_header",
    "read_index",
    "write_index",
]

FORMAT_V1 = 1
FORMAT_V2 = 2
SUPPORTED_FORMATS = (FORMAT_V1, FORMAT_V2)

# every column is a flat signed 64-bit little-endian integer section
ITEMSIZE = 8
_ENDIAN = "little"

# column order inside the binary section of a v2 file
COLUMNS = (
    "vertex",
    "label",
    "depth",
    "max_depth",
    "subtree",
    "child_off",
    "child_ids",
)


def column_lengths(n_nodes: int) -> Dict[str, int]:
    """Entry count of every column for an ``n_nodes``-node tree.

    ``child_off`` carries one extra CSR sentinel; ``child_ids`` holds one
    entry per non-root node (every node except the virtual root is the
    child of exactly one node).
    """
    return {
        "vertex": n_nodes,
        "label": n_nodes,
        "depth": n_nodes,
        "max_depth": n_nodes,
        "subtree": n_nodes,
        "child_off": n_nodes + 1,
        "child_ids": n_nodes - 1,
    }


def _parse_header(line: bytes, path) -> Dict[str, Any]:
    """Decode the first line of an index file into its JSON header."""
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IndexBuildError(f"malformed index file {path!s}: {exc}") from exc
    if not isinstance(header, dict):
        raise IndexBuildError(
            f"malformed index file {path!s}: header is not a JSON object"
        )
    return header


def peek_header(path) -> Dict[str, Any]:
    """Read just the JSON header of an index file, any format.

    The header line is read in *binary* mode so a v2 file's binary
    section can never trip a text decoder before the version check runs.
    """
    with open(path, "rb") as handle:
        first = handle.readline()
    return _parse_header(first, path)


def require_format(header: Dict[str, Any], expected: int, path) -> None:
    """Fail with a version-naming error unless ``header`` is ``expected``."""
    found = header.get("format")
    if found != expected:
        supported = ", ".join(str(v) for v in SUPPORTED_FORMATS)
        raise IndexBuildError(
            f"index file {path!s} is format {found!r}, but this reader "
            f"handles format {expected} (supported formats: {supported}; "
            "SCTIndex.load dispatches on the header automatically)"
        )


def _as_native_q(column: Sequence[int]) -> array:
    """``column`` as a native-endian ``array('q')`` (zero-copy when it is one)."""
    if isinstance(column, array) and column.typecode == "q":
        return column
    return array("q", column)


def write_index(
    handle,
    n_vertices: int,
    n_nodes: int,
    threshold: int,
    columns: Dict[str, Sequence[int]],
) -> None:
    """Serialise a v2 index onto an open *binary* handle.

    The header line is padded with spaces so the binary section starts on
    an 8-byte boundary — readers can then cast the mapped file directly
    without re-aligning.
    """
    lengths = column_lengths(n_nodes)
    header = {
        "format": FORMAT_V2,
        "n_vertices": n_vertices,
        "n_nodes": n_nodes,
        "threshold": threshold,
        "itemsize": ITEMSIZE,
        "endian": _ENDIAN,
        "columns": list(COLUMNS),
    }
    line = json.dumps(header)
    pad = -(len(line) + 1) % ITEMSIZE
    handle.write((line + " " * pad + "\n").encode("utf-8"))
    for name in COLUMNS:
        column = columns[name]
        if len(column) != lengths[name]:
            raise IndexBuildError(
                f"column {name!r} has {len(column)} entries, "
                f"expected {lengths[name]} for {n_nodes} nodes"
            )
        data = _as_native_q(column)
        if sys.byteorder != _ENDIAN:
            data = array("q", data)
            data.byteswap()
        handle.write(data.tobytes())


def read_index(path) -> Tuple[Dict[str, Any], Dict[str, Sequence[int]], mmap.mmap]:
    """Map a v2 index file into memory.

    Returns ``(header, columns, mapping)``: the parsed header, one
    ``memoryview("q")`` per column sliced straight out of the mapping
    (zero-copy on little-endian hosts), and the ``mmap`` object that must
    outlive the views.  Structural errors — wrong version, unknown column
    layout, size mismatch — raise :class:`~repro.errors.IndexBuildError`.
    """
    with open(path, "rb") as handle:
        first = handle.readline()
        header = _parse_header(first, path)
        require_format(header, FORMAT_V2, path)
        try:
            n_nodes = int(header["n_nodes"])
            int(header["n_vertices"])
            int(header["threshold"])
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexBuildError(
                f"malformed index file {path!s}: bad header field ({exc})"
            ) from exc
        if n_nodes < 1:
            raise IndexBuildError(
                f"malformed index file {path!s}: n_nodes must be >= 1"
            )
        if header.get("itemsize", ITEMSIZE) != ITEMSIZE:
            raise IndexBuildError(
                f"index file {path!s} uses itemsize "
                f"{header.get('itemsize')!r}; only {ITEMSIZE} is supported"
            )
        endian = header.get("endian", _ENDIAN)
        if endian not in ("little", "big"):
            raise IndexBuildError(
                f"index file {path!s} declares unknown endianness {endian!r}"
            )
        declared = header.get("columns", list(COLUMNS))
        if list(declared) != list(COLUMNS):
            raise IndexBuildError(
                f"index file {path!s} declares column layout {declared!r}; "
                f"this reader expects {list(COLUMNS)!r}"
            )
        lengths = column_lengths(n_nodes)
        expected = len(first) + ITEMSIZE * sum(lengths.values())
        actual = os.fstat(handle.fileno()).st_size
        if actual != expected:
            raise IndexBuildError(
                f"index file {path!s} is truncated or oversized: "
                f"{actual} bytes on disk, {expected} expected for "
                f"{n_nodes} nodes"
            )
        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    view = memoryview(mapping)
    columns: Dict[str, Sequence[int]] = {}
    offset = len(first)
    for name in COLUMNS:
        nbytes = ITEMSIZE * lengths[name]
        chunk = view[offset : offset + nbytes]
        if endian == sys.byteorder:
            columns[name] = chunk.cast("q")
        else:  # foreign-endian file: one copy + swap, still a valid load
            swapped = array("q")
            swapped.frombytes(chunk.tobytes())
            swapped.byteswap()
            columns[name] = swapped
        offset += nbytes
    return header, columns, mapping
