"""The method registry behind the :func:`repro.densest_subgraph` facade.

The facade historically dispatched on a hand-written ``if name == ...``
ladder.  This module replaces it with a first-class registry:

* every built-in algorithm is a :class:`MethodSpec` — a canonical name,
  an adapter with one uniform call signature, its aliases and whether it
  needs an SCT*-Index;
* :func:`available_methods` lists the canonical names (the facade's
  error messages and the CLI help are generated from it);
* :func:`register_method` lets downstream code plug in new algorithms
  that the facade (and anything built on it) picks up by name.

Name matching is forgiving: lookups are case-insensitive, ignore
surrounding/internal whitespace and treat ``_`` as ``-``, and each
method may carry spelled-out aliases (``"sctl-star"`` for ``"sctl*"``).

Adapter signature
-----------------
Every registered callable is invoked as::

    fn(graph, k, index=..., iterations=..., sample_size=..., seed=...,
       options=...)

with keyword-only arguments after ``k``.  ``index`` is a pre-built
:class:`~repro.core.sct.SCTIndex` when ``needs_index`` is set (the
facade builds it on demand), else whatever the caller passed (usually
``None``).  ``options`` is an always-resolved
:class:`~repro.options.RunOptions`.  Adapters for algorithms that take
fewer knobs simply drop the ones they do not use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .baselines import (
    core_app,
    core_exact,
    greedy_peeling,
    kcl,
    kcl_exact,
    kcl_sample,
)
from .core import (
    sctl,
    sctl_plus,
    sctl_star,
    sctl_star_exact,
    sctl_star_sample,
)
from .errors import InvalidParameterError

__all__ = [
    "MethodSpec",
    "available_methods",
    "get_method",
    "methods_supporting",
    "normalize_method_name",
    "register_method",
]


@dataclass(frozen=True)
class MethodSpec:
    """One algorithm the facade can dispatch to.

    The ``supports_*`` capability flags describe what the adapter
    actually honours, so callers can be rejected up front with a
    lists-valid-names error instead of having a knob silently ignored
    (or failing mid-run):

    * ``supports_update`` — the method re-queries an incrementally
      updated SCT*-Index and accepts ``warm_start=`` re-refinement
      (``POST /v1/update`` validates against this);
    * ``supports_parallel`` — the method shards across a worker pool
      when ``parallel=`` is given;
    * ``supports_budget`` — the method polls a
      :class:`~repro.resilience.RunBudget` and degrades to partials.
    """

    name: str
    fn: Callable
    aliases: Tuple[str, ...] = ()
    needs_index: bool = False
    description: str = ""
    supports_update: bool = False
    supports_parallel: bool = False
    supports_budget: bool = False

    def __call__(self, graph, k, **kwargs):
        return self.fn(graph, k, **kwargs)

    def capabilities(self) -> Dict[str, bool]:
        """The capability flags as a JSON-safe dict."""
        return {
            "needs_index": self.needs_index,
            "supports_update": self.supports_update,
            "supports_parallel": self.supports_parallel,
            "supports_budget": self.supports_budget,
        }


_REGISTRY: Dict[str, MethodSpec] = {}
_ALIASES: Dict[str, str] = {}  # normalised alias -> canonical name


def normalize_method_name(name: str) -> str:
    """Canonical lookup key: lowered, whitespace dropped, ``_`` -> ``-``."""
    if not isinstance(name, str):
        raise InvalidParameterError(
            f"method must be a string, got {type(name).__name__}"
        )
    return "".join(name.split()).lower().replace("_", "-")


def register_method(
    name: str,
    fn: Callable,
    aliases: Tuple[str, ...] = (),
    needs_index: bool = False,
    description: str = "",
    supports_update: bool = False,
    supports_parallel: bool = False,
    supports_budget: bool = False,
    overwrite: bool = False,
) -> MethodSpec:
    """Register ``fn`` under ``name`` (plus ``aliases``) for the facade.

    ``fn`` must follow the adapter signature documented in the module
    docstring.  Re-registering an existing name or alias raises
    :class:`~repro.errors.InvalidParameterError` unless ``overwrite`` is
    set (aliases of the replaced method are retired with it).
    """
    if not callable(fn):
        raise InvalidParameterError(f"method {name!r} must be callable")
    key = normalize_method_name(name)
    if not key:
        raise InvalidParameterError("method name must be non-empty")
    alias_keys = tuple(normalize_method_name(a) for a in aliases)
    taken = {
        k for k in (key, *alias_keys)
        if k in _REGISTRY or k in _ALIASES
    }
    if taken and not overwrite:
        raise InvalidParameterError(
            f"method name(s) already registered: {', '.join(sorted(taken))}; "
            "pass overwrite=True to replace"
        )
    clashing = {
        k for k in alias_keys
        if _canonical(k) not in (None, key)
    } | ({key} if _ALIASES.get(key) else set())
    if clashing and overwrite:
        raise InvalidParameterError(
            "name(s) already belong to a different method: "
            f"{', '.join(sorted(clashing))}"
        )
    if key in _REGISTRY:
        # retire the old spec's aliases before re-pointing the name
        for alias, target in list(_ALIASES.items()):
            if target == key:
                del _ALIASES[alias]
    spec = MethodSpec(
        name=key,
        fn=fn,
        aliases=alias_keys,
        needs_index=needs_index,
        description=description,
        supports_update=supports_update,
        supports_parallel=supports_parallel,
        supports_budget=supports_budget,
    )
    _REGISTRY[key] = spec
    for alias in alias_keys:
        _ALIASES[alias] = key
    return spec


def _canonical(key: str) -> Optional[str]:
    if key in _REGISTRY:
        return key
    return _ALIASES.get(key)


def available_methods(detail: bool = False):
    """Canonical method names the facade accepts, sorted.

    With ``detail=True`` each entry is a dict carrying the method's
    ``description``, ``aliases`` and capability flags (``needs_index``,
    ``supports_update``, ``supports_parallel``, ``supports_budget``) —
    the machine-readable form the service and CLI help render from.
    """
    if not detail:
        return sorted(_REGISTRY)
    return [
        dict(
            name=name,
            description=spec.description,
            aliases=list(spec.aliases),
            **spec.capabilities(),
        )
        for name, spec in sorted(_REGISTRY.items())
    ]


def methods_supporting(capability: str) -> List[str]:
    """Canonical names of methods whose ``supports_<capability>`` is set.

    ``capability`` is ``"update"`` / ``"parallel"`` / ``"budget"``;
    anything else raises :class:`~repro.errors.InvalidParameterError`.
    """
    attr = f"supports_{capability}"
    if capability not in ("update", "parallel", "budget"):
        raise InvalidParameterError(
            f"unknown capability {capability!r}; expected one of: "
            "update, parallel, budget"
        )
    return sorted(
        name for name, spec in _REGISTRY.items() if getattr(spec, attr)
    )


def get_method(name: str) -> MethodSpec:
    """Resolve a (possibly aliased, oddly-cased) name to its spec."""
    key = normalize_method_name(name)
    canonical = _canonical(key)
    if canonical is None:
        raise InvalidParameterError(
            f"unknown method {name!r}; expected one of: "
            + ", ".join(available_methods())
        )
    return _REGISTRY[canonical]


# ---------------------------------------------------------------------------
# built-in methods


def _adapt_sctl(graph, k, index=None, iterations=10, sample_size=None,
                seed=0, options=None):
    return sctl(index, k, iterations=iterations, options=options)


def _adapt_sctl_plus(graph, k, index=None, iterations=10, sample_size=None,
                     seed=0, options=None):
    return sctl_plus(index, k, iterations=iterations, graph=graph,
                     options=options)


def _adapt_sctl_star(graph, k, index=None, iterations=10, sample_size=None,
                     seed=0, options=None):
    return sctl_star(index, k, iterations=iterations, graph=graph,
                     options=options)


def _adapt_sctl_star_sample(graph, k, index=None, iterations=10,
                            sample_size=None, seed=0, options=None):
    return sctl_star_sample(
        index, k, sample_size=sample_size, iterations=iterations, seed=seed,
        options=options,
    )


def _adapt_sctl_star_exact(graph, k, index=None, iterations=10,
                           sample_size=None, seed=0, options=None):
    return sctl_star_exact(
        graph, k, index=index, sample_size=sample_size,
        iterations=iterations, seed=seed, options=options,
    )


def _adapt_kcl(graph, k, index=None, iterations=10, sample_size=None,
               seed=0, options=None):
    return kcl(graph, k, iterations=iterations, options=options)


def _adapt_kcl_sample(graph, k, index=None, iterations=10, sample_size=None,
                      seed=0, options=None):
    return kcl_sample(graph, k, sample_size=sample_size,
                      iterations=iterations, seed=seed, options=options)


def _adapt_kcl_exact(graph, k, index=None, iterations=10, sample_size=None,
                     seed=0, options=None):
    return kcl_exact(graph, k, initial_iterations=iterations, options=options)


def _adapt_core_app(graph, k, index=None, iterations=10, sample_size=None,
                    seed=0, options=None):
    return core_app(graph, k, options=options)


def _adapt_core_exact(graph, k, index=None, iterations=10, sample_size=None,
                      seed=0, options=None):
    return core_exact(graph, k, options=options)


def _adapt_peel(graph, k, index=None, iterations=10, sample_size=None,
                seed=0, options=None):
    return greedy_peeling(graph, k, options=options)


register_method(
    "sctl", _adapt_sctl, needs_index=True,
    supports_update=True, supports_parallel=True, supports_budget=True,
    description="Index-driven weight refinement (Algorithm 2).",
)
register_method(
    "sctl+", _adapt_sctl_plus, aliases=("sctl-plus",), needs_index=True,
    supports_update=True, supports_parallel=True, supports_budget=True,
    description="SCTL with the clique-connectivity reduction.",
)
register_method(
    "sctl*", _adapt_sctl_star, aliases=("sctl-star",), needs_index=True,
    supports_update=True, supports_parallel=True, supports_budget=True,
    description="SCTL with both reductions and batch updates (Algorithm 6).",
)
register_method(
    "sctl*-sample", _adapt_sctl_star_sample,
    aliases=("sctl-star-sample",), needs_index=True,
    supports_parallel=True, supports_budget=True,
    description="SCTL* on an index-drawn uniform clique sample.",
)
register_method(
    "sctl*-exact", _adapt_sctl_star_exact,
    aliases=("sctl-star-exact",), needs_index=True,
    supports_parallel=True, supports_budget=True,
    description="Sampling-warm-started flow-certified exact solver "
                "(Algorithm 7).",
)
register_method(
    "kcl", _adapt_kcl,
    description="KClist++ refinement baseline, re-enumerates per round.",
)
register_method(
    "kcl-sample", _adapt_kcl_sample,
    description="KCL on a reservoir sample of k-cliques.",
)
register_method(
    "kcl-exact", _adapt_kcl_exact,
    description="Frank-Wolfe exact baseline with stability checks.",
)
register_method(
    "coreapp", _adapt_core_app, aliases=("core-app",),
    description="(k'_max, Psi)-core 1/k approximation.",
)
register_method(
    "coreexact", _adapt_core_exact, aliases=("core-exact",),
    description="Core-reduced per-component exact baseline.",
)
register_method(
    "peel", _adapt_peel, aliases=("peeling", "greedy-peeling"),
    description="Minimum-engagement greedy peel (1/k approximation).",
)
