"""The path-shard engine: pooled sweeps over contiguous root ranges.

Sharding unit
-------------
Node ids in an :class:`~repro.core.SCTIndex` are DFS pre-order, so each
child of the virtual root owns one contiguous id window ``[r, r +
subtree[r])`` and the root children themselves appear in seed
(degeneracy) order.  A *chunk* is a contiguous range ``[lo, hi)`` of
root-child positions; the pruned DFS of ``iter_paths`` restricted to a
chunk yields exactly the serial paths of that range, and concatenating
chunk results in chunk order reproduces the full serial path sequence.
Every deterministic guarantee of :mod:`repro.parallel` reduces to this
one property.  Chunk sizes come straight off the ``subtree`` column —
exact node counts, no contiguity heuristic.

Worker model
------------
Workers are plain ``multiprocessing.Pool`` processes.  The index's flat
columns are broadcast once per pool through one
``multiprocessing.shared_memory`` block: the initializer argument is a
tiny layout tuple (block name + per-column offsets), and each worker
maps the block and casts views — no per-worker pickling of the index,
under ``spawn`` just as under ``fork``.  Tasks carry only chunk bounds,
and ``imap`` streams results back in submission order.  Workers never
see the caller's budget: the parent polls between chunk results, so
cancellation latency is one chunk and exception-pickling subtleties
stay out of the pool.  With an enabled parent recorder each worker runs
its own :class:`~repro.obs.MetricsRecorder` and ships the snapshot home
alongside the result, where it is absorbed into the parent trace.
"""

from __future__ import annotations

import atexit
import os
import signal
import time
import weakref
from math import comb
from multiprocessing import TimeoutError as _PoolTimeout
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import WorkerCrashError
from ..obs import NULL_RECORDER, Recorder
from .config import ParallelConfig

# itemsize of every index column (importing repro.core here would be
# circular; the value is pinned by the v2 format, see core/sct_format.py)
ITEMSIZE = 8

__all__ = ["PathShardEngine", "ParallelPathView"]

# per-process worker state, populated by the pool initializer
_WORKER_STATE: Dict[str, object] = {}

# crash-detection cadence: poll the ordered imap at this interval so a
# lost task (a SIGKILLed worker takes its chunk with it and Pool never
# resubmits) cannot hang the sweep; with worker recycling enabled a pid
# leaving the pool is routine, so only a pid change *plus* this long
# with no results counts as a crash
_CRASH_POLL_S = 0.2
_CRASH_GRACE_S = 5.0

# chaos hook: when this env var names a marker file, a worker picking up
# a task atomically claims the file and SIGKILLs itself (see
# _maybe_inject_worker_crash) — how scripts/chaos_load.py and the crash
# tests create real dead workers deterministically
_FAULT_ENV = "REPRO_FAULT_WORKER_KILL"

# every live broadcast block this process owns, released at interpreter
# exit as a second line of defence behind each engine's finalizer — an
# abnormal teardown must never orphan a /dev/shm segment
_LIVE_SHM: Dict[str, shared_memory.SharedMemory] = {}
_ATEXIT_ARMED = False


def _track_shm(shm: shared_memory.SharedMemory) -> None:
    global _ATEXIT_ARMED
    _LIVE_SHM[shm.name] = shm
    if not _ATEXIT_ARMED:
        atexit.register(_release_all_shm)
        _ATEXIT_ARMED = True


def _release_all_shm() -> None:
    for shm in list(_LIVE_SHM.values()):
        _release_shm(shm)


def _share_index(index) -> Tuple[shared_memory.SharedMemory, Tuple]:
    """Copy the index's columns into one shared-memory block.

    Returns ``(shm, meta)``: the owning block (the caller must eventually
    ``close()`` and ``unlink()`` it) and the broadcast metadata — block
    name, scalars, and per-column ``(name, byte offset, entry count)``
    triples.  ``meta`` pickles to a few hundred bytes no matter how large
    the index is; the columns themselves cross the process boundary
    exactly once, through the kernel's shared mapping.
    """
    columns = index._columns()
    layout: List[Tuple[str, int, int]] = []
    offset = 0
    for name in index._COLUMN_ORDER:
        length = len(columns[name])
        layout.append((name, offset, length))
        offset += ITEMSIZE * length
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    buf = shm.buf
    for name, off, length in layout:
        nbytes = ITEMSIZE * length
        buf[off:off + nbytes] = memoryview(columns[name]).cast("B")[:nbytes]
    meta = (shm.name, index.n_vertices, index.threshold, tuple(layout))
    return shm, meta


def _attach_index(meta):
    """Reconstruct a zero-copy :class:`SCTIndex` from broadcast metadata.

    Returns ``(index, shm)``; the caller must keep ``shm`` alive for as
    long as the index is used (its columns are views into the mapping).
    """
    from ..core.sct import SCTIndex

    name, n_vertices, threshold, layout = meta
    try:
        # 3.13+: opt out of resource tracking on attach — the parent owns
        # the block's lifetime
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        shm = shared_memory.SharedMemory(name=name)
        try:
            # 3.10–3.12 register attached blocks with the resource
            # tracker, which would unlink the parent's block when this
            # process exits (bpo-39959); undo the registration
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    view = memoryview(shm.buf)
    columns = {
        col: view[off:off + ITEMSIZE * length].cast("q")
        for col, off, length in layout
    }
    index = SCTIndex._from_columns(
        n_vertices=n_vertices, threshold=threshold, columns=columns, source=shm
    )
    return index, shm


def _init_sweep_worker(meta, record: bool, request_id=None) -> None:
    index, shm = _attach_index(meta)
    _WORKER_STATE["index"] = index
    _WORKER_STATE["shm"] = shm  # keepalive: columns are views into it
    _WORKER_STATE["record"] = record
    _WORKER_STATE["request_id"] = request_id


def _op_paths(index, lo, hi, k, enforce_support, payload):
    return [
        (path.holds, path.pivots)
        for path in index.iter_paths(
            k, enforce_support=enforce_support, _root_slice=(lo, hi)
        )
    ]


def _op_count(index, lo, hi, k, enforce_support, payload):
    n_paths = 0
    n_cliques = 0
    for path in index.iter_paths(
        k, enforce_support=enforce_support, _root_slice=(lo, hi)
    ):
        n_paths += 1
        n_cliques += path.clique_count(k)
    return n_paths, n_cliques


def _op_vertex_counts(index, lo, hi, k, enforce_support, payload):
    counts: Dict[int, int] = {}
    for path in index.iter_paths(
        k, enforce_support=enforce_support, _root_slice=(lo, hi)
    ):
        total = path.clique_count(k)
        if not total:
            continue
        for v in path.holds:
            counts[v] = counts.get(v, 0) + total
        with_pivot = path.pivot_engagement(k)
        if with_pivot:
            for v in path.pivots:
                counts[v] = counts.get(v, 0) + with_pivot
    return counts


def _op_refine(index, lo, hi, k, enforce_support, payload):
    """Phase A of one SCTL* refinement sweep, over one chunk.

    Replicates the serial per-path filtering exactly: connectivity bound
    (``bound_ok`` indexed by the path's first hold), engagement filter
    (``in_scope``), then Lemma-2 counting.  Weight updates are *not*
    applied here — order matters for byte-parity, so the parent applies
    them over the merged, ordered stream of survivors (phase B).
    ``payload=(None, None)`` is the no-reductions mode: every path
    survives with its raw holds/pivots.
    """
    in_scope, bound_ok = payload
    surviving: List[Tuple[Tuple[int, ...], Tuple[int, ...], int]] = []
    engagement_delta: Dict[int, int] = {}
    n_paths = 0
    pruned_connectivity = 0
    pruned_engagement = 0
    pivots_dropped = 0
    for path in index.iter_paths(
        k, enforce_support=enforce_support, _root_slice=(lo, hi)
    ):
        n_paths += 1
        if in_scope is None:
            surviving.append((path.holds, path.pivots, path.clique_count(k)))
            continue
        if not bound_ok[path.holds[0]]:
            pruned_connectivity += 1
            continue
        holds = [v for v in path.holds if in_scope[v]]
        if len(holds) != len(path.holds):
            pruned_engagement += 1
            continue
        pivots = [v for v in path.pivots if in_scope[v]]
        need = k - len(holds)
        if need < 0 or need > len(pivots):
            pruned_engagement += 1
            continue
        pivots_dropped += len(path.pivots) - len(pivots)
        count = comb(len(pivots), need)
        for v in holds:
            engagement_delta[v] = engagement_delta.get(v, 0) + count
        if need >= 1:
            pivot_count = comb(len(pivots) - 1, need - 1)
            if pivot_count:
                for v in pivots:
                    engagement_delta[v] = engagement_delta.get(v, 0) + pivot_count
        surviving.append((tuple(holds), tuple(pivots), count))
    return (
        surviving,
        engagement_delta,
        (n_paths, pruned_connectivity, pruned_engagement, pivots_dropped),
    )


_SWEEP_OPS = {
    "paths": _op_paths,
    "count": _op_count,
    "vertex_counts": _op_vertex_counts,
    "refine": _op_refine,
}


def _maybe_inject_worker_crash() -> None:
    """Die by SIGKILL if the chaos marker file grants this worker a crash.

    The marker (path in ``REPRO_FAULT_WORKER_KILL``) holds a decimal
    count of crashes to inject.  A worker claims it by atomic rename —
    exactly one process wins a concurrent claim — decrements the count,
    rewrites the marker if crashes remain, and kills itself with the one
    signal Python cannot catch.  No marker, no behaviour change.
    """
    marker = os.environ.get(_FAULT_ENV)
    if not marker:
        return
    claim = f"{marker}.{os.getpid()}"
    try:
        os.rename(marker, claim)
    except OSError:
        return  # no marker left, or another worker won the claim
    try:
        with open(claim, "r", encoding="utf-8") as fh:
            remaining = int(fh.read().strip() or "1")
    except (OSError, ValueError):
        remaining = 1
    try:
        os.remove(claim)
    except OSError:
        pass
    if remaining > 1:
        tmp = claim + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(str(remaining - 1))
            os.replace(tmp, marker)
        except OSError:
            pass
    os.kill(os.getpid(), signal.SIGKILL)


def _run_sweep_task(task):
    _maybe_inject_worker_crash()
    op, lo, hi, k, enforce_support, payload = task
    index = _WORKER_STATE["index"]
    if _WORKER_STATE["record"]:
        from ..obs import MetricsRecorder

        recorder = MetricsRecorder(
            request_id=_WORKER_STATE.get("request_id")
        )
        with recorder.span(
            f"parallel/{op}", observe=f"parallel/chunk_seconds/{op}"
        ):
            result = _SWEEP_OPS[op](index, lo, hi, k, enforce_support, payload)
        return result, recorder.snapshot()
    return _SWEEP_OPS[op](index, lo, hi, k, enforce_support, payload), None


def _quantile_cuts(sizes: Sequence[int], target: int) -> List[Tuple[int, int]]:
    """Split positions ``0..len(sizes)`` into <= ``target`` contiguous
    ranges of roughly equal total size (prefix-sum quantile cuts)."""
    count = len(sizes)
    if count == 0:
        return []
    target = max(1, min(target, count))
    total = sum(sizes)
    boundaries = [0]
    acc = 0
    cut = 1
    for pos, size in enumerate(sizes):
        acc += size
        if cut < target and acc >= total * cut / target and pos + 1 < count:
            boundaries.append(pos + 1)
            cut += 1
    boundaries.append(count)
    return [
        (boundaries[i], boundaries[i + 1])
        for i in range(len(boundaries) - 1)
        if boundaries[i + 1] > boundaries[i]
    ]


def _root_chunks(
    index, target: int, recorder: Recorder = NULL_RECORDER
) -> List[Tuple[int, int]]:
    """Contiguous root-position ranges, weighted by exact subtree size.

    The ``subtree`` column gives every root's node count directly, so
    chunk balance is exact for any index this library produces.  Should a
    (hand-crafted or corrupted) index carry non-positive sizes, chunking
    degrades to uniform position ranges — still correct, only the balance
    suffers — and the ``parallel/chunking-fallback`` counter records that
    it happened.
    """
    subtree = index._subtree
    roots = index._root_ids()
    if not roots:
        return []
    sizes = [subtree[r] for r in roots]
    if min(sizes) < 1:
        if recorder.enabled:
            recorder.counter("parallel/chunking-fallback")
        sizes = [1] * len(roots)
    return _quantile_cuts(sizes, target)


class PathShardEngine:
    """A process pool mapping sweep operations over root-range chunks.

    The pool is created lazily on the first :meth:`map` call and reused
    across sweeps (one engine per algorithm run, many sweeps per engine).
    Creating the pool copies the index columns into a shared-memory
    block exactly once; closing the engine (or dropping the last
    reference) unlinks it.  Close with :meth:`close` or use as a context
    manager.  The engine never polls budgets — callers do, between the
    ordered chunk results.

    Crash recovery: a SIGKILLed/OOM-killed worker silently loses its
    task, which would hang ``imap`` forever.  :meth:`map` therefore
    polls the iterator, watches the pool's worker pids, and on a
    detected death tears the pool down, rebuilds it against the same
    shared-memory block, and re-submits only the unacknowledged chunks
    (results arrive in submission order, so the yielded prefix is safe).
    After ``config.max_crash_retries`` rebuilds it degrades to running
    the remaining chunks in-process — same ops, same order, so results
    stay byte-identical to an uncrashed run either way.
    """

    def __init__(
        self,
        index,
        config: ParallelConfig,
        recorder: Recorder = NULL_RECORDER,
    ):
        self._index = index
        self._config = config
        self._recorder = recorder
        self._pool = None
        self._known_pids: Set[int] = set()
        self._shm = None
        self._meta = None
        self._finalizer = None
        self._chunks = _root_chunks(
            index, config.workers * config.chunks_per_worker, recorder
        )

    @property
    def index(self):
        return self._index

    @property
    def has_chunks(self) -> bool:
        """False only for an empty tree (serial fallback territory)."""
        return bool(self._chunks)

    @property
    def n_chunks(self) -> int:
        return len(self._chunks)

    def _ensure_shm(self):
        """The broadcast block, created once and reused across pool
        rebuilds (a crash kills workers, not the shared mapping)."""
        if self._shm is None:
            self._shm, self._meta = _share_index(self._index)
            _track_shm(self._shm)
            # safety net: unlink the block even if close() is never called
            self._finalizer = weakref.finalize(
                self, _release_shm, self._shm
            )
            if self._recorder.enabled:
                self._recorder.counter("parallel/broadcast_bytes", self._shm.size)
                self._recorder.gauge("parallel/broadcast_mode", "shared_memory")
        return self._shm

    def _ensure_pool(self):
        if self._pool is None:
            self._ensure_shm()
            ctx = self._config.context()
            self._pool = ctx.Pool(
                processes=self._config.workers,
                initializer=_init_sweep_worker,
                initargs=(
                    self._meta,
                    bool(self._recorder.enabled),
                    getattr(self._recorder, "request_id", None),
                ),
                maxtasksperchild=self._config.max_tasks_per_child,
            )
            self._known_pids = self._worker_pids()
        return self._pool

    def _discard_pool_if_workers_died(self) -> None:
        """Between sweeps, a pool whose worker set changed is suspect.

        A worker SIGKILLed while *idle* can die holding the shared task
        queue's reader lock, deadlocking every surviving and respawned
        worker — no task is ever picked up again, and no further pid
        vanishes for the in-sweep watcher to notice.  Rebuilding is the
        only safe reuse.  With worker recycling pid turnover is routine,
        so the check only applies when ``max_tasks_per_child`` is off
        (the in-sweep grace-period detection still covers that mode).
        """
        if self._pool is None or self._config.max_tasks_per_child is not None:
            return
        if self._worker_pids() != self._known_pids:
            self._teardown_pool()
            if self._recorder.enabled:
                self._recorder.counter("parallel/worker_crashes")
                self._recorder.counter("parallel/pool_rebuilds")

    def _worker_pids(self) -> Set[int]:
        pool = self._pool
        if pool is None:
            return set()
        try:
            return {
                proc.pid for proc in list(pool._pool) if proc.pid is not None
            }
        except Exception:
            return set()

    def _teardown_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # Pool.terminate() deadlocks on a pool with a SIGKILLed worker:
        # its drain helper blocks acquiring the task queue's reader lock,
        # which a worker killed mid-``recv`` died holding (similarly, one
        # killed mid-result-write died holding the result queue's writer
        # lock, hanging the shutdown sentinel ``put``).  Make the
        # teardown unambiguous instead: stop the maintenance thread from
        # respawning, kill every worker outright, then force-release the
        # two locks only (now dead) workers could hold —
        # ``multiprocessing.Lock.release`` is documented to work from any
        # process — so ``terminate()`` can finish.  Workers are stateless
        # compute; SIGKILL loses nothing.
        try:
            import multiprocessing.pool as _mp_pool

            pool._state = getattr(_mp_pool, "TERMINATE", "TERMINATE")
            procs = list(pool._pool)
            for proc in procs:
                if proc.pid is not None and proc.is_alive():
                    try:
                        os.kill(proc.pid, signal.SIGKILL)
                    except OSError:
                        pass
            for proc in procs:
                proc.join(timeout=2.0)
            for lock in (
                getattr(pool._inqueue, "_rlock", None),
                getattr(pool._outqueue, "_wlock", None),
            ):
                if lock is None:
                    continue
                if lock.acquire(block=False):
                    lock.release()
                else:  # held by a dead worker: un-poison it
                    try:
                        lock.release()
                    except Exception:
                        pass
        except Exception:
            pass
        try:
            pool.terminate()
            pool.join()
        except Exception:
            pass

    def _watched_imap(self, pool, tasks) -> Iterator:
        """``pool.imap`` with dead-worker detection.

        A killed worker loses its task silently — Pool never resubmits
        it — so a plain ``next()`` would block forever on the gap in the
        ordered results.  Poll with a timeout instead and treat a worker
        pid leaving the pool (or a broken result pipe) as a crash.  With
        worker recycling (``max_tasks_per_child``) pid turnover is
        routine, so there a crash additionally requires
        ``_CRASH_GRACE_S`` with no progress.
        """
        it = pool.imap(_run_sweep_task, tasks)
        known = self._worker_pids()
        recycling = self._config.max_tasks_per_child is not None
        last_progress = time.monotonic()
        while True:
            try:
                item = it.next(timeout=_CRASH_POLL_S)
            except StopIteration:
                return
            except _PoolTimeout:
                current = self._worker_pids()
                vanished = known - current
                if vanished and (
                    not recycling
                    or time.monotonic() - last_progress > _CRASH_GRACE_S
                ):
                    raise WorkerCrashError(
                        f"pool worker(s) {sorted(vanished)} died mid-sweep"
                    )
                known |= current
                continue
            except (BrokenPipeError, EOFError, ConnectionError, OSError) as exc:
                raise WorkerCrashError(
                    f"pool transport failed mid-sweep: {exc!r}"
                ) from exc
            last_progress = time.monotonic()
            yield item

    def map(
        self,
        op: str,
        k: Optional[int],
        enforce_support: bool = True,
        payload=None,
    ) -> Iterator:
        """Run ``op`` over every chunk; yield results in chunk order.

        Chunk order equals serial path order, so folding the yielded
        results left to right reproduces the serial sweep exactly —
        including across worker crashes: the completed prefix is already
        yielded, only unacknowledged chunks are re-run (pool rebuild) or
        run in-process (serial fallback after ``max_crash_retries``).
        """
        if not self._chunks:
            return
        self._discard_pool_if_workers_died()
        total = len(self._chunks)
        done = 0
        rebuilds_left = self._config.max_crash_retries
        absorbing = self._recorder.enabled and hasattr(self._recorder, "absorb")
        while done < total:
            pool = self._ensure_pool()
            tasks = [
                (op, lo, hi, k, enforce_support, payload)
                for lo, hi in self._chunks[done:]
            ]
            try:
                for result, snapshot in self._watched_imap(pool, tasks):
                    if snapshot is not None and absorbing:
                        self._recorder.absorb(snapshot)
                    done += 1
                    yield result
                return
            except WorkerCrashError:
                self._teardown_pool()
                if self._recorder.enabled:
                    self._recorder.counter("parallel/worker_crashes")
                if rebuilds_left > 0:
                    rebuilds_left -= 1
                    if self._recorder.enabled:
                        self._recorder.counter("parallel/pool_rebuilds")
                    continue
                # out of retries: finish the sweep in-process.  Same ops,
                # same chunk order, and the in-parent call path never
                # runs the chaos kill hook, so this always completes.
                if self._recorder.enabled:
                    self._recorder.counter("parallel/serial_fallback")
                for lo, hi in self._chunks[done:]:
                    yield _SWEEP_OPS[op](
                        self._index, lo, hi, k, enforce_support, payload
                    )
                    done += 1
                return

    def path_view(
        self, k: Optional[int], enforce_support: bool = True
    ) -> "ParallelPathView":
        if k is not None and enforce_support:
            self._index._require_k(k)
        return ParallelPathView(self, k, enforce_support)

    def count_cliques(self, k: int) -> Tuple[int, int]:
        """``(n_paths, n_cliques)`` across all chunks."""
        n_paths = 0
        n_cliques = 0
        for chunk_paths, chunk_cliques in self.map("count", k):
            n_paths += chunk_paths
            n_cliques += chunk_cliques
        return n_paths, n_cliques

    def vertex_counts(self, k: int) -> List[int]:
        """Per-vertex k-clique engagement, merged across chunks."""
        counts = [0] * self._index.n_vertices
        for chunk in self.map("vertex_counts", k):
            for v, c in chunk.items():
                counts[v] += c
        return counts

    def refine_sweep(self, k: int, in_scope, bound_ok) -> Iterator:
        """Phase-A refinement over all chunks (see :func:`_op_refine`)."""
        return self.map("refine", k, payload=(in_scope, bound_ok))

    def close(self) -> None:
        """Tear the pool down and release the broadcast block (idempotent)."""
        self._teardown_pool()
        if self._finalizer is not None:
            self._finalizer()  # runs _release_shm exactly once
            self._finalizer = None
            self._shm = None
            self._meta = None

    def __enter__(self) -> "PathShardEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"PathShardEngine(workers={self._config.workers}, "
            f"chunks={len(self._chunks)}, index={self._index!r})"
        )


def _release_shm(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink the broadcast block, tolerating repeats."""
    _LIVE_SHM.pop(shm.name, None)
    try:
        shm.close()
    except (BufferError, ValueError):
        pass
    try:
        # on 3.10–3.12 a worker's attach-then-unregister (see
        # _attach_index) also removed *this* process's registration from
        # the shared resource tracker, so the unregister that unlink()
        # performs would make the tracker print a KeyError traceback;
        # re-registering first keeps its bookkeeping consistent
        # (register is idempotent — the tracker's cache is a set)
        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class ParallelPathView:
    """Re-iterable path stream through an engine, in exact serial order.

    A drop-in for :class:`~repro.core.SCTPathView`: every ``iter()``
    launches one pooled sweep whose chunk results are merged in order.
    The view borrows the engine — closing the engine invalidates it.
    """

    __slots__ = ("_engine", "_k", "_enforce_support")

    def __init__(self, engine: PathShardEngine, k: Optional[int], enforce_support: bool):
        self._engine = engine
        self._k = k
        self._enforce_support = enforce_support

    def __iter__(self):
        from ..core.sct import SCTPath

        if not self._engine.has_chunks:
            yield from self._engine.index.iter_paths(
                self._k, enforce_support=self._enforce_support
            )
            return
        for chunk in self._engine.map("paths", self._k, self._enforce_support):
            for holds, pivots in chunk:
                yield SCTPath(holds, pivots)

    def __repr__(self) -> str:
        return f"ParallelPathView(k={self._k}, engine={self._engine!r})"
