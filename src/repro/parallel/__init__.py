"""Process-pool execution engine for SCT* root-to-leaf path work.

The SCT*-Index decomposes every k-clique query into independent
root-to-leaf paths, and the node ids of the tree are laid out so that
each seed vertex's subtree occupies one contiguous id range.  Both facts
together make the whole pipeline shardable with a *deterministic* merge:

* :class:`ParallelConfig` — the value behind the ``parallel=`` knob of
  :class:`~repro.options.RunOptions` (worker count, chunking, recycling);
* :class:`PathShardEngine` — a pool over contiguous root-range chunks;
  results stream back in chunk order, so any consumer that folds them
  sequentially reproduces the serial result byte for byte;
* :class:`ParallelPathView` — a re-iterable path stream with the exact
  serial path order, a drop-in for :class:`~repro.core.SCTPathView`;
* :func:`~repro.parallel.build.parallel_build` — pool-backed
  :meth:`~repro.core.SCTIndex.build` (reached via ``parallel=``).

``workers=1`` never creates a pool; every entry point falls back to the
single-process code path, so ``parallel=1`` is byte-identical to passing
nothing at all.
"""

from .config import ParallelConfig
from .engine import ParallelPathView, PathShardEngine

__all__ = ["ParallelConfig", "ParallelPathView", "PathShardEngine"]
