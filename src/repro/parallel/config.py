"""Configuration for the process-pool execution engine.

:class:`ParallelConfig` is the value behind the ``parallel=`` knob of
:class:`~repro.options.RunOptions`: it says how many worker processes to
use and how the root-to-leaf path work is chunked across them.  It is a
plain frozen dataclass with no multiprocessing state, so it pickles
freely and can sit inside :class:`~repro.options.RunOptions` (which is
itself shipped around the pipeline).

``workers=1`` (the default) is the documented "serial" setting: every
engine entry point checks :attr:`ParallelConfig.enabled` and falls back
to the exact single-process code path, so passing ``parallel=1`` is
byte-identical to passing nothing at all.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass
from typing import Optional

from ..errors import InvalidParameterError

__all__ = ["ParallelConfig"]


@dataclass(frozen=True)
class ParallelConfig:
    """How to shard SCT* path work across worker processes.

    Parameters
    ----------
    workers:
        Worker process count.  ``1`` means serial: no pool is ever
        created and results are byte-identical to the pre-parallel code.
    chunks_per_worker:
        Target number of work chunks handed to each worker per sweep.
        More chunks balance skewed subtrees better; fewer chunks lower
        dispatch overhead.  Chunks are contiguous root ranges, so the
        ordered merge of chunk results always reproduces serial order.
    max_tasks_per_child:
        Recycle a worker process after this many tasks (``None`` keeps
        workers for the pool's lifetime).  Recycling bounds the memory a
        long sweep can pin in any single worker.
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``).  ``None`` picks ``fork`` when the platform
        offers it AND the process is single-threaded at pool-creation
        time, falling back to ``spawn`` otherwise.  Forking a
        multithreaded process (e.g. from inside the HTTP service's
        handler threads) clones locks in whatever state other threads
        hold them, so a worker can deadlock in bootstrap before it ever
        reaches the task loop; it also clones Python-level signal
        handlers, making such a worker immune to ``Pool.terminate()``'s
        SIGTERM.  ``spawn`` children start from a fresh interpreter and
        have neither problem — the engine's shm broadcast was designed
        to work identically under both.
    max_crash_retries:
        How many times a sweep may rebuild the pool after detecting a
        crashed worker (SIGKILL/OOM) before degrading to in-process
        serial execution of the remaining chunks.  ``0`` means any
        crash goes straight to the serial fallback.  Either way the
        sweep completes with results byte-identical to an uncrashed run.
    """

    workers: int = 1
    chunks_per_worker: int = 4
    max_tasks_per_child: Optional[int] = None
    start_method: Optional[str] = None
    max_crash_retries: int = 2

    def __post_init__(self) -> None:
        if (
            not isinstance(self.workers, int)
            or isinstance(self.workers, bool)
            or self.workers < 1
        ):
            raise InvalidParameterError(
                f"workers must be an int >= 1, got {self.workers!r}"
            )
        if (
            not isinstance(self.chunks_per_worker, int)
            or isinstance(self.chunks_per_worker, bool)
            or self.chunks_per_worker < 1
        ):
            raise InvalidParameterError(
                f"chunks_per_worker must be an int >= 1, "
                f"got {self.chunks_per_worker!r}"
            )
        if self.max_tasks_per_child is not None and (
            not isinstance(self.max_tasks_per_child, int)
            or isinstance(self.max_tasks_per_child, bool)
            or self.max_tasks_per_child < 1
        ):
            raise InvalidParameterError(
                f"max_tasks_per_child must be None or an int >= 1, "
                f"got {self.max_tasks_per_child!r}"
            )
        if (
            not isinstance(self.max_crash_retries, int)
            or isinstance(self.max_crash_retries, bool)
            or self.max_crash_retries < 0
        ):
            raise InvalidParameterError(
                f"max_crash_retries must be an int >= 0, "
                f"got {self.max_crash_retries!r}"
            )
        if self.start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if self.start_method not in available:
                raise InvalidParameterError(
                    f"start_method {self.start_method!r} not available; "
                    f"expected one of: {', '.join(available)}"
                )

    @property
    def enabled(self) -> bool:
        """Whether this configuration actually spawns a pool."""
        return self.workers > 1

    @classmethod
    def normalize(cls, value) -> Optional["ParallelConfig"]:
        """Coerce a ``parallel=`` argument to a config (or ``None``).

        Accepts ``None`` (serial, the default), a bare int worker count,
        or a ready :class:`ParallelConfig`.  Anything else — including
        booleans, which are almost certainly a bug — is rejected with
        :class:`~repro.errors.InvalidParameterError`.
        """
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        if isinstance(value, bool):
            raise InvalidParameterError(
                "parallel must be None, an int worker count or a "
                f"ParallelConfig, got {value!r} (pass workers=N, not a flag)"
            )
        if isinstance(value, int):
            return cls(workers=value)
        raise InvalidParameterError(
            "parallel must be None, an int worker count or a ParallelConfig, "
            f"got {type(value).__name__}"
        )

    def context(self):
        """The ``multiprocessing`` context this config asks for.

        Evaluated lazily at pool-creation time because the fork-vs-spawn
        choice depends on whether *other threads exist right now*: the
        same config may serve a single-threaded CLI run (fork is safe
        and cheap) and a threaded service daemon (fork would clone
        handler-thread lock state into the worker and deadlock it).
        """
        method = self.start_method
        if method is None:
            available = multiprocessing.get_all_start_methods()
            if "fork" in available and threading.active_count() == 1:
                method = "fork"
            elif "spawn" in available:
                method = "spawn"
        return multiprocessing.get_context(method)
