"""Pool-backed SCT*-Index construction, byte-identical to serial.

Each worker expands a contiguous range of seed vertices (in degeneracy
order) into local flat arrays through the very same
:func:`~repro.core.sct._expand_root_subtree` the serial build uses; the
parent splices each result onto the global arrays in seed order with a
constant id offset.  Because serial node ids are themselves the
concatenation of per-root expansions — DFS pre-order within each root —
the merged arrays, the derived subtree/CSR columns, and hence the saved
index file match the serial build byte for byte.

Budget handling: the parent polls its budget between chunk merges, and
each worker additionally carries the wall-clock seconds remaining at
dispatch as a local deadline.  A worker past its deadline returns its
completed root prefix plus the next unexpanded root; the parent merges
the prefix, checkpoints the frontier at that exact root boundary (the
same ``sct-build`` snapshot kind the serial build writes, so either
build mode can resume the other's checkpoint) and raises the budget's
:class:`~repro.errors.BudgetExhausted`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..cliques.ordered_view import build_ordered_view
from ..core.sct import (
    _BUILD_CHECKPOINT_KIND,
    _BUILD_POLL_NODES,
    _expand_root_subtree,
    _record_build_tallies,
)
from ..resilience.checkpoint import require_match
from .config import ParallelConfig
from .engine import _quantile_cuts

__all__ = ["parallel_build"]

# per-process worker state, populated by the pool initializer
_BUILD_STATE: Dict[str, object] = {}


def _init_build_worker(adj, order, out, core, threshold) -> None:
    _BUILD_STATE.update(
        adj=adj, order=order, out=out, core=core, threshold=threshold
    )


def _build_chunk(task):
    """Expand roots ``[lo, hi)`` into local arrays; return them 0-offset.

    ``remaining`` is the seconds left on the caller's wall budget at
    dispatch (None = unbounded).  On deadline the completed root prefix
    is returned with status ``"exhausted"`` and the first unexpanded
    root — never an exception, which would lose its reason/stage detail
    crossing the pool's pickling boundary.
    """
    lo, hi, remaining = task
    adj = _BUILD_STATE["adj"]
    order = _BUILD_STATE["order"]
    out = _BUILD_STATE["out"]
    core = _BUILD_STATE["core"]
    threshold = _BUILD_STATE["threshold"]
    deadline = time.monotonic() + remaining if remaining is not None else None

    vertex: List[int] = [-1]
    label: List[int] = [-1]
    parent: List[int] = [0]
    depth_of: List[int] = [0]
    pruned_outdeg = 0
    pruned_core = 0

    poll = None
    if deadline is not None:
        steps = [0]

        def poll() -> Optional[str]:
            steps[0] += 1
            if steps[0] >= _BUILD_POLL_NODES:
                steps[0] = 0
                if time.monotonic() >= deadline:
                    return "deadline"
            return None

    status = "ok"
    next_root = hi
    for i in range(lo, hi):
        if deadline is not None and time.monotonic() >= deadline:
            status = "exhausted"
            next_root = i
            break
        if threshold:
            if out[i].bit_count() + 1 < threshold:
                pruned_outdeg += 1
                continue
            if core[i] + 1 < threshold:
                pruned_core += 1
                continue
        reason = _expand_root_subtree(
            vertex, label, parent, depth_of,
            adj, order, i, out[i], 0, poll,
        )
        if reason:
            status = "exhausted"
            next_root = i
            break
    return (
        status,
        next_root,
        vertex[1:],
        label[1:],
        parent[1:],
        depth_of[1:],
        pruned_outdeg,
        pruned_core,
    )


def _root_range_chunks(out, start_root: int, n: int, target: int) -> List[Tuple[int, int]]:
    """Contiguous seed ranges over ``[start_root, n)``, weighted by
    out-degree (a proxy for subtree cost known before expansion)."""
    if start_root >= n:
        return []
    weights = [out[i].bit_count() + 1 for i in range(start_root, n)]
    return [
        (start_root + lo, start_root + hi)
        for lo, hi in _quantile_cuts(weights, target)
    ]


def parallel_build(
    cls,
    graph,
    threshold: int,
    view,
    recorder,
    budget,
    ckpt,
    resume: bool,
    config: ParallelConfig,
):
    """The pool-backed body behind ``SCTIndex.build(parallel=...)``."""
    if view is None:
        with recorder.span("ordered_view"):
            view = build_ordered_view(graph)
    n = view.n
    out = view.out_bits

    vertex: List[int] = [-1]
    label: List[int] = [-1]
    parent: List[int] = [0]
    depth_of: List[int] = [0]
    pruned_outdeg = 0
    pruned_core = 0
    start_root = 0
    if resume and ckpt is not None:
        payload = ckpt.load(_BUILD_CHECKPOINT_KIND)
        if payload is not None:
            require_match(
                payload,
                {"n": graph.n, "m": graph.m, "threshold": threshold},
                _BUILD_CHECKPOINT_KIND,
            )
            vertex = payload["vertex"]
            label = payload["label"]
            parent = payload["parent"]
            depth_of = payload["depth_of"]
            pruned_outdeg = payload["pruned_outdeg"]
            pruned_core = payload["pruned_core"]
            start_root = payload["next_root"]
            if recorder.enabled:
                recorder.counter("checkpoint/resumed")

    def frontier_state(next_root: int) -> Dict[str, object]:
        return {
            "n": graph.n,
            "m": graph.m,
            "threshold": threshold,
            "next_root": next_root,
            "vertex": vertex,
            "label": label,
            "parent": parent,
            "depth_of": depth_of,
            "pruned_outdeg": pruned_outdeg,
            "pruned_core": pruned_core,
        }

    def exhaust(reason: str, next_root: int):
        if ckpt is not None:
            ckpt.save(_BUILD_CHECKPOINT_KIND, frontier_state(next_root))
            if recorder.enabled:
                recorder.counter("checkpoint/saves")
        if recorder.enabled:
            recorder.counter("budget/exhausted")
            recorder.gauge("budget/reason", reason)
            recorder.gauge("budget/stage", "index/build")
        return budget.error(reason, stage="index/build")

    chunks = _root_range_chunks(
        out, start_root, n, config.workers * config.chunks_per_worker
    )
    if chunks:
        remaining = getattr(budget, "remaining", lambda: None)()
        tasks = [(lo, hi, remaining) for lo, hi in chunks]
        ctx = config.context()
        pool = ctx.Pool(
            processes=config.workers,
            initializer=_init_build_worker,
            initargs=(
                view.adj_bits, view.order, view.out_bits,
                view.core_number, threshold,
            ),
            maxtasksperchild=config.max_tasks_per_child,
        )
        try:
            results = pool.imap(_build_chunk, tasks)
            for (lo, hi), result in zip(chunks, results):
                if budget.active:
                    reason = budget.exceeded()
                    if reason:
                        raise exhaust(reason, lo)
                (
                    status, next_root, w_vertex, w_label,
                    w_parent, w_depth, w_po, w_pc,
                ) = result
                # splice: worker ids are 1-based locally, so a constant
                # offset relocates them; parent 0 (the worker's virtual
                # root) stays the global virtual root
                base = len(vertex) - 1
                vertex.extend(w_vertex)
                label.extend(w_label)
                depth_of.extend(w_depth)
                for p in w_parent:
                    parent.append(0 if p == 0 else p + base)
                pruned_outdeg += w_po
                pruned_core += w_pc
                if recorder.enabled:
                    recorder.counter("parallel/build_chunks")
                if status == "exhausted":
                    raise exhaust("deadline", next_root)
                if ckpt is not None and ckpt.due(_BUILD_CHECKPOINT_KIND):
                    ckpt.save(_BUILD_CHECKPOINT_KIND, frontier_state(hi))
                    if recorder.enabled:
                        recorder.counter("checkpoint/saves")
        finally:
            pool.terminate()
            pool.join()
    if ckpt is not None:
        ckpt.clear(_BUILD_CHECKPOINT_KIND)
    index = cls._finalize_build(
        graph.n, vertex, label, parent, depth_of, threshold
    )
    _record_build_tallies(
        recorder, index, threshold, pruned_outdeg, pruned_core
    )
    return index
