"""Cheap upper bounds on clique counts.

Enumerating k-cliques can be astronomically expensive (the reason the
paper's baselines time out), so it pays to *bound* the count before
committing to an enumeration.  Two classic bounds, both computable in
near-linear time:

* **degeneracy bound** — every k-clique has a unique first vertex in the
  degeneracy order, whose out-neighbourhood (size <= degeneracy d) must
  contain the other k-1 members: ``|C_k| <= sum_v C(min(d, |N+(v)|), k-1)``;
* **Kruskal–Katona** — from the edge count alone: if ``m = C(x, 2)`` for
  real ``x``, then ``|C_k| <= C(x, k)``.

The bench harness uses these to predict which baseline calls are hopeless
(and the tests confirm the bounds dominate the exact counts).
"""

from __future__ import annotations

from math import comb, sqrt
from typing import Optional

from ..errors import InvalidParameterError
from ..graph.graph import Graph
from .ordered_view import OrderedGraphView, build_ordered_view

__all__ = [
    "degeneracy_clique_bound",
    "kruskal_katona_clique_bound",
    "clique_count_upper_bound",
]


def degeneracy_clique_bound(
    graph: Graph, k: int, view: Optional[OrderedGraphView] = None
) -> int:
    """Degeneracy-ordering upper bound on ``|C_k(G)|``."""
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if k == 1:
        return graph.n
    if view is None:
        view = build_ordered_view(graph)
    return sum(comb(row.bit_count(), k - 1) for row in view.out_bits)


def _generalized_binomial(x: float, k: int) -> float:
    """``C(x, k)`` for real ``x >= k - 1`` (0 below)."""
    if x < k - 1:
        return 0.0
    result = 1.0
    for i in range(k):
        result *= (x - i) / (k - i)
    return max(result, 0.0)


def kruskal_katona_clique_bound(graph: Graph, k: int) -> float:
    """Kruskal–Katona upper bound on ``|C_k(G)|`` from the edge count.

    With ``m = C(x, 2)`` (``x`` real), ``|C_k| <= C(x, k)``.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")
    if k == 1:
        return float(graph.n)
    if k == 2:
        return float(graph.m)
    if graph.m == 0:
        return 0.0
    # solve m = x(x-1)/2 for x
    x = (1 + sqrt(1 + 8 * graph.m)) / 2
    return _generalized_binomial(x, k)


def clique_count_upper_bound(
    graph: Graph, k: int, view: Optional[OrderedGraphView] = None
) -> float:
    """The tighter of the two bounds."""
    return min(
        float(degeneracy_clique_bound(graph, k, view=view)),
        kruskal_katona_clique_bound(graph, k),
    )
