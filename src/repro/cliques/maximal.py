"""Maximal clique enumeration (Bron–Kerbosch with pivoting).

Used to obtain ``k_max`` (the maximum clique size, reported in Table 2 of
the paper) and as an independent sanity oracle for the SCT*-Index, whose
leaves are in bijection with maximal cliques of the graph.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..graph.graph import Graph
from .ordered_view import OrderedGraphView, build_ordered_view

__all__ = ["iter_maximal_cliques", "max_clique_size", "maximum_clique"]


def _iter_maximal_positions(view: OrderedGraphView) -> Iterator[int]:
    """Yield each maximal clique as a bitset of positions.

    Bron–Kerbosch with the Tomita max-degree pivot, seeded per vertex along
    the degeneracy ordering (Eppstein–Löffler–Strash), all on bitsets.  The
    search runs on an explicit frame stack, so cliques deeper than the
    interpreter's recursion limit enumerate fine.
    """
    n = view.n
    adj = view.adj_bits
    out = view.out_bits

    for i in range(n):
        i_bit = 1 << i
        # X = earlier neighbours: they would re-generate cliques already seen
        # frames: [r_mask, p_mask, x_mask, branch]; branch is None until the
        # pivot has been chosen, afterwards the not-yet-expanded branch set
        stack: List[List] = [[i_bit, out[i], adj[i] & (i_bit - 1), None]]
        while stack:
            frame = stack[-1]
            if frame[3] is None:
                p_mask, x_mask = frame[1], frame[2]
                if p_mask == 0 and x_mask == 0:
                    yield frame[0]
                    stack.pop()
                    continue
                # pivot: vertex of P ∪ X with most neighbours inside P;
                # covering all of P cannot be beaten, so stop scanning early
                p_count = p_mask.bit_count()
                best_u, best_cover = -1, -1
                mask = p_mask | x_mask
                while mask:
                    low = mask & -mask
                    u = low.bit_length() - 1
                    mask ^= low
                    cover = (adj[u] & p_mask).bit_count()
                    if cover > best_cover:
                        best_cover, best_u = cover, u
                        if cover == p_count:
                            break
                frame[3] = p_mask & ~adj[best_u]
            if frame[3]:
                low = frame[3] & -frame[3]
                v = low.bit_length() - 1
                frame[3] ^= low
                stack.append(
                    [frame[0] | low, frame[1] & adj[v], frame[2] & adj[v], None]
                )
                frame[1] &= ~low
                frame[2] |= low
            else:
                stack.pop()


def iter_maximal_cliques(
    graph: Graph, view: Optional[OrderedGraphView] = None
) -> Iterator[Tuple[int, ...]]:
    """Yield every maximal clique as a sorted tuple of original vertex ids."""
    if view is None:
        view = build_ordered_view(graph)
    order = view.order
    for mask in _iter_maximal_positions(view):
        members: List[int] = []
        while mask:
            low = mask & -mask
            members.append(order[low.bit_length() - 1])
            mask ^= low
        members.sort()
        yield tuple(members)


def max_clique_size(graph: Graph, view: Optional[OrderedGraphView] = None) -> int:
    """The maximum clique size ``k_max`` (0 for an empty graph)."""
    if graph.n == 0:
        return 0
    if view is None:
        view = build_ordered_view(graph)
    best = 0
    for mask in _iter_maximal_positions(view):
        best = max(best, mask.bit_count())
    return best


def maximum_clique(
    graph: Graph, view: Optional[OrderedGraphView] = None
) -> List[int]:
    """One maximum clique, as a sorted vertex list (empty for empty graph)."""
    if graph.n == 0:
        return []
    if view is None:
        view = build_ordered_view(graph)
    best_mask = 0
    for mask in _iter_maximal_positions(view):
        if mask.bit_count() > best_mask.bit_count():
            best_mask = mask
    return sorted(view.to_original(_bits(best_mask)))


def _bits(mask: int):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
