"""KCList: k-clique listing on the degeneracy DAG.

This is the listing algorithm of Danisch, Balalau & Sozio (WWW'18) that the
paper's KCL baseline re-runs every iteration.  Each k-clique is emitted
exactly once, as the increasing-position chain ``p_1 < p_2 < ... < p_k``
inside the degeneracy ordering; candidate sets are big-int bitsets so that
each refinement step is one ``&``.

The module offers three entry points:

* :func:`iter_k_cliques` — yield each k-clique (original vertex ids);
* :func:`count_k_cliques` — count without materialising;
* :func:`per_vertex_counts` — k-clique engagement of every vertex.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..errors import InvalidParameterError
from ..graph.graph import Graph
from .ordered_view import OrderedGraphView, build_ordered_view

__all__ = [
    "iter_k_cliques",
    "count_k_cliques",
    "per_vertex_counts",
    "iter_k_cliques_in_view",
]


def _check_k(k: int) -> None:
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")


def iter_k_cliques_in_view(
    view: OrderedGraphView, k: int
) -> Iterator[Tuple[int, ...]]:
    """Yield every k-clique as a tuple of *positions* in the ordering.

    Core recursion shared by the public wrappers; positions are strictly
    increasing within each tuple.
    """
    _check_k(k)
    n = view.n
    if k == 1:
        for i in range(n):
            yield (i,)
        return
    out_bits = view.out_bits
    # prefix holds the chain built so far; cand is a bitset of positions
    # adjacent to all of prefix and greater than prefix[-1]
    stack: List[Tuple[Tuple[int, ...], int]] = []
    for i in range(n):
        cand = out_bits[i]
        if cand:
            stack.append(((i,), cand))
        while stack:
            prefix, cand = stack.pop()
            depth_left = k - len(prefix)
            if depth_left == 1:
                mask = cand
                while mask:
                    low = mask & -mask
                    yield prefix + (low.bit_length() - 1,)
                    mask ^= low
                continue
            mask = cand
            while mask:
                low = mask & -mask
                j = low.bit_length() - 1
                mask ^= low
                nxt = cand & out_bits[j]
                if nxt:
                    stack.append((prefix + (j,), nxt))


def iter_k_cliques(
    graph: Graph, k: int, view: Optional[OrderedGraphView] = None
) -> Iterator[Tuple[int, ...]]:
    """Yield every k-clique of ``graph`` as a tuple of original vertex ids.

    Parameters
    ----------
    graph:
        The undirected input graph.
    k:
        Clique size (``>= 1``).
    view:
        Optional pre-built ordered view to reuse across calls.
    """
    if view is None:
        view = build_ordered_view(graph)
    order = view.order
    for positions in iter_k_cliques_in_view(view, k):
        yield tuple(order[p] for p in positions)


def count_k_cliques(
    graph: Graph, k: int, view: Optional[OrderedGraphView] = None
) -> int:
    """Number of k-cliques in ``graph`` (no clique materialisation).

    Uses popcount at the last level, which skips the innermost Python loop.
    """
    _check_k(k)
    if view is None:
        view = build_ordered_view(graph)
    n = view.n
    if k == 1:
        return n
    out_bits = view.out_bits
    if k == 2:
        return sum(row.bit_count() for row in out_bits)
    total = 0
    stack: List[Tuple[int, int]] = []  # (cand_mask, depth_left)
    for i in range(n):
        cand = out_bits[i]
        if not cand:
            continue
        stack.append((cand, k - 1))
        while stack:
            cand, depth_left = stack.pop()
            if depth_left == 1:
                total += cand.bit_count()
                continue
            mask = cand
            while mask:
                low = mask & -mask
                j = low.bit_length() - 1
                mask ^= low
                nxt = cand & out_bits[j]
                if nxt:
                    stack.append((nxt, depth_left - 1))
    return total


def per_vertex_counts(
    graph: Graph, k: int, view: Optional[OrderedGraphView] = None
) -> List[int]:
    """k-clique engagement ``|C_k(v, G)|`` for every vertex ``v``.

    Materialises each clique once and attributes it to its ``k`` members.
    """
    counts = [0] * graph.n
    for clique in iter_k_cliques(graph, k, view=view):
        for v in clique:
            counts[v] += 1
    return counts
