"""Clique enumeration and counting substrates."""

from .counting import (
    engagement_counts,
    k_clique_density,
    subgraph_density,
    subgraph_k_clique_count,
)
from .estimates import (
    clique_count_upper_bound,
    degeneracy_clique_bound,
    kruskal_katona_clique_bound,
)
from .kclist import count_k_cliques, iter_k_cliques, per_vertex_counts
from .maximal import iter_maximal_cliques, max_clique_size, maximum_clique
from .naive import (
    clique_count_by_size_naive,
    count_k_cliques_naive,
    densest_subgraph_bruteforce,
    iter_k_cliques_naive,
    k_clique_density_naive,
    per_vertex_counts_naive,
)
from .ordered_view import OrderedGraphView, build_ordered_view

__all__ = [
    "OrderedGraphView",
    "build_ordered_view",
    "iter_k_cliques",
    "count_k_cliques",
    "per_vertex_counts",
    "iter_maximal_cliques",
    "max_clique_size",
    "maximum_clique",
    "iter_k_cliques_naive",
    "count_k_cliques_naive",
    "per_vertex_counts_naive",
    "k_clique_density_naive",
    "densest_subgraph_bruteforce",
    "clique_count_by_size_naive",
    "k_clique_density",
    "subgraph_k_clique_count",
    "subgraph_density",
    "engagement_counts",
    "degeneracy_clique_bound",
    "kruskal_katona_clique_bound",
    "clique_count_upper_bound",
]
