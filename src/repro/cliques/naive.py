"""Naive, combinations-based clique routines.

These are deliberately simple and obviously correct — they serve as the test
oracle for KCList, the SCT*-Index and every density computation.  Only use
them on small graphs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, List, Tuple

from ..errors import InvalidParameterError
from ..graph.graph import Graph

__all__ = [
    "iter_k_cliques_naive",
    "count_k_cliques_naive",
    "per_vertex_counts_naive",
    "k_clique_density_naive",
    "densest_subgraph_bruteforce",
    "clique_count_by_size_naive",
]


def _check_k(k: int) -> None:
    if k < 1:
        raise InvalidParameterError(f"k must be >= 1, got {k}")


def iter_k_cliques_naive(graph: Graph, k: int) -> Iterator[Tuple[int, ...]]:
    """Yield every k-clique of ``graph`` as a sorted vertex tuple.

    Enumerates all :math:`\\binom{n}{k}` subsets — exponential; oracle only.
    """
    _check_k(k)
    for combo in combinations(range(graph.n), k):
        if graph.is_clique(combo):
            yield combo


def count_k_cliques_naive(graph: Graph, k: int) -> int:
    """Number of k-cliques, by exhaustive enumeration."""
    return sum(1 for _ in iter_k_cliques_naive(graph, k))


def per_vertex_counts_naive(graph: Graph, k: int) -> List[int]:
    """``result[v]`` = number of k-cliques containing ``v`` (engagement)."""
    counts = [0] * graph.n
    for clique in iter_k_cliques_naive(graph, k):
        for v in clique:
            counts[v] += 1
    return counts


def k_clique_density_naive(graph: Graph, vertices, k: int) -> float:
    """k-clique density of the subgraph induced by ``vertices``."""
    vs = sorted(set(vertices))
    if not vs:
        return 0.0
    sub, _ = graph.induced_subgraph(vs)
    return count_k_cliques_naive(sub, k) / len(vs)


def densest_subgraph_bruteforce(graph: Graph, k: int) -> Tuple[List[int], float]:
    """Exact k-clique densest subgraph by trying *every* vertex subset.

    Returns ``(vertices, density)``.  Exponential in ``n``; the ground-truth
    oracle for graphs with at most ~15 vertices.  Ties are broken towards
    the lexicographically smallest vertex set among the smallest optimal
    sets, so results are deterministic.
    """
    _check_k(k)
    best_density = 0.0
    best_set: List[int] = []
    # enumerate cliques once; then each subset's clique count is a filter
    cliques = list(iter_k_cliques_naive(graph, k))
    clique_masks = [sum(1 << v for v in c) for c in cliques]
    for size in range(1, graph.n + 1):
        for combo in combinations(range(graph.n), size):
            mask = sum(1 << v for v in combo)
            inside = sum(1 for cm in clique_masks if cm & mask == cm)
            density = inside / size
            if density > best_density + 1e-12:
                best_density = density
                best_set = list(combo)
    return best_set, best_density


def clique_count_by_size_naive(graph: Graph) -> Dict[int, int]:
    """Number of cliques of every size ``>= 1`` (oracle for SCT counting)."""
    out: Dict[int, int] = {}
    for k in range(1, graph.n + 1):
        c = count_k_cliques_naive(graph, k)
        if c == 0 and k > 2:
            break
        if c:
            out[k] = c
    return out
