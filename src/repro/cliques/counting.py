"""Higher-level clique counting helpers built on KCList.

The SCT*-Index has its own (faster, closed-form) counting; these helpers are
the index-free alternatives used by baselines, tests and graph reductions.
"""

from __future__ import annotations

from typing import List, Optional

from ..graph.graph import Graph
from .kclist import count_k_cliques, per_vertex_counts
from .ordered_view import OrderedGraphView

__all__ = [
    "k_clique_density",
    "subgraph_k_clique_count",
    "subgraph_density",
    "engagement_counts",
]


def k_clique_density(graph: Graph, k: int) -> float:
    """k-clique density of the whole graph: ``|C_k(G)| / |V(G)|``."""
    if graph.n == 0:
        return 0.0
    return count_k_cliques(graph, k) / graph.n


def subgraph_k_clique_count(graph: Graph, vertices, k: int) -> int:
    """Number of k-cliques inside the subgraph induced by ``vertices``."""
    vs = sorted(set(vertices))
    if len(vs) < k:
        return 0
    sub, _ = graph.induced_subgraph(vs)
    return count_k_cliques(sub, k)


def subgraph_density(graph: Graph, vertices, k: int) -> float:
    """k-clique density of the subgraph induced by ``vertices``."""
    vs = sorted(set(vertices))
    if not vs:
        return 0.0
    return subgraph_k_clique_count(graph, vs, k) / len(vs)


def engagement_counts(
    graph: Graph, k: int, view: Optional[OrderedGraphView] = None
) -> List[int]:
    """Per-vertex k-clique engagement ``|C_k(v, G)|`` (KCList-based)."""
    return per_vertex_counts(graph, k, view=view)
