"""Degeneracy-ordered bitset view of a graph.

Clique algorithms (KCList, the SCT*-Index build, Bron–Kerbosch) all want the
same preprocessing: relabel vertices by degeneracy-ordering position so that

* "later in the ordering" becomes "higher bit index", and
* adjacency rows become big-int bitsets over positions.

With that, the out-neighbourhood of position ``i`` is a single expression
``adj_bits[i] >> (i + 1) << (i + 1)`` and every set intersection inside a
recursion is one C-level ``&``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..graph.cores import CoreDecomposition, core_decomposition
from ..graph.graph import Graph

__all__ = ["OrderedGraphView", "build_ordered_view", "popcount"]


def popcount(mask: int) -> int:
    """Number of set bits in ``mask``."""
    return mask.bit_count()


@dataclass(frozen=True)
class OrderedGraphView:
    """Graph relabelled along a degeneracy ordering, with bitset adjacency.

    Attributes
    ----------
    graph:
        The original graph.
    order:
        ``order[i]`` is the original vertex id occupying position ``i``.
    position:
        Inverse of ``order``.
    adj_bits:
        ``adj_bits[i]`` has bit ``j`` set iff positions ``i`` and ``j`` are
        adjacent.
    out_bits:
        ``out_bits[i] = adj_bits[i]`` restricted to positions ``> i`` — the
        degeneracy-DAG out-neighbourhood.
    degeneracy:
        Degeneracy of the graph, an upper bound on every out-degree.
    core_number:
        ``core_number[i]`` is the core number of the vertex at position
        ``i`` (note: indexed by *position*, not original id).
    """

    graph: Graph
    order: List[int]
    position: List[int]
    adj_bits: List[int]
    out_bits: List[int]
    degeneracy: int
    core_number: List[int]

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.graph.n

    def to_original(self, positions) -> List[int]:
        """Map an iterable of positions back to original vertex ids."""
        order = self.order
        return [order[i] for i in positions]


def build_ordered_view(
    graph: Graph, decomposition: Optional[CoreDecomposition] = None
) -> OrderedGraphView:
    """Construct the ordered bitset view of ``graph``.

    Parameters
    ----------
    graph:
        The undirected input graph.
    decomposition:
        Optional pre-computed core decomposition to reuse.
    """
    if decomposition is None:
        decomposition = core_decomposition(graph)
    order = decomposition.order
    position = decomposition.position
    n = graph.n
    adj_bits = [0] * n
    for i, v in enumerate(order):
        row = 0
        for u in graph.neighbors(v):
            row |= 1 << position[u]
        adj_bits[i] = row
    out_bits = [0] * n
    for i in range(n):
        out_bits[i] = adj_bits[i] >> (i + 1) << (i + 1)
    core_by_pos = [decomposition.core_number[order[i]] for i in range(n)]
    return OrderedGraphView(
        graph=graph,
        order=order,
        position=position,
        adj_bits=adj_bits,
        out_bits=out_bits,
        degeneracy=decomposition.degeneracy,
        core_number=core_by_pos,
    )
