"""repro — Scaling Up k-Clique Densest Subgraph Detection.

A complete, pure-Python implementation of the SIGMOD 2023 paper: the
SCT*-Index, the SCTL / SCTL+ / SCTL* approximation family, the
SCTL*-Sample sampling algorithm and the SCTL*-Exact solver, together with
every baseline the paper compares against (KCL, KCL-Sample, KCL-Exact,
CoreApp, CoreExact) and the substrates they need (degeneracy cores,
KCList, Bron–Kerbosch, Dinic max-flow, the Goldberg-style clique flow
network).

Quickstart::

    from repro import SCTIndex, sctl_star, sctl_star_exact
    from repro.graph import relaxed_caveman_graph

    graph = relaxed_caveman_graph(10, 8, 0.1, seed=1)
    index = SCTIndex.build(graph)          # offline, reusable for any k
    approx = sctl_star(index, k=4)         # near-optimal in a few passes
    exact = sctl_star_exact(graph, 4, index=index)
    print(approx.summary())
    print(exact.summary())

The top-level :func:`densest_subgraph` facade picks the algorithm by name.
"""

from __future__ import annotations

import time
from typing import Optional

from .baselines import (
    core_app,
    core_exact,
    greedy_peeling,
    kcl,
    kcl_exact,
    kcl_sample,
)
from .core import (
    DensestSubgraphResult,
    DensityProfile,
    DirtyRegion,
    SCTIndex,
    SCTPath,
    SCTPathView,
    density_profile,
    sctl,
    sctl_plus,
    sctl_star,
    sctl_star_exact,
    sctl_star_sample,
    top_dense_subgraphs,
)
from .core.density import PartialResult
from .results import RESULT_SCHEMA, DenseSubgraphResult
from .errors import (
    BudgetExhausted,
    CheckpointError,
    DatasetError,
    EdgeListParseError,
    GraphError,
    IndexBuildError,
    IndexQueryError,
    InvalidParameterError,
    ReproError,
    SolverError,
    TimeoutExceeded,
)
from .graph import Graph
from .hypergraph import Hypergraph
from .obs import NULL_RECORDER, MetricsRecorder, NullRecorder, Recorder
from .options import RunOptions
from .parallel import ParallelConfig
from .registry import (
    MethodSpec,
    available_methods,
    get_method,
    methods_supporting,
    register_method,
)
from .resilience import (
    NULL_BUDGET,
    Budget,
    Checkpointer,
    FaultPlan,
    NullBudget,
    RunBudget,
)

__version__ = "1.2.0"

__all__ = [
    "Graph",
    "Hypergraph",
    "SCTIndex",
    "SCTPath",
    "SCTPathView",
    "DirtyRegion",
    "DenseSubgraphResult",
    "DensestSubgraphResult",
    "RESULT_SCHEMA",
    "densest_subgraph",
    "sctl",
    "sctl_plus",
    "sctl_star",
    "sctl_star_sample",
    "sctl_star_exact",
    "kcl",
    "kcl_sample",
    "kcl_exact",
    "core_app",
    "core_exact",
    "greedy_peeling",
    "density_profile",
    "DensityProfile",
    "top_dense_subgraphs",
    "RunOptions",
    "ParallelConfig",
    "MethodSpec",
    "available_methods",
    "get_method",
    "methods_supporting",
    "register_method",
    "Recorder",
    "NullRecorder",
    "MetricsRecorder",
    "NULL_RECORDER",
    "PartialResult",
    "Budget",
    "NullBudget",
    "RunBudget",
    "NULL_BUDGET",
    "Checkpointer",
    "FaultPlan",
    "ReproError",
    "GraphError",
    "InvalidParameterError",
    "IndexBuildError",
    "IndexQueryError",
    "DatasetError",
    "EdgeListParseError",
    "SolverError",
    "BudgetExhausted",
    "TimeoutExceeded",
    "CheckpointError",
    "__version__",
]

def densest_subgraph(
    graph: Graph,
    k: int,
    method: str = "sctl*",
    iterations: int = 10,
    index: Optional[SCTIndex] = None,
    sample_size: Optional[int] = None,
    seed: int = 0,
    recorder: Recorder = NULL_RECORDER,
    budget: Budget = NULL_BUDGET,
    checkpoint=None,
    resume: bool = False,
    parallel=None,
    options: Optional[RunOptions] = None,
) -> DensestSubgraphResult:
    """One-call facade over every algorithm in the registry.

    Parameters
    ----------
    graph:
        The input graph.
    k:
        Clique size (``>= 3`` for the paper's setting).
    method:
        Any name from :func:`available_methods` — built in: ``"sctl"``,
        ``"sctl+"``, ``"sctl*"``, ``"sctl*-sample"``, ``"sctl*-exact"``,
        ``"kcl"``, ``"kcl-sample"``, ``"kcl-exact"``, ``"coreapp"``,
        ``"coreexact"``, ``"peel"`` — or anything added through
        :func:`register_method`.  Matching is case-insensitive, ignores
        whitespace and underscores, and accepts spelled-out aliases such
        as ``"sctl-star"``.
    iterations:
        Refinement passes for the iterative methods.
    index:
        A pre-built SCT*-Index to reuse for the SCT-based methods
        (built on demand otherwise).
    sample_size:
        Sample size for the ``*-sample`` methods (default ``10_000``).
    seed:
        RNG seed for sampling methods.
    recorder:
        Observability hook (``repro.obs``): forwarded to the index build
        and to every SCT-based method.  The baselines (KCL, CoreApp, ...)
        predate the SCT pipeline and warn once that they ignore it.
    budget:
        Optional :class:`~repro.resilience.RunBudget`, forwarded to the
        index build and every SCT-based method.  On exhaustion the call
        returns a :class:`PartialResult` instead of raising — invalid
        (empty) when the budget ran out before anything was achieved,
        best-so-far otherwise.
    checkpoint / resume:
        A checkpoint directory (or :class:`~repro.resilience.Checkpointer`)
        and the restart switch, forwarded to the index build and the
        SCTL-family refinements.
    parallel:
        ``None`` (serial), an int worker count, or a
        :class:`ParallelConfig` — shards the index build and the path
        sweeps over a process pool while keeping every result
        byte-identical to serial.
    options:
        A :class:`RunOptions` bundling the five knobs above; the
        individual keywords remain as aliases (conflicting assignments
        raise :class:`InvalidParameterError`).
    """
    t0 = time.perf_counter()
    spec = get_method(method)
    opts = RunOptions.resolve(
        options,
        recorder=recorder,
        budget=budget,
        checkpoint=checkpoint,
        resume=resume,
        parallel=parallel,
    )
    # capability gating: reject an unsupported knob up front with the
    # lists-valid-names error instead of silently ignoring it mid-run
    if (
        opts.parallel is not None
        and opts.parallel.enabled
        and not spec.supports_parallel
    ):
        raise InvalidParameterError(
            f"method {spec.name!r} does not support parallel execution; "
            "methods that do: " + ", ".join(methods_supporting("parallel"))
        )
    if opts.budget is not NULL_BUDGET and not spec.supports_budget:
        raise InvalidParameterError(
            f"method {spec.name!r} does not honour a run budget; "
            "methods that do: " + ", ".join(methods_supporting("budget"))
        )
    index_build_s = None
    if spec.needs_index and index is None:
        try:
            index = SCTIndex.build(graph, options=opts)
        except BudgetExhausted as exc:
            result = PartialResult(
                vertices=[],
                clique_count=0,
                k=k,
                algorithm=spec.name,
                valid=False,
                reason=exc.reason,
                stage=exc.stage or "index/build",
            )
            result.timings["total_s"] = time.perf_counter() - t0
            return result
        index_build_s = time.perf_counter() - t0
    sigma = sample_size if sample_size is not None else 10_000
    result = spec.fn(
        graph,
        k,
        index=index,
        iterations=iterations,
        sample_size=sigma,
        seed=seed,
        options=opts,
    )
    if index_build_s is not None:
        result.timings.setdefault("index_build_s", index_build_s)
    result.timings["total_s"] = time.perf_counter() - t0
    return result
