"""Overload protection: admission gates, circuit breakers, retry client.

Unit tests drive the transport-free primitives in
``repro.resilience.overload`` with injected clocks; integration tests
push real requests through :class:`ReproService` and the HTTP layer to
pin the envelope/status contract (429 + Retry-After for admission
rejections, 503 + Retry-After for open breakers, ``/readyz``
saturation) and the quarantine path for corrupt on-disk indices.
"""

import json
import os
import threading
import time
import urllib.request

import pytest

import repro.service.server as server_mod
from repro.errors import (
    CircuitOpenError,
    InvalidParameterError,
    ServiceUnavailable,
)
from repro.obs.validate import validate_result
from repro.resilience import (
    AdmissionController,
    AdmissionGate,
    CircuitBreaker,
)
from repro.service import ReproService, ServiceConfig, make_server
from repro.service.client import ServiceClient, _parse_retry_after

DATASET = "email"


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_service(**overrides) -> ReproService:
    kwargs = dict(cache_size=2, result_cache_size=8)
    kwargs.update(overrides)
    return ReproService(ServiceConfig(**kwargs))


def query(service, **fields):
    obj = {"op": "query", "dataset": DATASET, "k": 4}
    obj.update(fields)
    return service.handle_request(obj)


class TestAdmissionGate:
    def test_admits_up_to_max_concurrent(self):
        gate = AdmissionGate(2, max_queue=0)
        assert gate.try_acquire().admitted
        assert gate.try_acquire().admitted
        decision = gate.try_acquire()
        assert not decision.admitted
        assert decision.reason == "queue_full"

    def test_release_frees_a_slot(self):
        gate = AdmissionGate(1, max_queue=0)
        assert gate.try_acquire().admitted
        gate.release()
        assert gate.try_acquire().admitted

    def test_wait_timeout_while_queued(self):
        gate = AdmissionGate(1, max_queue=1)
        assert gate.try_acquire().admitted
        start = time.monotonic()
        decision = gate.try_acquire(wait_timeout_s=0.05)
        assert not decision.admitted
        assert decision.reason == "wait_timeout"
        assert decision.waited_s >= 0.04
        assert time.monotonic() - start < 5.0

    def test_queued_caller_admitted_when_slot_frees(self):
        gate = AdmissionGate(1, max_queue=1)
        assert gate.try_acquire().admitted
        outcome = {}

        def waiter():
            outcome["decision"] = gate.try_acquire(wait_timeout_s=10.0)

        t = threading.Thread(target=waiter)
        t.start()
        deadline = time.monotonic() + 5
        while gate.waiting < 1:
            assert time.monotonic() < deadline
            time.sleep(0.001)
        gate.release()
        t.join(timeout=5)
        assert outcome["decision"].admitted
        assert outcome["decision"].waited_s > 0

    def test_saturated_means_full_slots_and_full_queue(self):
        gate = AdmissionGate(1, max_queue=0)
        assert not gate.saturated
        gate.try_acquire()
        assert gate.saturated
        gate.release()
        assert not gate.saturated

    def test_snapshot_and_validation(self):
        gate = AdmissionGate(3, max_queue=2)
        gate.try_acquire()
        assert gate.snapshot() == {
            "active": 1, "waiting": 0, "max_concurrent": 3, "max_queue": 2,
        }
        with pytest.raises(InvalidParameterError):
            AdmissionGate(0)
        with pytest.raises(InvalidParameterError):
            AdmissionGate(1, max_queue=-1)

    def test_controller_keeps_classes_independent(self):
        ctl = AdmissionController(1, max_queue=0)
        assert ctl.classes == ("query", "cold")
        assert ctl.gate("query").try_acquire().admitted
        # the query class being full does not block cold builds
        assert ctl.gate("cold").try_acquire().admitted
        assert ctl.saturated  # any saturated class saturates the whole
        ctl.gate("query").release()
        assert ctl.gate("cold").saturated


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_s=30, clock=clock)
        for _ in range(2):
            breaker.record_failure(RuntimeError("x"))
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure(RuntimeError("third"))
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after_s == pytest.approx(30.0)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure(RuntimeError("x"))
        breaker.record_success()
        breaker.record_failure(RuntimeError("y"))
        assert breaker.state == "closed"
        assert breaker.last_error is not None

    def test_half_open_grants_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=10, clock=clock)
        breaker.record_failure(RuntimeError("x"))
        assert not breaker.allow()
        clock.advance(10.5)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else keeps fast-failing
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=5, cooldown_s=10, clock=clock)
        for _ in range(5):
            breaker.record_failure(RuntimeError("x"))
        clock.advance(10.5)
        assert breaker.allow()
        breaker.record_failure(RuntimeError("probe failed"))
        assert breaker.state == "open"
        assert breaker.retry_after_s == pytest.approx(10.0)
        assert not breaker.allow()

    def test_release_probe_lets_the_next_request_try(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=10, clock=clock)
        breaker.record_failure(RuntimeError("x"))
        clock.advance(10.5)
        assert breaker.allow()
        # the probe ended with a breaker-neutral outcome (bad request);
        # without release_probe every later allow() would be False forever
        breaker.release_probe()
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(threshold=0)
        with pytest.raises(InvalidParameterError):
            CircuitBreaker(cooldown_s=-1)


class TestServiceAdmission:
    def test_rejection_envelope_is_code_5_with_retry_after(self):
        service = make_service(max_concurrent=1, max_queue=0)
        gate = service._admission.gate("query")
        assert gate.try_acquire().admitted  # occupy the only slot
        try:
            response = query(service)
        finally:
            gate.release()
        assert response["code"] == server_mod.CODE_REJECTED
        assert response["rejected"] is True
        assert response["retry_after_s"] > 0
        assert response["error"]
        assert validate_result(response) == []
        counters = service.stats_snapshot()["counters"]
        assert counters["service/rejected"] == 1
        assert counters["service/rejected/queue_full"] == 1

    def test_admitted_after_release(self):
        service = make_service(max_concurrent=1, max_queue=0)
        response = query(service)
        assert response["code"] == 0

    def test_wait_timeout_is_code_3(self):
        service = make_service(max_concurrent=1, max_queue=2)
        gate = service._admission.gate("query")
        assert gate.try_acquire().admitted
        try:
            response = query(service, timeout_s=0.05)
        finally:
            gate.release()
        assert response["code"] == server_mod.CODE_EXHAUSTED
        assert response["rejected"] is True
        counters = service.stats_snapshot()["counters"]
        assert counters["service/rejected/wait_timeout"] == 1

    def test_doomed_budget_rejected_before_queueing(self):
        service = make_service(max_concurrent=1, max_queue=8)
        # teach the histogram that cold queries take ~2s
        for _ in range(4):
            service._observe("service/latency/query/cold", 2.0)
        gate = service._admission.gate("query")
        assert gate.try_acquire().admitted
        try:
            response = query(service, timeout_s=0.01)
        finally:
            gate.release()
        assert response["code"] == server_mod.CODE_EXHAUSTED
        assert response["rejected"] is True
        assert "cannot be met" in response["error"]
        counters = service.stats_snapshot()["counters"]
        assert counters["service/rejected/doomed"] == 1

    def test_stats_is_never_gated(self):
        service = make_service(max_concurrent=1, max_queue=0)
        gate = service._admission.gate("query")
        assert gate.try_acquire().admitted
        try:
            response = service.handle_request({"op": "stats"})
        finally:
            gate.release()
        assert response["code"] == 0
        assert "admission" in response["stats"]

    def test_stats_payload_validates_with_required_counters(self):
        service = make_service(max_concurrent=2)
        response = service.handle_request({"op": "stats"})
        assert validate_result(response["stats"]) == []
        assert response["stats"]["counters"]["service/rejected"] == 0
        assert response["stats"]["counters"]["parallel/worker_crashes"] == 0


class TestServiceBreaker:
    def _failing_service(self, monkeypatch, threshold=2, **overrides):
        service = make_service(
            breaker_threshold=threshold, breaker_cooldown_s=60, **overrides
        )
        attempts = []

        def exploding_build(*args, **kwargs):
            attempts.append(1)
            raise RuntimeError("synthetic build failure")

        monkeypatch.setattr(
            server_mod.SCTIndex, "build", staticmethod(exploding_build)
        )
        return service, attempts

    def test_breaker_opens_then_fast_fails(self, monkeypatch):
        service, attempts = self._failing_service(monkeypatch, threshold=2)
        for _ in range(2):
            response = query(service)
            assert response["code"] == 1
            assert "synthetic build failure" in response["error"]
        response = query(service)
        assert response["breaker_open"] is True
        assert response["retry_after_s"] > 0
        assert "synthetic build failure" in response["error"]
        counters = service.stats_snapshot()["counters"]
        assert counters["service/breaker/fast_fail"] == 1
        assert len(attempts) == 2  # the fast-fail never touched the build

    def test_breaker_is_per_cache_key(self, monkeypatch):
        service, _ = self._failing_service(monkeypatch, threshold=1)
        assert query(service)["code"] == 1
        assert query(service).get("breaker_open") is True
        # a different threshold is a different index key: fresh breaker
        response = query(service, threshold=2)
        assert "breaker_open" not in response
        assert response["code"] in (1, 2)

    def test_breaker_state_visible_in_stats(self, monkeypatch):
        service, _ = self._failing_service(monkeypatch, threshold=1)
        query(service)
        stats = service.stats_snapshot()
        breakers = stats["breakers"]
        (state,) = breakers.values()
        assert state["state"] == "open"
        assert "synthetic build failure" in state["last_error"]

    def test_bad_requests_do_not_trip_the_breaker(self):
        service = make_service(breaker_threshold=1)
        for _ in range(3):
            response = query(service, dataset="no-such-dataset")
            assert response["code"] == 2
        response = query(service, dataset="no-such-dataset")
        assert "breaker_open" not in response


class TestQuarantine:
    def test_corrupt_disk_index_is_quarantined_and_rebuilt(self, tmp_path):
        index_dir = str(tmp_path / "indices")
        warm = make_service(index_dir=index_dir)
        assert warm.handle_request(
            {"op": "build", "dataset": DATASET}
        )["code"] == 0
        (disk_file,) = [
            name for name in os.listdir(index_dir)
            if name.endswith(".sct2")
        ]
        path = os.path.join(index_dir, disk_file)
        with open(path, "wb") as fh:
            fh.write(b"\x00garbage\xff" * 16)
        # a fresh process (new service, same index_dir) hits the corrupt
        # file, quarantines it, and rebuilds
        cold = make_service(index_dir=index_dir)
        response = query(cold)
        assert response["code"] == 0
        quarantined = os.listdir(os.path.join(index_dir, "quarantine"))
        assert quarantined == [disk_file]
        counters = cold.stats_snapshot()["counters"]
        assert counters["service/index_cache/quarantined"] == 1
        assert counters["service/index_cache/disk_error"] == 1
        # the rebuild re-persisted a good file under the same name
        assert os.path.exists(path)


class TestHTTPStatuses:
    @pytest.fixture()
    def server(self):
        httpd, service = make_server(
            ServiceConfig(port=0, cache_size=2, max_concurrent=1, max_queue=0)
        )
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        try:
            yield base, service
        finally:
            httpd.shutdown()
            httpd.server_close()

    @staticmethod
    def _post(base, payload):
        request = urllib.request.Request(
            base + "/v1/query",
            data=json.dumps(payload).encode(),
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return (
                    response.status,
                    dict(response.headers),
                    response.read(),
                )
        except urllib.error.HTTPError as exc:
            with exc:
                return exc.code, dict(exc.headers), exc.read()

    def test_rejection_maps_to_429_with_retry_after(self, server):
        base, service = server
        gate = service._admission.gate("query")
        assert gate.try_acquire().admitted
        try:
            status, headers, body = self._post(
                base, {"dataset": DATASET, "k": 4}
            )
        finally:
            gate.release()
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        envelope = json.loads(body.splitlines()[0])
        assert envelope["rejected"] is True
        assert validate_result(envelope) == []

    def test_readyz_reflects_saturation_and_drain(self, server):
        base, service = server

        def get(path):
            try:
                with urllib.request.urlopen(base + path, timeout=10) as r:
                    return r.status, json.loads(r.read())
            except urllib.error.HTTPError as exc:
                with exc:
                    return exc.code, json.loads(exc.read())

        assert get("/readyz") == (
            200,
            {
                "status": "ok",
                "draining": False,
                "admission_saturated": False,
            },
        )
        gate = service._admission.gate("query")
        assert gate.try_acquire().admitted
        try:
            status, payload = get("/readyz")
        finally:
            gate.release()
        assert status == 503
        assert payload["status"] == "saturated"
        # healthz stays 200 while merely saturated: the process is alive
        assert get("/healthz")[0] == 200
        service.drain()
        status, payload = get("/readyz")
        assert status == 503
        assert payload["status"] == "draining"


class FakeTransport:
    """Scripted ``_once`` replacement: pops one outcome per call."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def __call__(self, path, body):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestServiceClient:
    def _client(self, outcomes, **kwargs):
        sleeps = []
        client = ServiceClient(
            "http://example.invalid",
            sleep=sleeps.append,
            max_retries=kwargs.pop("max_retries", 3),
            jitter=kwargs.pop("jitter", 0.0),
            **kwargs,
        )
        client._once = FakeTransport(outcomes)
        return client, sleeps

    @staticmethod
    def _body(code=0, **extra):
        envelope = {
            "schema": "repro/service-v1", "op": "query", "code": code,
            "error": None,
        }
        envelope.update(extra)
        return json.dumps(envelope).encode()

    def test_retries_429_honouring_retry_after(self):
        client, sleeps = self._client([
            (429, "2.5", self._body(5)),
            (429, "2.5", self._body(5)),
            (200, None, self._body(0)),
        ])
        envelope = client.query(dataset=DATASET, k=4)
        assert envelope["code"] == 0
        assert sleeps == [2.5, 2.5]

    def test_exponential_backoff_without_retry_after(self):
        client, sleeps = self._client([
            (503, None, b""),
            (503, None, b""),
            (200, None, self._body()),
        ], backoff_base_s=0.25)
        client.query(dataset=DATASET, k=4)
        assert sleeps == [0.25, 0.5]

    def test_connection_errors_are_retried(self):
        client, _ = self._client([
            ConnectionRefusedError("nope"),
            (200, None, self._body()),
        ])
        assert client.query(dataset=DATASET, k=4)["code"] == 0

    def test_gives_up_with_service_unavailable(self):
        client, _ = self._client([(429, "1", self._body(5))] * 4)
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.query(dataset=DATASET, k=4)
        assert excinfo.value.last_status == 429
        assert excinfo.value.attempts == 4

    def test_non_retryable_status_returns_immediately(self):
        client, sleeps = self._client([
            (400, None, self._body(2, error="bad request")),
        ])
        envelope = client.query(dataset=DATASET, k=4)
        assert envelope["code"] == 2
        assert sleeps == []

    def test_jitter_spreads_the_herd(self):
        class FixedRng:
            @staticmethod
            def uniform(a, b):
                return b

        client, sleeps = self._client(
            [(429, "2.0", self._body(5)), (200, None, self._body())],
            jitter=0.1,
        )
        client._rng = FixedRng()
        client.query(dataset=DATASET, k=4)
        assert sleeps == [pytest.approx(2.2)]

    def test_parse_retry_after(self):
        assert _parse_retry_after("3") == 3.0
        assert _parse_retry_after("0.5") == 0.5
        assert _parse_retry_after(None) is None
        assert _parse_retry_after("Wed, 21 Oct 2026 07:28:00 GMT") is None
        assert _parse_retry_after("-2") is None

    def test_against_a_live_server(self):
        httpd, service = make_server(ServiceConfig(port=0, cache_size=2))
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{httpd.server_address[1]}", timeout_s=60
            )
            envelope = client.query(dataset=DATASET, k=4)
            assert envelope["code"] == 0
            assert envelope["result"]["schema"] == "repro/result-v1"
            status, payload = client.readyz()
            assert (status, payload["status"]) == (200, "ok")
            assert "repro_service_requests" in client.metrics() or True
            stats = client.stats()
            assert stats["code"] == 0
        finally:
            httpd.shutdown()
            httpd.server_close()


class TestHotKeyTracker:
    def make(self, threshold=4, cold_windows=2):
        from repro.resilience import HotKeyTracker

        return HotKeyTracker(threshold=threshold, cold_windows=cold_windows)

    def test_promotion_needs_threshold_in_one_window(self):
        tracker = self.make(threshold=4)
        tracker.observe({"a": 3})
        assert not tracker.is_hot("a")
        tracker.observe({"a": 7})  # delta 4 -> hot
        assert tracker.is_hot("a")

    def test_slow_accumulation_never_promotes(self):
        tracker = self.make(threshold=4)
        for total in range(1, 20):
            tracker.observe({"a": total})  # delta 1 every window
        assert not tracker.is_hot("a")

    def test_worker_restart_resets_the_baseline(self):
        tracker = self.make(threshold=4)
        tracker.observe({"a": 100})  # first sight: delta 100 -> hot
        assert tracker.is_hot("a")
        # counters reset (worker restart): total 2 < previous 100 is a
        # fresh baseline of 2, not a negative rate and not delta 2-100
        tracker = self.make(threshold=4)
        tracker.observe({"a": 100})
        tracker.observe({"a": 2})
        assert tracker._totals["a"] == 2

    def test_demotion_after_cold_windows_quiet_polls(self):
        tracker = self.make(threshold=4, cold_windows=2)
        tracker.observe({"a": 4})
        assert tracker.is_hot("a")
        tracker.observe({"a": 4})  # quiet window 1
        assert tracker.is_hot("a")
        tracker.observe({"a": 4})  # quiet window 2 -> demoted
        assert not tracker.is_hot("a")

    def test_any_traffic_resets_the_demotion_countdown(self):
        tracker = self.make(threshold=4, cold_windows=2)
        tracker.observe({"a": 4})
        tracker.observe({"a": 4})  # quiet window 1
        tracker.observe({"a": 5})  # a trickle: countdown resets
        tracker.observe({"a": 5})  # quiet window 1 again
        assert tracker.is_hot("a")
        tracker.observe({"a": 5})  # quiet window 2 -> demoted
        assert not tracker.is_hot("a")

    def test_hot_keys_ordered_hottest_first(self):
        tracker = self.make(threshold=2)
        tracker.observe({"a": 5, "b": 50, "c": 1})
        assert tracker.hot_keys() == ("b", "a")

    def test_snapshot_shape(self):
        tracker = self.make(threshold=2, cold_windows=3)
        tracker.observe({"b": 9, "a": 9, "c": 1})
        assert tracker.snapshot() == {
            "hot": ["a", "b"], "tracked": 3,
            "threshold": 2, "cold_windows": 3,
        }

    def test_validation(self):
        from repro.resilience import HotKeyTracker

        with pytest.raises(InvalidParameterError):
            HotKeyTracker(threshold=0)
        with pytest.raises(InvalidParameterError):
            HotKeyTracker(cold_windows=0)


class TestClientLifecycle:
    def test_close_is_idempotent_and_blocks_further_calls(self):
        client = ServiceClient("http://127.0.0.1:9", max_retries=0)
        client.close()
        client.close()
        with pytest.raises(ServiceUnavailable, match="closed"):
            client.query(dataset=DATASET, k=3)

    def test_context_manager_closes(self):
        with ServiceClient("http://127.0.0.1:9") as client:
            assert client._closed is False
        assert client._closed is True

    def test_rpc_deprecation_warns_exactly_once(self):
        httpd, service = make_server(ServiceConfig(port=0))
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{httpd.server_address[1]}", timeout_s=60
            )
            ServiceClient._rpc_deprecation_warned = False
            with pytest.warns(DeprecationWarning, match="ServiceOutcome"):
                out = client.rpc("query", dataset=DATASET, k=4)
            assert out.ok and out.code == 0
            import warnings as warnings_mod

            with warnings_mod.catch_warnings():
                warnings_mod.simplefilter("error", DeprecationWarning)
                assert client.rpc("query", dataset=DATASET, k=4).ok
        finally:
            ServiceClient._rpc_deprecation_warned = True
            httpd.shutdown()
            httpd.server_close()
