"""repro.parallel: byte-for-byte parity with serial across worker counts."""

import io
import pickle
from multiprocessing import shared_memory

import pytest

from repro import (
    MetricsRecorder,
    ParallelConfig,
    RunOptions,
    densest_subgraph,
)
from repro.core import SCTIndex, sctl, sctl_plus, sctl_star
from repro.core.sampling import sctl_star_sample
from repro.core.exact import sctl_star_exact
from repro.errors import BudgetExhausted
from repro.graph import Graph, gnp_graph, relaxed_caveman_graph
from repro.obs.validate import validate_metrics, validate_trace_lines
from repro.parallel.engine import (
    PathShardEngine,
    _attach_index,
    _quantile_cuts,
    _release_shm,
    _root_chunks,
    _share_index,
)
from repro.resilience import Checkpointer, RunBudget

WORKER_COUNTS = (1, 2, 4)


def _serialized(index):
    buf = io.StringIO()
    index._write(buf)
    return buf.getvalue()


@pytest.fixture(scope="module")
def graphs():
    return {
        "caveman": relaxed_caveman_graph(8, 6, 0.1, seed=7),
        "gnp": gnp_graph(40, 0.25, seed=11),
        "k6+k4": Graph(
            10,
            [(i, j) for i in range(6) for j in range(i + 1, 6)]
            + [(i, j) for i in range(6, 10) for j in range(i + 1, 10)]
            + [(5, 6)],
        ),
    }


class TestQuantileCuts:
    def test_partitions_cover_range(self):
        sizes = [3, 1, 4, 1, 5, 9, 2, 6]
        cuts = _quantile_cuts(sizes, 3)
        assert cuts[0][0] == 0
        assert cuts[-1][1] == len(sizes)
        for (_, a_hi), (b_lo, _) in zip(cuts, cuts[1:]):
            assert a_hi == b_lo

    def test_single_chunk(self):
        assert _quantile_cuts([1, 1], 1) == [(0, 2)]

    def test_empty(self):
        assert _quantile_cuts([], 4) == []


class TestParallelBuild:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_build_byte_identical(self, graphs, workers):
        for graph in graphs.values():
            serial = SCTIndex.build(graph)
            parallel = SCTIndex.build(graph, parallel=workers)
            assert _serialized(serial) == _serialized(parallel)

    def test_build_with_threshold_byte_identical(self, graphs):
        graph = graphs["caveman"]
        serial = SCTIndex.build(graph, threshold=4)
        parallel = SCTIndex.build(graph, threshold=4, parallel=3)
        assert _serialized(serial) == _serialized(parallel)

    def test_more_workers_than_roots(self):
        graph = Graph.complete(4)
        serial = SCTIndex.build(graph)
        parallel = SCTIndex.build(graph, parallel=4)
        assert _serialized(serial) == _serialized(parallel)

    def test_empty_graph(self):
        graph = Graph(3, [])
        assert _serialized(SCTIndex.build(graph, parallel=2)) == _serialized(
            SCTIndex.build(graph)
        )

    def test_build_accepts_config(self, graphs):
        cfg = ParallelConfig(workers=2, chunks_per_worker=2,
                             max_tasks_per_child=4)
        graph = graphs["gnp"]
        assert _serialized(SCTIndex.build(graph, parallel=cfg)) == _serialized(
            SCTIndex.build(graph)
        )


class TestParallelSweeps:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_iter_paths_order_identical(self, graphs, workers):
        graph = graphs["caveman"]
        index = SCTIndex.build(graph)
        for k in (3, 4):
            serial = [(p.holds, p.pivots) for p in index.iter_paths(k)]
            sharded = [
                (p.holds, p.pivots)
                for p in index.iter_paths(k, parallel=workers)
            ]
            assert serial == sharded

    def test_counting_parity(self, graphs):
        graph = graphs["gnp"]
        index = SCTIndex.build(graph)
        opts = RunOptions(parallel=2)
        for k in (3, 4, 5):
            assert index.count_k_cliques(k, options=opts) == \
                index.count_k_cliques(k)
            assert index.per_vertex_counts(k, options=opts) == \
                index.per_vertex_counts(k)

    def test_engine_reuse_and_close_idempotent(self, graphs):
        index = SCTIndex.build(graphs["caveman"])
        engine = PathShardEngine(index, ParallelConfig(workers=2))
        try:
            first = engine.count_cliques(3)
            again = engine.count_cliques(3)
            assert first == again
        finally:
            engine.close()
            engine.close()  # second close is a no-op


class TestParallelRefinement:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_algorithms_byte_identical(self, graphs, workers):
        for graph in graphs.values():
            index = SCTIndex.build(graph)
            for k in (3, 4):
                for fn, kwargs in (
                    (sctl, {}),
                    (sctl_plus, {"graph": graph}),
                    (sctl_star, {"graph": graph}),
                ):
                    serial = fn(index, k, iterations=4, **kwargs)
                    sharded = fn(
                        index, k, iterations=4, parallel=workers, **kwargs
                    )
                    assert serial.vertices == sharded.vertices
                    assert serial.clique_count == sharded.clique_count
                    assert serial.upper_bound == sharded.upper_bound
                    assert serial.stats["weights"] == sharded.stats["weights"]

    def test_sample_byte_identical(self, graphs):
        index = SCTIndex.build(graphs["caveman"])
        serial = sctl_star_sample(index, 3, sample_size=40, seed=3)
        sharded = sctl_star_sample(
            index, 3, sample_size=40, seed=3, parallel=2
        )
        assert serial.vertices == sharded.vertices
        assert serial.clique_count == sharded.clique_count

    def test_exact_identical(self, graphs):
        graph = graphs["k6+k4"]
        serial = sctl_star_exact(graph, 3, sample_size=50, iterations=3)
        sharded = sctl_star_exact(
            graph, 3, sample_size=50, iterations=3, parallel=2
        )
        assert serial.vertices == sharded.vertices
        assert serial.exact and sharded.exact
        assert serial.clique_count == sharded.clique_count

    @pytest.mark.parametrize(
        "method", ["sctl", "sctl+", "sctl*", "sctl*-sample"]
    )
    def test_facade_parity(self, graphs, method):
        graph = graphs["caveman"]
        serial = densest_subgraph(graph, 3, method=method, iterations=3,
                                  sample_size=40)
        sharded = densest_subgraph(graph, 3, method=method, iterations=3,
                                   sample_size=40, parallel=2)
        assert serial.vertices == sharded.vertices
        assert serial.clique_count == sharded.clique_count

    def test_workers_one_uses_no_pool(self, graphs):
        # ParallelConfig(workers=1) is documented as literally-serial
        index = SCTIndex.build(graphs["caveman"])
        result = sctl_star(index, 3, iterations=2, parallel=1)
        assert result.vertices == sctl_star(index, 3, iterations=2).vertices


class TestParallelBudget:
    def test_exhausted_before_refinement_is_well_formed(self, graphs):
        index = SCTIndex.build(graphs["caveman"])
        serial = sctl_star(
            index, 3, iterations=5, budget=RunBudget(wall_seconds=0),
        )
        sharded = sctl_star(
            index, 3, iterations=5,
            budget=RunBudget(wall_seconds=0), parallel=2,
        )
        for result in (serial, sharded):
            assert result.is_partial
            assert result.iterations == 0
            assert result.reason
            assert result.stage
        assert serial.vertices == sharded.vertices
        assert serial.valid == sharded.valid
        assert serial.stats["weights"] == sharded.stats["weights"]

    def test_partial_matches_serial_partial(self, graphs):
        index = SCTIndex.build(graphs["caveman"])
        serial = sctl_star(
            index, 3, iterations=5, budget=RunBudget(max_iterations=2),
        )
        sharded = sctl_star(
            index, 3, iterations=5, budget=RunBudget(max_iterations=2),
            parallel=2,
        )
        assert serial.is_partial and sharded.is_partial
        assert serial.valid and sharded.valid
        assert serial.iterations == sharded.iterations == 2
        assert serial.vertices == sharded.vertices
        assert serial.stats["weights"] == sharded.stats["weights"]

    def test_facade_build_exhaustion_under_parallel(self, graphs):
        result = densest_subgraph(
            graphs["caveman"], 3, method="sctl*",
            budget=RunBudget(wall_seconds=0), parallel=2,
        )
        assert result.is_partial
        assert not result.valid
        assert result.stage == "index/build"


class TestCheckpointInterop:
    def test_serial_checkpoint_resumed_by_parallel_build(self, tmp_path):
        graph = relaxed_caveman_graph(10, 8, 0.08, seed=2)
        clean = SCTIndex.build(graph)
        ckpt_dir = tmp_path / "ck"
        calls = [0.0]

        def clock():
            calls[0] += 1.0
            return calls[0]

        budget = RunBudget(wall_seconds=1.5, clock=clock)
        try:
            SCTIndex.build(graph, budget=budget, checkpoint=str(ckpt_dir))
        except BudgetExhausted:
            pass
        resumed = SCTIndex.build(
            graph, checkpoint=str(ckpt_dir), resume=True, parallel=2
        )
        assert _serialized(resumed) == _serialized(clean)

    def test_parallel_checkpoint_resumed_by_serial_build(self, tmp_path):
        graph = relaxed_caveman_graph(8, 6, 0.1, seed=7)
        clean = SCTIndex.build(graph)
        ckpt_dir = tmp_path / "ck"
        with pytest.raises(BudgetExhausted):
            SCTIndex.build(
                graph, budget=RunBudget(wall_seconds=0),
                checkpoint=str(ckpt_dir), parallel=2,
            )
        assert Checkpointer(str(ckpt_dir)).load("sct-build") is not None
        resumed = SCTIndex.build(
            graph, checkpoint=str(ckpt_dir), resume=True
        )
        assert _serialized(resumed) == _serialized(clean)


class TestObservabilityComposition:
    def test_trace_stays_valid_with_workers(self, graphs, tmp_path):
        graph = graphs["caveman"]
        sink = io.StringIO()
        recorder = MetricsRecorder(sink=sink)
        opts = RunOptions(recorder=recorder, parallel=2)
        index = SCTIndex.build(graph, options=opts)
        sctl_star(index, 3, iterations=2, options=opts)
        lines = sink.getvalue().splitlines()
        assert validate_trace_lines(lines) == []
        assert validate_metrics(recorder.snapshot()) == []
        assert recorder.counters.get("parallel/build_chunks")

    def test_counters_match_serial(self, graphs):
        graph = graphs["caveman"]
        index = SCTIndex.build(graph)
        rec_serial, rec_parallel = MetricsRecorder(), MetricsRecorder()
        sctl_star(index, 3, iterations=3, recorder=rec_serial)
        sctl_star(index, 3, iterations=3, recorder=rec_parallel, parallel=2)
        for key in (
            "refine/iterations",
            "refine/paths_swept",
            "refine/cliques_processed",
            "refine/weight_updates",
        ):
            assert rec_serial.counters.get(key) == \
                rec_parallel.counters.get(key), key

    def test_absorb_merges_and_nests(self):
        inner = MetricsRecorder()
        inner.counter("x", 3)
        inner.gauge("g", 7)
        with inner.span("work"):
            pass
        sink = io.StringIO()
        outer = MetricsRecorder(sink=sink)
        outer.counter("x", 1)
        with outer.span("top"):
            outer.absorb(inner.snapshot(), prefix="worker")
        assert outer.counters["x"] == 4
        assert outer.gauges["g"] == 7
        assert any(r.path == "top/worker/work" for r in outer.spans)
        assert validate_trace_lines(sink.getvalue().splitlines()) == []


class TestSharedMemoryBroadcast:
    """The index crosses the process boundary once, via shared memory.

    The engine used to pickle the whole column state into every worker's
    initializer; these tests pin the replacement — a few-hundred-byte
    metadata tuple plus one kernel-shared block.
    """

    def test_meta_pickles_small(self, graphs):
        index = SCTIndex.build(graphs["gnp"])
        shm, meta = _share_index(index)
        try:
            meta_bytes = len(pickle.dumps(meta))
            assert meta_bytes < 2048
            # the columns themselves dwarf the broadcast metadata
            assert shm.size > 10 * meta_bytes
        finally:
            shm.close()
            shm.unlink()

    def test_attached_index_is_zero_copy_and_correct(self, graphs):
        index = SCTIndex.build(graphs["caveman"])
        shm, meta = _share_index(index)
        attached, attached_shm = _attach_index(meta)
        try:
            assert attached.backing == "shared_memory"
            assert _serialized(attached) == _serialized(index)
        finally:
            attached.close()
            try:
                attached_shm.close()
            except BufferError:
                pass
            _release_shm(shm)

    def test_engine_records_one_broadcast(self, graphs):
        index = SCTIndex.build(graphs["gnp"])
        recorder = MetricsRecorder()
        with PathShardEngine(
            index, ParallelConfig(workers=2), recorder=recorder
        ) as engine:
            first = engine.count_cliques(3)
            again = engine.count_cliques(4)
            assert first and again
            assert recorder.gauges["parallel/broadcast_mode"] == \
                "shared_memory"
            # one pool, one copy: the counter totals a single block, even
            # across repeated sweeps and multiple workers
            assert recorder.counters["parallel/broadcast_bytes"] == \
                engine._shm.size

    def test_close_unlinks_broadcast_block(self, graphs):
        index = SCTIndex.build(graphs["caveman"])
        engine = PathShardEngine(index, ParallelConfig(workers=2))
        engine.count_cliques(3)
        name = engine._shm.name
        engine.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestRootChunking:
    def test_chunks_weighted_by_exact_subtree_sizes(self, graphs):
        index = SCTIndex.build(graphs["gnp"])
        recorder = MetricsRecorder()
        chunks = _root_chunks(index, 4, recorder)
        roots = index._root_ids()
        # contiguous cover of the root positions, in order
        assert chunks[0][0] == 0
        assert chunks[-1][1] == len(roots)
        assert all(a[1] == b[0] for a, b in zip(chunks, chunks[1:]))
        # healthy index: the exact-size path, no fallback recorded
        assert "parallel/chunking-fallback" not in recorder.counters
        sizes = [index._subtree[r] for r in roots]
        heaviest = max(sum(sizes[lo:hi]) for lo, hi in chunks)
        assert heaviest < sum(sizes)  # actually split by weight

    def test_fallback_counter_on_corrupt_sizes(self, graphs):
        index = SCTIndex.build(graphs["caveman"])
        index._subtree[index._root_ids()[0]] = 0  # simulate corruption
        recorder = MetricsRecorder()
        chunks = _root_chunks(index, 2, recorder)
        assert recorder.counters["parallel/chunking-fallback"] == 1
        assert chunks[0][0] == 0
        assert chunks[-1][1] == len(index._root_ids())
