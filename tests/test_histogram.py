"""repro.obs histograms: quantiles, exact merges, Prometheus round-trips."""

import io
import threading

import pytest

from repro import MetricsRecorder
from repro.core import SCTIndex, sctl_star
from repro.graph import relaxed_caveman_graph
from repro.obs import (
    DEFAULT_BOUNDS,
    Histogram,
    default_bounds,
    histogram_from_buckets,
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
)
from repro.obs.validate import validate_metrics, validate_trace_lines


class TestHistogramBasics:
    def test_default_bounds_are_shared_and_increasing(self):
        assert default_bounds() == DEFAULT_BOUNDS
        assert all(
            b2 > b1 for b1, b2 in zip(DEFAULT_BOUNDS, DEFAULT_BOUNDS[1:])
        )
        # wide enough for microsecond latencies and count-valued series
        assert DEFAULT_BOUNDS[0] == 1e-6
        assert DEFAULT_BOUNDS[-1] == 5e8

    def test_observe_uses_upper_inclusive_buckets(self):
        hist = Histogram(bounds=[1.0, 2.0, 4.0])
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 9.0):
            hist.observe(value)
        # le=1: {0.5, 1.0}; le=2: {1.5, 2.0}; le=4: {3.0}; +Inf: {9.0}
        assert hist.counts == [2, 2, 1, 1]
        assert hist.count == 6
        assert hist.total == pytest.approx(17.0)

    def test_quantile_is_the_bucket_upper_bound(self):
        hist = Histogram(bounds=[1.0, 2.0, 4.0])
        for value in (0.5, 0.6, 0.7, 3.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(0.75) == 1.0
        assert hist.quantile(1.0) == 4.0

    def test_quantile_empty_and_bounds_errors(self):
        hist = Histogram()
        assert hist.quantile(0.5) is None
        assert hist.mean() is None
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_overflow_reports_largest_finite_bound(self):
        hist = Histogram(bounds=[1.0, 2.0])
        hist.observe(100.0)
        assert hist.counts[-1] == 1
        assert hist.quantile(0.99) == 2.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[])
        with pytest.raises(ValueError):
            Histogram(bounds=[1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram(bounds=[2.0, 1.0])

    def test_summary_digest(self):
        hist = Histogram()
        for value in (0.001, 0.002, 0.003):
            hist.observe(value)
        digest = hist.summary()
        assert digest["count"] == 3
        assert digest["sum"] == pytest.approx(0.006)
        assert digest["p50"] == hist.quantile(0.50)
        assert digest["p99"] == hist.quantile(0.99)


class TestHistogramMerging:
    def test_absorb_is_exact_bucketwise_addition(self):
        values = [0.0007, 0.003, 0.02, 0.5, 1.7, 42.0, 0.003, 0.02]
        direct = Histogram()
        for value in values:
            direct.observe(value)
        # split the samples over 4 "workers" and merge the snapshots
        merged = Histogram()
        for start in range(4):
            worker = Histogram()
            for value in values[start::4]:
                worker.observe(value)
            merged.absorb(worker.snapshot())
        assert merged.counts == direct.counts
        assert merged.count == direct.count
        assert merged.total == pytest.approx(direct.total)
        for q in (0.5, 0.9, 0.95, 0.99):
            assert merged.quantile(q) == direct.quantile(q)

    def test_absorb_rejects_mismatched_bounds(self):
        ours = Histogram(bounds=[1.0, 2.0])
        theirs = Histogram(bounds=[1.0, 3.0])
        with pytest.raises(ValueError):
            ours.absorb(theirs.snapshot())
        snap = Histogram(bounds=[1.0, 2.0]).snapshot()
        snap["counts"] = [0, 0]  # wrong length
        with pytest.raises(ValueError):
            ours.absorb(snap)

    def test_from_snapshot_round_trip(self):
        hist = Histogram()
        for value in (0.001, 0.5, 12.0):
            hist.observe(value)
        clone = Histogram.from_snapshot(hist.snapshot())
        assert clone.counts == hist.counts
        assert clone.bounds == hist.bounds
        assert clone.quantile(0.99) == hist.quantile(0.99)

    def test_recorder_absorb_merges_histograms_exactly(self):
        values = [0.0007, 0.003, 0.02, 0.5, 1.7, 42.0, 0.02, 0.003]
        direct = MetricsRecorder()
        for value in values:
            direct.observe("latency", value)
        parent = MetricsRecorder()
        for start in range(4):
            worker = MetricsRecorder()
            for value in values[start::4]:
                worker.observe("latency", value)
            parent.absorb(worker.snapshot())
        assert (
            parent.histograms["latency"].counts
            == direct.histograms["latency"].counts
        )
        assert parent.quantile("latency", 0.99) == direct.quantile(
            "latency", 0.99
        )
        assert validate_metrics(parent.snapshot()) == []


class TestExposition:
    def test_render_parse_round_trip_rederives_quantiles(self):
        rec = MetricsRecorder()
        rec.counter("service/requests/query", 7)
        rec.gauge("service/queue_depth", 3)
        rec.gauge("budget/reason", "wall")  # string gauge: skipped
        for value in (0.0001, 0.002, 0.002, 0.7, 3.0):
            rec.observe("service/latency/query/warm", value)
        text = render_exposition(rec.snapshot())
        parsed = parse_exposition(text)
        assert parsed["repro_service_requests_query_total"]["value"] == 7
        assert parsed["repro_service_queue_depth"]["value"] == 3
        assert "budget" not in text
        metric = parsed["repro_service_latency_query_warm"]
        assert metric["type"] == "histogram"
        cumulative = [count for _, count in metric["buckets"]]
        assert cumulative == sorted(cumulative)
        assert metric["buckets"][-1][0] == float("inf")
        assert metric["buckets"][-1][1] == metric["count"] == 5
        bounds, counts = histogram_from_buckets(metric["buckets"])
        rebuilt = Histogram.from_snapshot({
            "bounds": bounds, "counts": counts,
            "sum": metric["sum"], "count": metric["count"],
        })
        original = rec.histograms["service/latency/query/warm"]
        for q in (0.5, 0.95, 0.99):
            assert rebuilt.quantile(q) == original.quantile(q)

    def test_sanitize_metric_name(self):
        assert (
            sanitize_metric_name("service/latency/query")
            == "repro_service_latency_query"
        )
        assert sanitize_metric_name("9lives", namespace="") == "_9lives"


class TestPipelineHistograms:
    def test_stage_histograms_recorded_and_trace_valid(self):
        graph = relaxed_caveman_graph(6, 6, 0.1, seed=3)
        sink = io.StringIO()
        rec = MetricsRecorder(sink=sink)
        index = SCTIndex.build(graph, recorder=rec)
        sctl_star(index, 3, iterations=3, recorder=rec)
        assert rec.histograms["stage/index_build"].count == 1
        refine = rec.histograms["stage/refine_round"]
        assert refine.count == 3
        assert refine.total == pytest.approx(
            rec.span_seconds("refine/iteration"), rel=1e-6
        )
        per_round = rec.histograms["refine/paths_per_round"]
        assert per_round.count == 3
        assert validate_trace_lines(sink.getvalue().splitlines()) == []
        assert validate_metrics(rec.snapshot()) == []

    def test_parallel_histograms_merge_bucket_exact_vs_serial(self):
        graph = relaxed_caveman_graph(8, 6, 0.1, seed=7)
        index = SCTIndex.build(graph)
        serial, parallel = MetricsRecorder(), MetricsRecorder()
        sctl_star(index, 3, iterations=4, recorder=serial)
        sctl_star(index, 3, iterations=4, recorder=parallel, parallel=4)
        # paths-per-round is a deterministic distribution (path parity),
        # so the merged worker snapshots must land in identical buckets
        key = "refine/paths_per_round"
        assert parallel.histograms[key].counts == serial.histograms[key].counts
        assert parallel.histograms[key].count == serial.histograms[key].count
        # the parallel run also collected per-chunk sweep distributions
        chunk_keys = [
            name for name in parallel.histograms
            if name.startswith("parallel/chunk_seconds/")
        ]
        assert chunk_keys
        assert all(
            parallel.histograms[name].count > 0 for name in chunk_keys
        )


class TestThreadSafety:
    def test_eight_threads_hammering_one_recorder(self):
        rec = MetricsRecorder()
        threads, per_thread = 8, 2000

        def hammer(i):
            for _ in range(per_thread):
                rec.counter("shared")
                rec.counter(f"mine/{i}")
                rec.observe("latency", 0.001)
                rec.event("tick")

        pool = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert rec.counters["shared"] == threads * per_thread
        for i in range(threads):
            assert rec.counters[f"mine/{i}"] == per_thread
        assert rec.counters["events/tick"] == threads * per_thread
        assert rec.histograms["latency"].count == threads * per_thread
        assert validate_metrics(rec.snapshot()) == []
