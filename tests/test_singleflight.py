"""SingleFlight coalescing — concurrency regressions.

The follower-exception test pins the satellite bugfix: every follower
used to re-raise the leader's *exact* exception instance, so concurrent
``raise`` statements in N threads mutated the shared ``__traceback__``
while other threads were formatting it, garbling stack traces and
cross-chaining ``__cause__`` between unrelated requests.
"""

import threading
import time
import traceback

import pytest

from repro.service.singleflight import (
    LeaderDied,
    SingleFlight,
    _Call,
    _follower_error,
)


def _wait_for_blocked_followers(group, key, count, timeout=10.0):
    """Block until ``count`` followers wait on the in-flight call's event.

    Uses the CPython-internal waiter list of ``threading.Event`` when
    available; falls back to a grace sleep otherwise.  Only the *tests*
    depend on this — it makes the coalescing window deterministic.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with group._lock:
            call = group._calls.get(key)
        waiters = getattr(
            getattr(getattr(call, "event", None), "_cond", None), "_waiters", None
        )
        if waiters is None:
            time.sleep(0.5)  # no introspection on this interpreter
            return
        if len(waiters) >= count:
            return
        time.sleep(0.001)
    raise AssertionError(f"followers never blocked on flight {key!r}")


class _BoomError(RuntimeError):
    pass


def _run_flight(group, key, fn, n_followers):
    """One leader + N followers, synchronised so all coalesce."""
    leader_entered = threading.Event()
    release_leader = threading.Event()
    followers_ready = threading.Barrier(n_followers + 1)

    def leading_fn():
        leader_entered.set()
        release_leader.wait(timeout=10)
        return fn()

    outcomes = [None] * (n_followers + 1)

    def leader():
        try:
            outcomes[0] = ("value", group.do(key, leading_fn))
        except BaseException as exc:  # noqa: BLE001 - recording outcome
            outcomes[0] = ("error", exc, traceback.format_exc())

    def follower(slot):
        followers_ready.wait(timeout=10)
        try:
            outcomes[slot] = ("value", group.do(key, fn))
        except BaseException as exc:  # noqa: BLE001 - recording outcome
            outcomes[slot] = ("error", exc, traceback.format_exc())

    threads = [threading.Thread(target=leader)]
    threads += [
        threading.Thread(target=follower, args=(slot,))
        for slot in range(1, n_followers + 1)
    ]
    threads[0].start()
    assert leader_entered.wait(timeout=10)
    for t in threads[1:]:
        t.start()
    followers_ready.wait(timeout=10)
    # only release the leader once every follower is parked on the
    # in-flight call's event, so all of them truly coalesce
    _wait_for_blocked_followers(group, key, n_followers)
    release_leader.set()
    for t in threads:
        t.join(timeout=10)
    return outcomes


class TestCoalescing:
    def test_single_execution_many_callers(self):
        group = SingleFlight()
        calls = []

        def fn():
            calls.append(1)
            return 42

        outcomes = _run_flight(group, "k", fn, n_followers=8)
        assert len(calls) == 1
        leaders = [o for o in outcomes if o == ("value", (42, True))]
        followers = [o for o in outcomes if o == ("value", (42, False))]
        assert len(leaders) == 1
        assert len(followers) == 8
        assert group.in_flight() == 0

    def test_key_forgotten_after_completion(self):
        group = SingleFlight()
        assert group.do("k", lambda: 1) == (1, True)
        # not coalesced with the finished flight: runs again, as leader
        assert group.do("k", lambda: 2) == (2, True)


class TestFollowerExceptions:
    def test_each_follower_gets_a_distinct_instance(self):
        group = SingleFlight()

        def fn():
            raise _BoomError("cold build failed")

        outcomes = _run_flight(group, "k", fn, n_followers=6)
        errors = [o[1] for o in outcomes if o[0] == "error"]
        assert len(errors) == 7  # leader + 6 followers
        assert all(isinstance(e, _BoomError) for e in errors)
        assert all(str(e) == "cold build failed" for e in errors)
        # exactly one original (the leader's); every follower instance is
        # distinct from it and from each other follower's
        assert len({id(e) for e in errors}) == 7 - errors.count(None)
        originals = [e for e in errors if e.__cause__ is None]
        followers = [e for e in errors if e.__cause__ is not None]
        assert len(originals) == 1
        assert len(followers) == 6
        assert all(f.__cause__ is originals[0] for f in followers)

    def test_tracebacks_do_not_interleave(self):
        group = SingleFlight()

        def fn():
            raise _BoomError("boom")

        outcomes = _run_flight(group, "k", fn, n_followers=6)
        errors = [o[1] for o in outcomes if o[0] == "error"]
        tracebacks = {id(e.__traceback__) for e in errors}
        # every thread formatted its own traceback object; sharing one
        # instance across threads is exactly the fixed bug
        assert len(tracebacks) == len(errors)
        for o in outcomes:
            assert o[0] == "error"
            assert "_BoomError" in o[2]

    def test_follower_error_preserves_attributes(self):
        original = _BoomError("msg")
        original.detail = {"stage": "build"}
        clone = _follower_error(original)
        assert clone is not original
        assert type(clone) is _BoomError
        assert clone.args == ("msg",)
        assert clone.detail == {"stage": "build"}
        assert clone.__cause__ is original
        assert clone.__traceback__ is None

    def test_uncopyable_exception_falls_back_to_original(self):
        class Stubborn(RuntimeError):
            def __reduce__(self):
                raise TypeError("no copies")

            def __copy__(self):
                raise TypeError("no copies")

        original = Stubborn("x")
        assert _follower_error(original) is original

    def test_new_flight_after_failure(self):
        group = SingleFlight()
        with pytest.raises(_BoomError):
            group.do("k", self._raise)
        # the failed flight is forgotten; the next call runs fresh
        assert group.do("k", lambda: "ok") == ("ok", True)

    @staticmethod
    def _raise():
        raise _BoomError("once")


def _dead_thread():
    """A real Thread object that has started and finished."""
    t = threading.Thread(target=lambda: None)
    t.start()
    t.join()
    return t


class TestLeaderDeath:
    """Satellite (b): a dead leader must not hang followers forever."""

    def test_system_exit_in_leader_wakes_followers(self):
        group = SingleFlight()

        def fn():
            raise SystemExit(3)

        outcomes = _run_flight(group, "k", fn, n_followers=4)
        leader_out = outcomes[0]
        assert leader_out[0] == "error"
        assert isinstance(leader_out[1], SystemExit)
        # followers get per-thread copies (not a hang, not garbage)
        for out in outcomes[1:]:
            assert out[0] == "error"
            assert isinstance(out[1], SystemExit)
        assert group.in_flight() == 0

    def test_follower_raises_leader_died_when_leader_vanishes(self):
        group = SingleFlight(poll_interval=0.02)
        call = _Call()
        call.leader_thread = _dead_thread()
        group._calls["k"] = call

        # the do() entry adopts the stale call: it becomes the new
        # leader of a FRESH flight rather than waiting on the corpse
        value, leader = group.do("k", lambda: "fresh")
        assert (value, leader) == ("fresh", True)

    def test_parked_follower_unblocks_with_leader_died(self):
        group = SingleFlight(poll_interval=0.02)
        call = _Call()
        # a live placeholder leader that will die without setting the event
        release = threading.Event()

        def fake_leader():
            release.wait(timeout=10)

        leader_thread = threading.Thread(target=fake_leader)
        leader_thread.start()
        call.leader_thread = leader_thread
        group._calls["k"] = call

        outcome = {}

        def follower():
            try:
                outcome["value"] = group.do("k", lambda: "never")
            except LeaderDied as exc:
                outcome["error"] = exc

        t = threading.Thread(target=follower)
        t.start()
        time.sleep(0.05)  # follower is parked on the event
        release.set()  # the "leader" exits without completing the flight
        leader_thread.join(timeout=5)
        t.join(timeout=10)
        assert not t.is_alive(), "follower hung on a dead leader"
        assert isinstance(outcome.get("error"), LeaderDied)
        assert "died" in str(outcome["error"])
        assert group.in_flight() == 0

    def test_stale_key_does_not_leak(self):
        group = SingleFlight(poll_interval=0.02)
        call = _Call()
        call.leader_thread = _dead_thread()
        group._calls["k"] = call
        group.do("k", lambda: 1)
        assert group.in_flight() == 0
        # the adopted-over call's event fired, so any straggler parked on
        # the old call object also woke with LeaderDied
        assert call.event.is_set()
        assert isinstance(call.error, LeaderDied)
