"""The greedy peeling baseline."""

import pytest

from repro.baselines.peeling import greedy_peeling
from repro.cliques import count_k_cliques_naive, densest_subgraph_bruteforce
from repro.errors import InvalidParameterError
from repro.graph import Graph, gnp_graph


class TestGreedyPeeling:
    def test_empty_graph(self):
        assert greedy_peeling(Graph(4), 3).vertices == []

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            greedy_peeling(Graph(3), 1)

    def test_finds_the_k6(self, k6_plus_k4):
        result = greedy_peeling(k6_plus_k4, 3)
        assert result.vertices == [0, 1, 2, 3, 4, 5]
        assert result.density == pytest.approx(20 / 6)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_one_over_k_guarantee(self, seed, k):
        g = gnp_graph(11, 0.55, seed=seed)
        if count_k_cliques_naive(g, k) == 0:
            pytest.skip("no k-clique")
        _, optimal = densest_subgraph_bruteforce(g, k)
        result = greedy_peeling(g, k)
        assert result.density >= optimal / k - 1e-9
        assert result.density <= optimal + 1e-9

    def test_reported_count_is_true_count(self, caveman):
        result = greedy_peeling(caveman, 3)
        sub, _ = caveman.induced_subgraph(result.vertices)
        assert count_k_cliques_naive(sub, 3) == result.clique_count

    def test_at_least_as_good_as_coreapp(self, small_random):
        """Peeling keeps the best suffix, CoreApp keeps the innermost core;
        on the same peel metric peeling can only win."""
        from repro.baselines import core_app

        peel = greedy_peeling(small_random, 3)
        core = core_app(small_random, 3)
        assert peel.density >= core.density - 1e-9

    def test_peel_order_is_permutation(self, small_random):
        result = greedy_peeling(small_random, 3)
        order = result.stats["peel_order"]
        assert sorted(order) == list(range(small_random.n))
