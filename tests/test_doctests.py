"""Run the doctests embedded in library docstrings."""

import doctest

import pytest

import repro.graph.graph

MODULES_WITH_DOCTESTS = [
    repro.graph.graph,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0
