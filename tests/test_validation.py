"""Independent result verification."""

import pytest

from repro.core import DensestSubgraphResult, SCTIndex, sctl_star, sctl_star_exact
from repro.core.validation import verify_result
from repro.graph import Graph, gnp_graph


class TestVerifyResult:
    def test_valid_exact_result_passes(self, k6_plus_k4):
        result = sctl_star_exact(k6_plus_k4, 3, sample_size=50)
        report = verify_result(k6_plus_k4, result)
        assert report.ok
        assert report.optimality_checked
        assert report.recounted_cliques == result.clique_count

    def test_valid_approx_result_passes_without_optimality(self, small_random):
        index = SCTIndex.build(small_random)
        result = sctl_star(index, 3, iterations=5)
        report = verify_result(small_random, result)
        assert report.ok
        assert not report.optimality_checked

    def test_wrong_count_detected(self, small_random):
        forged = DensestSubgraphResult(
            vertices=[0, 1, 2], clique_count=999, k=3, algorithm="forged"
        )
        report = verify_result(small_random, forged)
        assert not report.ok
        assert any("mismatch" in p for p in report.problems)

    def test_duplicate_vertices_detected(self):
        forged = DensestSubgraphResult(
            vertices=[0, 0, 1], clique_count=0, k=3, algorithm="forged"
        )
        report = verify_result(Graph.complete(3), forged)
        assert not report.ok

    def test_out_of_range_vertices_detected(self):
        forged = DensestSubgraphResult(
            vertices=[0, 99], clique_count=0, k=3, algorithm="forged"
        )
        assert not verify_result(Graph.complete(3), forged).ok

    def test_suboptimal_exact_claim_detected(self, k6_plus_k4):
        # claim the K4 is the exact optimum while the K6 exists
        forged = DensestSubgraphResult(
            vertices=[6, 7, 8, 9], clique_count=4, k=3,
            algorithm="forged", exact=True,
        )
        report = verify_result(k6_plus_k4, forged)
        assert not report.ok
        assert any("not optimal" in p for p in report.problems)

    def test_empty_with_nonzero_count_detected(self):
        forged = DensestSubgraphResult(
            vertices=[], clique_count=5, k=3, algorithm="forged"
        )
        assert not verify_result(Graph.complete(4), forged).ok

    def test_bool_protocol(self, k6_plus_k4):
        result = sctl_star_exact(k6_plus_k4, 3, sample_size=50)
        assert verify_result(k6_plus_k4, result)

    @pytest.mark.parametrize("seed", range(3))
    def test_every_algorithm_survives_verification(self, seed):
        from repro import densest_subgraph

        g = gnp_graph(15, 0.45, seed=seed)
        for method in ("sctl*", "kcl", "coreapp", "peel", "sctl*-exact"):
            result = densest_subgraph(g, 3, method=method, iterations=8)
            assert verify_result(g, result), method
