"""Clique-count upper bounds and index statistics."""

from math import comb

import pytest

from repro.cliques import (
    clique_count_upper_bound,
    count_k_cliques_naive,
    degeneracy_clique_bound,
    kruskal_katona_clique_bound,
)
from repro.core import SCTIndex
from repro.errors import InvalidParameterError
from repro.graph import Graph, gnp_graph, grid_graph


class TestBoundsDominateExactCounts:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_degeneracy_bound(self, seed, k):
        g = gnp_graph(14, 0.5, seed=seed)
        assert degeneracy_clique_bound(g, k) >= count_k_cliques_naive(g, k)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_kruskal_katona_bound(self, seed, k):
        g = gnp_graph(14, 0.5, seed=seed)
        assert kruskal_katona_clique_bound(g, k) >= count_k_cliques_naive(g, k)

    def test_bounds_tight_on_complete_graph(self):
        g = Graph.complete(8)
        for k in range(2, 9):
            assert kruskal_katona_clique_bound(g, k) == pytest.approx(comb(8, k))
            assert degeneracy_clique_bound(g, k) >= comb(8, k)

    def test_combined_bound_takes_minimum(self):
        g = gnp_graph(20, 0.3, seed=1)
        combined = clique_count_upper_bound(g, 4)
        assert combined <= degeneracy_clique_bound(g, 4)
        assert combined <= kruskal_katona_clique_bound(g, 4)

    def test_triangle_free_graph(self):
        g = grid_graph(6, 6)
        assert degeneracy_clique_bound(g, 3) >= 0
        assert count_k_cliques_naive(g, 3) == 0

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            degeneracy_clique_bound(Graph(3), 0)
        with pytest.raises(InvalidParameterError):
            kruskal_katona_clique_bound(Graph(3), 0)

    def test_k_one_is_vertex_count(self):
        g = gnp_graph(10, 0.3, seed=2)
        assert degeneracy_clique_bound(g, 1) == 10
        assert kruskal_katona_clique_bound(g, 1) == 10.0


class TestIndexStatistics:
    def test_counts_are_consistent(self):
        g = gnp_graph(16, 0.45, seed=4)
        index = SCTIndex.build(g)
        stats = index.statistics()
        assert stats["holds"] + stats["pivots"] == stats["tree_nodes"]
        assert stats["leaves"] == index.n_leaves
        assert stats["max_depth"] == index.max_clique_size
        assert sum(stats["leaf_depth_histogram"].values()) == stats["leaves"]
        assert max(stats["leaf_depth_histogram"]) == stats["max_depth"]

    def test_complete_graph_structure(self):
        # every vertex roots one subtree: path i holds vertex i and pivots
        # over its out-neighbours, so K5 yields 5 chains of depths 5..1
        index = SCTIndex.build(Graph.complete(5))
        stats = index.statistics()
        assert stats["leaves"] == 5
        assert stats["holds"] == 5
        assert stats["pivots"] == 10
        assert stats["leaf_depth_histogram"] == {1: 1, 2: 1, 3: 1, 4: 1, 5: 1}
        assert stats["mean_leaf_depth"] == 3.0

    def test_empty_graph(self):
        stats = SCTIndex.build(Graph(0)).statistics()
        assert stats["tree_nodes"] == 0
        assert stats["leaves"] == 0
        assert stats["mean_leaf_depth"] == 0.0
