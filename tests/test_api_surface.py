"""Public-API surface snapshot: names and signatures are a contract.

If a change here is intentional, update the snapshot in the same commit
and call it out in the changelog — downstream code imports these names
and passes these keywords.
"""

import inspect
import warnings

import pytest

import repro

EXPECTED_ALL = sorted([
    "Graph",
    "Hypergraph",
    "SCTIndex",
    "SCTPath",
    "SCTPathView",
    "DenseSubgraphResult",
    "DensestSubgraphResult",
    "RESULT_SCHEMA",
    "densest_subgraph",
    "sctl",
    "sctl_plus",
    "sctl_star",
    "sctl_star_sample",
    "sctl_star_exact",
    "kcl",
    "kcl_sample",
    "kcl_exact",
    "core_app",
    "core_exact",
    "greedy_peeling",
    "density_profile",
    "DensityProfile",
    "top_dense_subgraphs",
    "DirtyRegion",
    "methods_supporting",
    "RunOptions",
    "ParallelConfig",
    "MethodSpec",
    "available_methods",
    "get_method",
    "register_method",
    "Recorder",
    "NullRecorder",
    "MetricsRecorder",
    "NULL_RECORDER",
    "PartialResult",
    "Budget",
    "NullBudget",
    "RunBudget",
    "NULL_BUDGET",
    "Checkpointer",
    "FaultPlan",
    "ReproError",
    "GraphError",
    "InvalidParameterError",
    "IndexBuildError",
    "IndexQueryError",
    "DatasetError",
    "EdgeListParseError",
    "SolverError",
    "BudgetExhausted",
    "TimeoutExceeded",
    "CheckpointError",
    "__version__",
])

# parameter-name tuples, in declaration order
EXPECTED_SIGNATURES = {
    "densest_subgraph": (
        "graph", "k", "method", "iterations", "index", "sample_size",
        "seed", "recorder", "budget", "checkpoint", "resume", "parallel",
        "options",
    ),
    "sctl": (
        "index", "k", "iterations", "warm_start", "paths",
        "track_convergence", "recorder", "budget", "checkpoint", "resume",
        "parallel", "options",
    ),
    "sctl_star": (
        "index", "k", "iterations", "warm_start", "graph", "use_reductions",
        "use_batch", "collect_stats", "paths", "algorithm_name", "recorder",
        "budget", "checkpoint", "resume", "parallel", "options",
    ),
    "sctl_star_sample": (
        "index", "k", "sample_size", "iterations", "seed", "use_reduction",
        "paths", "recorder", "budget", "parallel", "options",
    ),
    "sctl_star_exact": (
        "graph", "k", "index", "sample_size", "iterations", "seed",
        "max_rounds", "recorder", "budget", "checkpoint", "resume",
        "parallel", "options",
    ),
    "kcl": ("graph", "k", "iterations", "view", "options"),
    "kcl_sample": (
        "graph", "k", "sample_size", "iterations", "seed", "view", "options",
    ),
    "kcl_exact": (
        "graph", "k", "initial_iterations", "max_total_iterations", "view",
        "options",
    ),
    "core_app": ("graph", "k", "view", "options"),
    "core_exact": ("graph", "k", "view", "options"),
    "greedy_peeling": ("graph", "k", "view", "options"),
    "register_method": (
        "name", "fn", "aliases", "needs_index", "description",
        "supports_update", "supports_parallel", "supports_budget",
        "overwrite",
    ),
}


def test_all_is_exactly_the_published_surface():
    assert sorted(repro.__all__) == EXPECTED_ALL


def test_every_published_name_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_entry_point_signatures():
    for name, expected in EXPECTED_SIGNATURES.items():
        fn = getattr(repro, name)
        actual = tuple(inspect.signature(fn).parameters)
        assert actual == expected, f"{name}: {actual} != {expected}"


def test_build_signature():
    actual = tuple(inspect.signature(repro.SCTIndex.build).parameters)
    assert actual == (
        "graph", "threshold", "view", "recorder", "budget", "checkpoint",
        "resume", "parallel", "options",
    )


def test_run_options_fields():
    actual = tuple(
        f.name for f in repro.RunOptions.__dataclass_fields__.values()
    )
    assert actual == ("recorder", "budget", "checkpoint", "resume", "parallel")


def test_parallel_config_fields():
    actual = tuple(
        f.name for f in repro.ParallelConfig.__dataclass_fields__.values()
    )
    assert actual == (
        "workers", "chunks_per_worker", "max_tasks_per_child", "start_method",
        "max_crash_retries",
    )


# ---------------------------------------------------------------------------
# Service-client surface: the typed op helpers and their outcomes are a
# contract too — the CLI, the smoke scripts and the chaos suite all
# consume them.
# ---------------------------------------------------------------------------

EXPECTED_CLIENT_OPS = {
    "rpc": ("self", "op", "obj", "retry_connection_errors"),
    "query": ("self",),
    "build": ("self",),
    "profile": ("self",),
    "stats": ("self",),
    "update": ("self", "inserts", "deletes"),
}

EXPECTED_OUTCOME_PROPERTIES = {
    "ServiceOutcome": {
        "code", "ok", "error", "request_id", "graph_version", "rejected",
        "retry_after_s", "served_by", "ring_epoch",
    },
    "QueryOutcome": {"result", "cached", "coalesced", "query_time_s"},
    "ProfileOutcome": {"rows", "densest_k"},
    "UpdateOutcome": {
        "applied", "update", "invalidated_results", "retained_results",
    },
}


def test_service_client_op_surface():
    from repro.service import ServiceClient

    for op, expected in EXPECTED_CLIENT_OPS.items():
        fn = getattr(ServiceClient, op)
        actual = tuple(
            name
            for name, p in inspect.signature(fn).parameters.items()
            if p.kind is not inspect.Parameter.VAR_KEYWORD
        )
        assert actual == expected, f"{op}: {actual} != {expected}"


def test_outcome_types_are_dicts_with_typed_properties():
    import repro.service as service

    for type_name, expected in EXPECTED_OUTCOME_PROPERTIES.items():
        outcome_cls = getattr(service, type_name)
        assert issubclass(outcome_cls, dict)  # raw access keeps working
        actual = {
            name
            for name in vars(outcome_cls)
            if isinstance(vars(outcome_cls)[name], property)
        }
        assert actual == expected, f"{type_name}: {actual} != {expected}"


def test_typed_helpers_return_outcomes():
    from repro.service import (
        ProfileOutcome,
        QueryOutcome,
        ServiceClient,
        UpdateOutcome,
    )

    hints = {
        "query": QueryOutcome,
        "profile": ProfileOutcome,
        "update": UpdateOutcome,
    }
    for op, outcome_cls in hints.items():
        signature = inspect.signature(getattr(ServiceClient, op))
        assert signature.return_annotation == outcome_cls.__name__


# ---------------------------------------------------------------------------
# Deprecation-warning surface: the legacy per-knob keywords warn exactly
# once, name the options= replacement, and the new spellings stay silent.
# ---------------------------------------------------------------------------

LEGACY_KNOB_VALUES = {
    "recorder": lambda: repro.MetricsRecorder(),
    "budget": lambda: repro.RunBudget(wall_seconds=60.0),
    "checkpoint": lambda: "some-dir",
    "resume": lambda: True,
    "parallel": lambda: 2,
}


@pytest.mark.parametrize("knob", sorted(LEGACY_KNOB_VALUES))
def test_legacy_kwarg_warns_and_names_replacement(knob):
    with pytest.warns(DeprecationWarning) as caught:
        repro.RunOptions.resolve(None, **{knob: LEGACY_KNOB_VALUES[knob]()})
    messages = [str(w.message) for w in caught
                if w.category is DeprecationWarning]
    assert len(messages) == 1
    assert knob in messages[0]
    assert f"options=RunOptions({knob}=...)" in messages[0]


def test_legacy_kwarg_at_default_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        repro.RunOptions.resolve(
            None, recorder=repro.NULL_RECORDER, budget=repro.NULL_BUDGET,
            checkpoint=None, resume=False, parallel=None,
        )


def test_options_spelling_does_not_warn():
    opts = repro.RunOptions(
        recorder=repro.MetricsRecorder(),
        budget=repro.RunBudget(wall_seconds=60.0),
        parallel=2,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        resolved = repro.RunOptions.resolve(opts)
    assert resolved == opts


def test_facade_legacy_kwarg_warns_through_entry_point():
    from repro.graph import relaxed_caveman_graph

    graph = relaxed_caveman_graph(3, 5, 0.1, seed=1)
    with pytest.warns(DeprecationWarning, match="options=RunOptions"):
        repro.densest_subgraph(
            graph, 3, method="sctl", recorder=repro.MetricsRecorder()
        )
