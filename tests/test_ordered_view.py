"""The degeneracy-ordered bitset view."""

import pytest

from repro.cliques import build_ordered_view
from repro.graph import Graph, gnp_graph, iter_bits


class TestOrderedView:
    @pytest.mark.parametrize("seed", range(4))
    def test_adjacency_bits_match_graph(self, seed):
        g = gnp_graph(20, 0.3, seed=seed)
        view = build_ordered_view(g)
        for i in range(g.n):
            v = view.order[i]
            neighbours = {view.order[j] for j in iter_bits(view.adj_bits[i])}
            assert neighbours == g.neighbors(v)

    def test_out_bits_are_higher_positions(self):
        g = gnp_graph(20, 0.3, seed=1)
        view = build_ordered_view(g)
        for i in range(g.n):
            for j in iter_bits(view.out_bits[i]):
                assert j > i

    def test_out_degree_bounded_by_degeneracy(self):
        g = gnp_graph(25, 0.3, seed=2)
        view = build_ordered_view(g)
        assert max(
            (row.bit_count() for row in view.out_bits), default=0
        ) <= view.degeneracy

    def test_to_original_roundtrip(self):
        g = gnp_graph(10, 0.4, seed=3)
        view = build_ordered_view(g)
        assert sorted(view.to_original(range(g.n))) == list(range(g.n))

    def test_core_numbers_indexed_by_position(self):
        from repro.graph import core_decomposition

        g = gnp_graph(15, 0.4, seed=4)
        decomp = core_decomposition(g)
        view = build_ordered_view(g, decomp)
        for i in range(g.n):
            assert view.core_number[i] == decomp.core_number[view.order[i]]

    def test_empty_graph(self):
        view = build_ordered_view(Graph(0))
        assert view.n == 0
        assert view.adj_bits == []
