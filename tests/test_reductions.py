"""Graph reductions: partitions, density bounds, engagement thresholds."""

from fractions import Fraction

import pytest

from repro.cliques import iter_k_cliques_naive, per_vertex_counts_naive
from repro.core import (
    SCTIndex,
    engagement_threshold,
    kp_computation,
    partition_density_bounds,
)
from repro.graph import Graph, gnp_graph


class TestKPComputation:
    @pytest.mark.parametrize("k", [3, 4])
    def test_every_clique_in_one_partition(self, two_partitions, k):
        index = SCTIndex.build(two_partitions)
        partition = kp_computation(index, k)
        for clique in iter_k_cliques_naive(two_partitions, k):
            roots = {partition.partition_of[v] for v in clique}
            assert len(roots) == 1

    def test_two_blocks_are_separate_partitions(self, two_partitions):
        index = SCTIndex.build(two_partitions)
        partition = kp_computation(index, 3)
        root_a = partition.partition_of[0]
        root_b = partition.partition_of[12]
        assert root_a != root_b

    def test_isolated_vertices_stay_singletons(self):
        g = Graph(5, [(0, 1), (1, 2), (0, 2)])  # triangle + 2 isolated
        index = SCTIndex.build(g)
        partition = kp_computation(index, 3)
        assert partition.partition_of[3] == 3
        assert partition.partition_of[4] == 4
        assert partition.n_partitions == 3

    def test_groups_cover_all_vertices(self):
        g = gnp_graph(20, 0.3, seed=5)
        index = SCTIndex.build(g)
        partition = kp_computation(index, 3)
        members = sorted(v for group in partition.groups().values() for v in group)
        assert members == list(range(20))


class TestBounds:
    def test_lemma3_bound_dominates_all_subgraph_densities(self):
        g = gnp_graph(12, 0.5, seed=7)
        index = SCTIndex.build(g)
        k = 3
        partition = kp_computation(index, k)
        engagement = per_vertex_counts_naive(g, k)
        bounds = partition_density_bounds(partition, engagement, k)
        # the density of any induced subgraph must respect its partition bound
        from repro.cliques import densest_subgraph_bruteforce

        _, optimal = densest_subgraph_bruteforce(g, k)
        assert max(bounds.values()) >= Fraction(optimal).limit_denominator(10**6)

    def test_bound_is_max_engagement_over_k(self):
        g = Graph.complete(5)
        index = SCTIndex.build(g)
        partition = kp_computation(index, 3)
        engagement = per_vertex_counts_naive(g, 3)
        bounds = partition_density_bounds(partition, engagement, 3)
        root = partition.partition_of[0]
        assert bounds[root] == Fraction(6, 3)  # C(4,2) cliques per vertex / 3


class TestEngagementThreshold:
    def test_integer_density(self):
        assert engagement_threshold(Fraction(3)) == 3

    def test_rounds_up(self):
        assert engagement_threshold(Fraction(13, 6)) == 3
        assert engagement_threshold(Fraction(1, 2)) == 1

    def test_zero(self):
        assert engagement_threshold(Fraction(0)) == 0
