"""Cross-module consistency on the real benchmark datasets.

These are the workloads the benches run on; this sweep pins the internal
consistency of the index against KCList on each of them (counts,
engagements, density bookkeeping) so a dataset regeneration or an index
change cannot silently skew the experiments.
"""

import pytest

from repro.cliques import count_k_cliques, per_vertex_counts
from repro.core import SCTIndex, sctl_star
from repro.datasets import load_dataset

DATASETS = ["email", "amazon", "road", "pokec", "orkut", "skitter"]


@pytest.fixture(scope="module")
def indexed():
    out = {}
    for name in DATASETS:
        graph = load_dataset(name)
        out[name] = (graph, SCTIndex.build(graph))
    return out


class TestIndexAgreesWithKCList:
    @pytest.mark.parametrize("name", DATASETS)
    def test_triangle_counts_agree(self, indexed, name):
        graph, index = indexed[name]
        assert index.count_k_cliques(3) == count_k_cliques(graph, 3)

    @pytest.mark.parametrize("name", ["email", "pokec", "orkut"])
    def test_engagements_agree_at_k4(self, indexed, name):
        graph, index = indexed[name]
        assert index.per_vertex_counts(4) == per_vertex_counts(graph, 4)

    @pytest.mark.parametrize("name", DATASETS)
    def test_engagement_sum_identity(self, indexed, name):
        graph, index = indexed[name]
        k = 3
        total = index.count_k_cliques(k)
        assert sum(index.per_vertex_counts(k)) == k * total

    @pytest.mark.parametrize("name", DATASETS)
    def test_clique_profile_consistent_with_kmax(self, indexed, name):
        _, index = indexed[name]
        profile = index.clique_counts_by_size()
        if not profile:
            return
        assert max(profile) == index.max_clique_size
        assert profile[max(profile)] >= 1


class TestAlgorithmBookkeeping:
    @pytest.mark.parametrize("name", ["email", "pokec", "skitter"])
    def test_sctl_star_density_below_its_own_bound(self, indexed, name):
        _, index = indexed[name]
        k = 4
        if index.max_clique_size < k:
            pytest.skip("no 4-clique")
        result = sctl_star(index, k, iterations=5)
        assert result.density <= result.upper_bound + 1e-9

    @pytest.mark.parametrize("name", ["email", "orkut"])
    def test_reported_count_matches_index_subset_count(self, indexed, name):
        _, index = indexed[name]
        k = 4
        result = sctl_star(index, k, iterations=5)
        if result.vertices:
            assert index.count_in_subset(k, result.vertices) == result.clique_count
