"""Smoke tests: every example script must run to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


class TestExamples:
    def test_at_least_three_examples_ship(self):
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("script", EXAMPLES)
    def test_example_runs_clean(self, script):
        proc = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, script)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip(), "examples must print their findings"

    def test_quickstart_reports_ratio(self):
        proc = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert "approximation ratio" in proc.stdout

    def test_protein_example_recovers_planted_complex(self):
        proc = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, "protein_complexes.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert "overlap with planted complex A: 10/10" in proc.stdout
