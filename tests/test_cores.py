"""Unit tests for k-core decomposition and degeneracy ordering."""

import pytest

from repro.graph import (
    Graph,
    build_degeneracy_dag,
    core_decomposition,
    degeneracy,
    gnp_graph,
    grid_graph,
    k_core_vertices,
)


def _peel_oracle(graph, k):
    """Repeated-deletion fixed point: the classic k-core definition."""
    alive = set(graph.vertices())
    changed = True
    while changed:
        changed = False
        for v in list(alive):
            if sum(1 for u in graph.neighbors(v) if u in alive) < k:
                alive.discard(v)
                changed = True
    return alive


class TestCoreDecomposition:
    def test_complete_graph(self):
        decomp = core_decomposition(Graph.complete(6))
        assert decomp.degeneracy == 5
        assert all(c == 5 for c in decomp.core_number)

    def test_path_graph(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert degeneracy(g) == 1

    def test_empty_graph(self):
        decomp = core_decomposition(Graph(4))
        assert decomp.degeneracy == 0
        assert decomp.order != [] and len(decomp.order) == 4

    def test_zero_vertices(self):
        decomp = core_decomposition(Graph(0))
        assert decomp.order == []
        assert decomp.degeneracy == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_core_numbers_match_peel_oracle(self, seed):
        g = gnp_graph(25, 0.25, seed=seed)
        decomp = core_decomposition(g)
        for k in range(decomp.degeneracy + 2):
            expected = _peel_oracle(g, k)
            got = {v for v in g.vertices() if decomp.core_number[v] >= k}
            assert got == expected, f"k={k}"

    def test_order_is_permutation(self):
        g = gnp_graph(30, 0.2, seed=3)
        decomp = core_decomposition(g)
        assert sorted(decomp.order) == list(range(30))
        for i, v in enumerate(decomp.order):
            assert decomp.position[v] == i

    def test_k_core_vertices(self):
        g = Graph.complete(4)
        assert k_core_vertices(g, 3) == [0, 1, 2, 3]
        assert k_core_vertices(g, 4) == []

    def test_grid_degeneracy_two(self):
        # a lattice peels from the corners at degree 2
        assert degeneracy(grid_graph(6, 6)) == 2


class TestDegeneracyDAG:
    @pytest.mark.parametrize("seed", range(4))
    def test_out_degree_bounded_by_degeneracy(self, seed):
        g = gnp_graph(30, 0.3, seed=seed)
        dag = build_degeneracy_dag(g)
        assert max((dag.out_degree(v) for v in g.vertices()), default=0) <= dag.degeneracy

    def test_orientation_covers_all_edges(self):
        g = gnp_graph(20, 0.3, seed=1)
        dag = build_degeneracy_dag(g)
        oriented = sum(len(outs) for outs in dag.out_neighbors)
        assert oriented == g.m

    def test_orientation_is_acyclic(self):
        g = gnp_graph(20, 0.3, seed=2)
        dag = build_degeneracy_dag(g)
        pos = dag.decomposition.position
        for v in g.vertices():
            for u in dag.out_neighbors[v]:
                assert pos[u] > pos[v]

    def test_reuses_given_decomposition(self):
        g = gnp_graph(10, 0.4, seed=0)
        decomp = core_decomposition(g)
        dag = build_degeneracy_dag(g, decomp)
        assert dag.decomposition is decomp
