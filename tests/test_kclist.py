"""KCList against the naive oracle."""

import pytest

from repro.cliques import (
    build_ordered_view,
    count_k_cliques,
    count_k_cliques_naive,
    iter_k_cliques,
    iter_k_cliques_naive,
    per_vertex_counts,
    per_vertex_counts_naive,
)
from repro.errors import InvalidParameterError
from repro.graph import Graph, gnp_graph, grid_graph


class TestListing:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_matches_naive(self, seed, k):
        g = gnp_graph(13, 0.5, seed=seed)
        got = sorted(tuple(sorted(c)) for c in iter_k_cliques(g, k))
        want = sorted(iter_k_cliques_naive(g, k))
        assert got == want

    def test_each_clique_emitted_once(self):
        g = Graph.complete(6)
        cliques = list(iter_k_cliques(g, 3))
        assert len(cliques) == 20
        assert len({tuple(sorted(c)) for c in cliques}) == 20

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            list(iter_k_cliques(Graph(3), 0))

    def test_view_reuse(self):
        g = gnp_graph(15, 0.4, seed=1)
        view = build_ordered_view(g)
        a = sorted(tuple(sorted(c)) for c in iter_k_cliques(g, 3, view=view))
        b = sorted(tuple(sorted(c)) for c in iter_k_cliques(g, 3))
        assert a == b


class TestCounting:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
    def test_count_matches_naive(self, seed, k):
        g = gnp_graph(13, 0.5, seed=seed)
        assert count_k_cliques(g, k) == count_k_cliques_naive(g, k)

    def test_complete_graph_counts(self):
        from math import comb

        g = Graph.complete(8)
        for k in range(1, 9):
            assert count_k_cliques(g, k) == comb(8, k)

    def test_triangle_free_graph(self):
        assert count_k_cliques(grid_graph(6, 6), 3) == 0

    def test_zero_when_k_exceeds_max_clique(self):
        g = Graph.complete(4)
        assert count_k_cliques(g, 5) == 0


class TestPerVertex:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_matches_naive(self, seed, k):
        g = gnp_graph(12, 0.5, seed=seed)
        assert per_vertex_counts(g, k) == per_vertex_counts_naive(g, k)

    def test_engagement_sums_to_k_times_count(self):
        g = gnp_graph(14, 0.5, seed=9)
        k = 3
        counts = per_vertex_counts(g, k)
        assert sum(counts) == k * count_k_cliques(g, k)
