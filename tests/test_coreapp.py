"""CoreApp / CoreExact and the (k',Psi)-core decomposition."""

import pytest

from repro.baselines import core_app, core_exact, psi_core_decomposition
from repro.cliques import (
    count_k_cliques_naive,
    densest_subgraph_bruteforce,
    per_vertex_counts_naive,
)
from repro.errors import InvalidParameterError
from repro.graph import Graph, gnp_graph


def _psi_core_oracle(graph, k, k_prime):
    """Peel-to-fixed-point definition of the (k',Psi)-core."""
    alive = set(graph.vertices())
    while True:
        sub, originals = graph.induced_subgraph(sorted(alive))
        engagement = per_vertex_counts_naive(sub, k)
        drop = {originals[i] for i in range(len(originals)) if engagement[i] < k_prime}
        if not drop:
            return alive
        alive -= drop


class TestDecomposition:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [3, 4])
    def test_matches_peel_oracle(self, seed, k):
        g = gnp_graph(12, 0.5, seed=seed)
        core = psi_core_decomposition(g, k)
        for k_prime in range(1, max(core, default=0) + 2):
            expected = _psi_core_oracle(g, k, k_prime)
            got = {v for v in g.vertices() if core[v] >= k_prime}
            assert got == expected, f"k'={k_prime}"

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            psi_core_decomposition(Graph(3), 1)

    def test_complete_graph(self):
        core = psi_core_decomposition(Graph.complete(5), 3)
        assert all(c == 6 for c in core)  # every vertex in C(4,2) triangles


class TestCoreApp:
    def test_empty_graph(self):
        assert core_app(Graph(4), 3).vertices == []

    @pytest.mark.parametrize("seed", range(5))
    def test_one_over_k_guarantee(self, seed):
        g = gnp_graph(11, 0.55, seed=seed)
        k = 3
        if count_k_cliques_naive(g, k) == 0:
            pytest.skip("no triangle")
        _, optimal = densest_subgraph_bruteforce(g, k)
        result = core_app(g, k)
        assert result.density >= optimal / k - 1e-9
        assert result.density <= optimal + 1e-9

    def test_kprime_max_lower_bounds_density(self, caveman):
        result = core_app(caveman, 3)
        # every vertex of the core is in >= k'_max cliques of the core
        assert result.density >= result.stats["k_prime_max"] / 3 - 1e-9


class TestCoreExact:
    def test_empty_graph(self):
        result = core_exact(Graph(4), 3)
        assert result.vertices == []
        assert result.exact

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [3, 4])
    def test_matches_bruteforce(self, seed, k):
        g = gnp_graph(10, 0.55, seed=seed)
        result = core_exact(g, k)
        _, optimal = densest_subgraph_bruteforce(g, k)
        assert result.density == pytest.approx(optimal)

    def test_k6_plus_k4(self, k6_plus_k4):
        result = core_exact(k6_plus_k4, 3)
        assert result.vertices == [0, 1, 2, 3, 4, 5]

    def test_component_pruning_recorded(self, two_partitions):
        result = core_exact(two_partitions, 3)
        assert result.exact
        assert "components_checked" in result.stats
