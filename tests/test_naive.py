"""The naive oracles themselves (sanity on hand-computable graphs)."""

from math import comb

import pytest

from repro.cliques import (
    clique_count_by_size_naive,
    count_k_cliques_naive,
    densest_subgraph_bruteforce,
    iter_k_cliques_naive,
    k_clique_density_naive,
    per_vertex_counts_naive,
)
from repro.errors import InvalidParameterError
from repro.graph import Graph


class TestNaiveCounts:
    def test_complete_graph(self):
        g = Graph.complete(6)
        for k in range(1, 7):
            assert count_k_cliques_naive(g, k) == comb(6, k)

    def test_triangle(self, triangle):
        assert list(iter_k_cliques_naive(triangle, 3)) == [(0, 1, 2)]

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            count_k_cliques_naive(Graph(3), 0)

    def test_per_vertex_star(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert per_vertex_counts_naive(g, 2) == [3, 1, 1, 1]
        assert per_vertex_counts_naive(g, 3) == [0, 0, 0, 0]

    def test_counts_by_size(self):
        g = Graph.complete(4)
        assert clique_count_by_size_naive(g) == {1: 4, 2: 6, 3: 4, 4: 1}


class TestBruteforceDensest:
    def test_k6_plus_k4(self, k6_plus_k4):
        vertices, density = densest_subgraph_bruteforce(k6_plus_k4, 3)
        assert vertices == [0, 1, 2, 3, 4, 5]
        assert density == pytest.approx(20 / 6)

    def test_graph_without_cliques(self):
        g = Graph(4, [(0, 1), (2, 3)])
        vertices, density = densest_subgraph_bruteforce(g, 3)
        assert density == 0.0

    def test_density_helper(self, k6_plus_k4):
        assert k_clique_density_naive(k6_plus_k4, range(6), 3) == pytest.approx(20 / 6)
        assert k_clique_density_naive(k6_plus_k4, [], 3) == 0.0
