"""The all-k density profile API."""

import pytest

from repro.core import SCTIndex
from repro.core.profile import DensityProfile, density_profile
from repro.errors import InvalidParameterError
from repro.graph import Graph, relaxed_caveman_graph


class TestDensityProfile:
    def test_covers_default_range(self, caveman):
        index = SCTIndex.build(caveman)
        profile = density_profile(index, iterations=5)
        assert profile.k_values() == list(range(3, index.max_clique_size + 1))

    def test_explicit_k_values(self, caveman):
        index = SCTIndex.build(caveman)
        profile = density_profile(index, k_values=[3, 5], iterations=5)
        assert profile.k_values() == [3, 5]

    def test_invalid_k(self, caveman):
        index = SCTIndex.build(caveman)
        with pytest.raises(InvalidParameterError):
            density_profile(index, k_values=[0])

    def test_densest_k_picks_max(self):
        g = relaxed_caveman_graph(5, 7, 0.05, seed=1)
        index = SCTIndex.build(g)
        profile = density_profile(index, iterations=8)
        best = profile.densest_k()
        best_density = profile.results[best].density_fraction
        assert all(
            profile.results[k].density_fraction <= best_density
            for k in profile.k_values()
        )

    def test_as_rows_shape(self, caveman):
        index = SCTIndex.build(caveman)
        profile = density_profile(index, k_values=[3], iterations=3)
        rows = profile.as_rows()
        assert len(rows) == 1
        k, size, count, density = rows[0]
        assert k == 3
        assert density == pytest.approx(count / size)

    def test_partial_index_default_range_respects_threshold(self):
        g = relaxed_caveman_graph(5, 7, 0.05, seed=2)
        index = SCTIndex.build(g, threshold=5)
        profile = density_profile(index, iterations=3)
        assert min(profile.k_values()) == 5

    def test_empty_graph(self):
        index = SCTIndex.build(Graph(4))
        profile = density_profile(index, iterations=2)
        assert profile.results == {} or all(
            r.density == 0 for r in profile.results.values()
        )
