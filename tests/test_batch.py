"""BatchUpdate: mass conservation, min-first behaviour, update savings."""

import random
from math import comb

import pytest

from repro.core import batch_update


def _distribute_recursive(weights, h, p, k, budget):
    """The original recursive Algorithm 4 — parity oracle for the
    work-stack implementation that replaced it."""
    updates = 0
    while budget > 0:
        t = k - len(h)
        if t < 0 or t > len(p):
            return updates
        if t == 0:
            v = min(h, key=weights.__getitem__)
            weights[v] += 1
            return updates + 1
        min_hold = min((weights[x] for x in h), default=None)
        min_pivot = min(weights[x] for x in p)
        w_min = min_pivot if min_hold is None else min(min_hold, min_pivot)
        w_next = None
        for x in h:
            w = weights[x]
            if w > w_min and (w_next is None or w < w_next):
                w_next = w
        for x in p:
            w = weights[x]
            if w > w_min and (w_next is None or w < w_next):
                w_next = w
        if min_hold is not None and min_hold < min_pivot:
            ties = [x for x in h if weights[x] == w_min]
            gap = w_next - w_min
            amount = min(budget, len(ties) * gap)
            base, extra = divmod(amount, len(ties))
            for i, x in enumerate(ties):
                inc = base + (1 if i < extra else 0)
                if inc:
                    weights[x] += inc
                    updates += 1
            budget -= amount
            continue
        v = next(x for x in p if weights[x] == w_min)
        containing = comb(len(p) - 1, t - 1)
        with_budget = min(containing, budget)
        amount = with_budget if w_next is None else min(w_next - w_min, with_budget)
        if amount:
            weights[v] += amount
            updates += 1
        remaining_with_v = with_budget - amount
        if remaining_with_v > 0:
            p.remove(v)
            h.append(v)
            updates += _distribute_recursive(weights, h, p, k, remaining_with_v)
            h.pop()
            p.append(v)
        budget -= with_budget
        if budget > 0:
            p.remove(v)
            updates += _distribute_recursive(weights, h, p, k, budget)
            p.append(v)
        return updates
    return updates


class TestIterativeRecursiveParity:
    """The explicit work-stack must replay the recursion write-for-write."""

    @pytest.mark.parametrize("trial", range(120))
    def test_randomized_paths_match_exactly(self, trial):
        rng = random.Random(9000 + trial)
        n_holds = rng.randint(1, 3)
        n_pivots = rng.randint(0, 10)
        k = rng.randint(0, n_holds + n_pivots + 1)
        holds = list(range(n_holds))
        pivots = list(range(n_holds, n_holds + n_pivots))
        start = [rng.randint(0, 8) for _ in range(n_holds + n_pivots)]
        total = comb(n_pivots, k - n_holds) if 0 <= k - n_holds <= n_pivots else 0
        lim = rng.choice([None, rng.randint(0, total + 2)])

        got = list(start)
        got_updates = batch_update(got, holds, pivots, k, lim=lim)

        want = list(start)
        budget = total if lim is None else min(lim, total)
        want_updates = 0
        if budget > 0 and 0 <= k - n_holds <= n_pivots:
            want_updates = _distribute_recursive(
                want, list(holds), list(pivots), k, budget
            )

        assert got == want
        assert got_updates == want_updates


class TestMassConservation:
    @pytest.mark.parametrize("trial", range(60))
    def test_total_mass_equals_clique_count(self, trial):
        rng = random.Random(trial)
        n_holds = rng.randint(1, 3)
        n_pivots = rng.randint(0, 7)
        k = rng.randint(n_holds, n_holds + n_pivots)
        holds = list(range(n_holds))
        pivots = list(range(n_holds, n_holds + n_pivots))
        weights = [rng.randint(0, 6) for _ in range(n_holds + n_pivots)]
        before = sum(weights)
        batch_update(weights, holds, pivots, k)
        assert sum(weights) - before == comb(n_pivots, k - n_holds)

    @pytest.mark.parametrize("trial", range(40))
    def test_lim_caps_the_mass(self, trial):
        rng = random.Random(1000 + trial)
        holds = [0]
        pivots = [1, 2, 3, 4, 5]
        k = rng.randint(1, 6)
        total = comb(5, k - 1)
        lim = rng.randint(0, total + 3)
        weights = [rng.randint(0, 4) for _ in range(6)]
        before = sum(weights)
        batch_update(weights, holds, pivots, k, lim=lim)
        assert sum(weights) - before == max(0, min(lim, total))


class TestSemantics:
    def test_invalid_path_is_noop(self):
        weights = [0, 0]
        assert batch_update(weights, [0, 1], [], 3) == 0  # k > |H| + |P|
        assert batch_update(weights, [0, 1], [], 1) == 0  # k < |H|
        assert weights == [0, 0]

    def test_single_clique_goes_to_minimum(self):
        weights = [5, 3, 9]
        batch_update(weights, [0, 1, 2], [], 3)
        assert weights == [5, 4, 9]

    def test_zero_weight_hold_absorbs_everything(self):
        # one hold far below everyone: it takes the whole path budget
        weights = [0, 100, 100, 100]
        updates = batch_update(weights, [0], [1, 2, 3], 2)
        # 3 cliques, all should land on vertex 0 in a single write
        assert weights[0] == 3
        assert updates == 1

    def test_hold_stops_at_gap_then_continues(self):
        # hold at 0, second minimum at 2: the hold takes gap=2 first, then
        # remaining mass distributes among the new tied minimum
        weights = [0, 2, 2, 2]
        batch_update(weights, [0], [1, 2, 3], 2)
        assert sum(weights) == 6 + 3
        assert max(weights) - min(weights) <= 1  # ends almost perfectly level

    def test_all_holds_clique_single_unit(self):
        # k == |H|: the path carries exactly one clique (the holds); one
        # unit lands on the minimum-weight hold
        weights = [0, 0, 50]
        batch_update(weights, [0, 1], [2], 2, lim=None)
        assert sorted(weights[:2]) == [0, 1]
        assert weights[2] == 50

    def test_tied_holds_split_evenly_valid(self):
        weights = [0, 0, 5, 5, 5]
        batch_update(weights, [0, 1], [2, 3, 4], 3)
        # 3 cliques; both holds tied at 0, gap 5 -> all 3 units split 2/1
        assert sorted([weights[0], weights[1]]) == [1, 2]

    def test_pivot_case_respects_membership_count(self):
        # minimum at a pivot: it can absorb at most C(|P|-1, k-|H|-1)
        weights = [10, 0, 10, 10]
        batch_update(weights, [0], [1, 2, 3], 3)
        # cliques: {0,1,2},{0,1,3},{0,2,3}; pivot 1 in exactly 2 of them
        assert weights[1] <= 2 + 2  # absorbed its cliques, maybe promoted
        assert sum(weights) == 30 + 3

    def test_update_count_far_below_clique_count(self):
        # the whole point of batching: huge paths, few writes
        n_pivots = 20
        weights = [0] + [0] * n_pivots
        k = 10
        total = comb(n_pivots, k - 1)
        updates = batch_update(weights, [0], list(range(1, n_pivots + 1)), k)
        assert sum(weights) == total
        assert updates < total / 10

    def test_returns_zero_for_zero_lim(self):
        weights = [0, 0, 0]
        assert batch_update(weights, [0], [1, 2], 2, lim=0) == 0


class TestEquivalenceWithSequential:
    """Batch and sequential processing need not produce identical vectors
    (the paper reorders updates), but aggregate invariants must match."""

    @pytest.mark.parametrize("trial", range(30))
    def test_same_mass_and_min_weight_never_overshoots(self, trial):
        rng = random.Random(500 + trial)
        n_holds = rng.randint(1, 2)
        n_pivots = rng.randint(1, 6)
        k = rng.randint(n_holds + 1, n_holds + n_pivots)
        holds = list(range(n_holds))
        pivots = list(range(n_holds, n_holds + n_pivots))
        start = [rng.randint(0, 5) for _ in range(n_holds + n_pivots)]

        batch = list(start)
        batch_update(batch, holds, pivots, k)

        from itertools import combinations

        seq = list(start)
        for chosen in combinations(pivots, k - n_holds):
            clique = holds + list(chosen)
            u = min(clique, key=seq.__getitem__)
            seq[u] += 1

        assert sum(batch) == sum(seq)
        # both schemes raise the minimum weight by a comparable amount:
        # neither can exceed the waterline of even distribution
        assert min(batch) >= min(start)
