"""Benchmark harness utilities."""

import time

from repro.bench import (
    Timed,
    TimeoutTracker,
    format_series,
    format_table,
    timed,
    timed_with_metrics,
)


class TestTimed:
    def test_returns_result_and_time(self):
        outcome = timed(lambda: 42)
        assert outcome.result == 42
        assert outcome.seconds >= 0
        assert not outcome.timed_out
        assert outcome.cell != "time out"

    def test_soft_timeout_flag(self):
        outcome = timed(lambda: time.sleep(0.02), budget=0.001)
        assert outcome.timed_out
        assert outcome.cell == "time out"

    def test_sub_millisecond_cell(self):
        # 0.000 would misread as "did not run"; render <0.001 instead
        assert Timed(result=None, seconds=0.0004).cell == "<0.001"
        assert Timed(result=None, seconds=0.0).cell == "<0.001"
        assert Timed(result=None, seconds=0.0015).cell == "0.002"
        assert Timed(result=None, seconds=1.25).cell == "1.250"


class TestTimedWithMetrics:
    def test_attaches_recorder_and_snapshot(self):
        def work(recorder):
            with recorder.span("stage"):
                recorder.counter("items", 3)
            return "done"

        outcome = timed_with_metrics(work)
        assert outcome.result == "done"
        assert outcome.metrics["counters"] == {"items": 3}
        assert outcome.metrics["spans"][0]["span"] == "stage"

    def test_stage_seconds_matches_nested_paths(self):
        def work(recorder):
            with recorder.span("exact"):
                with recorder.span("flow_round/1"):
                    time.sleep(0.002)

        outcome = timed_with_metrics(work)
        assert outcome.stage_seconds("exact") is not None
        # nested stage found by its own name too
        assert outcome.stage_seconds("flow_round/1") is not None
        assert outcome.stage_seconds("absent") is None
        assert outcome.stage_cell("absent") == "-"
        assert outcome.stage_cell("exact") not in ("-", "time out")

    def test_plain_timed_has_no_metrics(self):
        outcome = timed(lambda: 1)
        assert outcome.metrics is None
        assert outcome.stage_seconds("anything") is None


class TestTimeoutTracker:
    def test_skips_after_timeout(self):
        tracker = TimeoutTracker(budget=0.001)
        calls = []

        def slow():
            calls.append(1)
            time.sleep(0.01)

        first = tracker.run("data", "alg", slow)
        assert first.timed_out
        second = tracker.run("data", "alg", slow)
        assert second.timed_out
        assert len(calls) == 1  # second call never executed

    def test_pairs_are_independent(self):
        tracker = TimeoutTracker(budget=10.0)
        a = tracker.run("d1", "alg", lambda: "x")
        b = tracker.run("d2", "alg", lambda: "y")
        assert a.result == "x"
        assert b.result == "y"


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_table_title(self):
        text = format_table(["x"], [[1]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_series_layout(self):
        text = format_series(
            "k", [3, 4], {"KCL": [1.0, 2.0], "SCTL*": [0.5, 0.25]}, title="Fig"
        )
        assert "KCL" in text
        assert "SCTL*" in text
        assert "0.2500" in text
