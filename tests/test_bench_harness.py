"""Benchmark harness utilities."""

import time

from repro.bench import TimeoutTracker, format_series, format_table, timed


class TestTimed:
    def test_returns_result_and_time(self):
        outcome = timed(lambda: 42)
        assert outcome.result == 42
        assert outcome.seconds >= 0
        assert not outcome.timed_out
        assert outcome.cell != "time out"

    def test_soft_timeout_flag(self):
        outcome = timed(lambda: time.sleep(0.02), budget=0.001)
        assert outcome.timed_out
        assert outcome.cell == "time out"


class TestTimeoutTracker:
    def test_skips_after_timeout(self):
        tracker = TimeoutTracker(budget=0.001)
        calls = []

        def slow():
            calls.append(1)
            time.sleep(0.01)

        first = tracker.run("data", "alg", slow)
        assert first.timed_out
        second = tracker.run("data", "alg", slow)
        assert second.timed_out
        assert len(calls) == 1  # second call never executed

    def test_pairs_are_independent(self):
        tracker = TimeoutTracker(budget=10.0)
        a = tracker.run("d1", "alg", lambda: "x")
        b = tracker.run("d2", "alg", lambda: "y")
        assert a.result == "x"
        assert b.result == "y"


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_table_title(self):
        text = format_table(["x"], [[1]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_series_layout(self):
        text = format_series(
            "k", [3, 4], {"KCL": [1.0, 2.0], "SCTL*": [0.5, 0.25]}, title="Fig"
        )
        assert "KCL" in text
        assert "SCTL*" in text
        assert "0.2500" in text
